#include "services/fanout.h"

#include "common/serial.h"

namespace interedge::services {

void group_fanout::local_join(const std::string& group, core::edge_addr member) {
  const bool inserted = local_members_[group].insert(member).second;
  if (inserted) core_.group_join(group, self_);
}

void group_fanout::local_leave(const std::string& group, core::edge_addr member) {
  auto it = local_members_.find(group);
  if (it == local_members_.end()) return;
  if (it->second.erase(member) > 0) core_.group_leave(group, self_);
  if (it->second.empty()) local_members_.erase(it);
}

bool group_fanout::is_local_member(const std::string& group, core::edge_addr member) const {
  auto it = local_members_.find(group);
  return it != local_members_.end() && it->second.count(member) > 0;
}

std::size_t group_fanout::local_member_count(const std::string& group) const {
  auto it = local_members_.find(group);
  return it == local_members_.end() ? 0 : it->second.size();
}

bool group_fanout::may_join(const std::string& group, core::edge_addr member, bool auto_open) {
  auto& global = core_.global();
  if (auto_open && !global.find_group(group)) {
    global.ensure_open_group(group);
  }
  return global.can_join(group, member);
}

group_fanout::role group_fanout::classify(const core::packet& pkt) const {
  const auto target = get_skey_u64(pkt.header, skey::target_domain);
  if (target) {
    return *target == core_.id() ? role::gateway_ingress : role::gateway_transit;
  }
  // No relay markers: from a host (origin) or an intra-domain relay copy
  // from a sibling SN.
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (src && pkt.l3_src == *src) return role::origin;
  // Copies from sibling SNs carry origin_addr; host-originated packets
  // relayed through an operator SN keep looking like origin (correct:
  // the first member-owning SN fans out).
  if (get_skey_u64(pkt.header, skey::origin_addr)) return role::relay;
  return role::origin;
}

core::outbound group_fanout::relay_copy(const core::packet& pkt, core::peer_id to,
                                        std::optional<edomain::edomain_id> target_domain) const {
  core::outbound o;
  o.to = to;
  o.header = pkt.header;
  o.header.flags &= static_cast<std::uint16_t>(~ilp::kFlagFromHost);
  set_skey_u64(o.header, skey::origin_addr,
               pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src));
  if (target_domain) {
    set_skey_u64(o.header, skey::target_domain, *target_domain);
  } else {
    o.header.metadata.erase(static_cast<std::uint16_t>(skey::target_domain));
  }
  o.payload = pkt.payload;
  return o;
}

void group_fanout::deliver_local(core::module_result& result, const core::packet& pkt,
                                 const std::string& group) const {
  auto it = local_members_.find(group);
  if (it == local_members_.end()) return;
  for (core::edge_addr member : it->second) {
    // Do not echo a message back to its own publisher.
    const auto origin = get_skey_u64(pkt.header, skey::origin_addr)
                            .value_or(pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(0));
    if (member == origin) continue;
    core::outbound o;
    o.to = member;
    o.header = pkt.header;
    o.header.flags = ilp::kFlagToHost;
    o.payload = pkt.payload;
    result.sends.push_back(std::move(o));
  }
}

std::optional<core::peer_id> group_fanout::gateway_hop(edomain::edomain_id domain) const {
  const auto gateway = core_.gateway_to(domain);
  if (!gateway) return std::nullopt;
  return gateway->first == self_ ? gateway->second : gateway->first;
}

core::module_result group_fanout::fan_out(core::service_context& ctx, const core::packet& pkt,
                                          const std::string& group) {
  core::module_result result;
  result.verdict = core::decision::deliver();

  switch (classify(pkt)) {
    case role::origin: {
      const auto info = core_.register_sender(group, self_);
      for (core::peer_id sn : info.local_member_sns) {
        if (sn == self_) continue;
        result.sends.push_back(relay_copy(pkt, sn, std::nullopt));
      }
      for (edomain::edomain_id domain : info.remote_member_edomains) {
        const auto hop = gateway_hop(domain);
        if (hop) result.sends.push_back(relay_copy(pkt, *hop, domain));
      }
      deliver_local(result, pkt, group);
      origin_metric_.add(ctx);
      break;
    }
    case role::gateway_transit: {
      const auto target = get_skey_u64(pkt.header, skey::target_domain);
      const auto hop = gateway_hop(static_cast<edomain::edomain_id>(*target));
      if (hop) result.sends.push_back(relay_copy(pkt, *hop, static_cast<edomain::edomain_id>(*target)));
      break;
    }
    case role::gateway_ingress: {
      // Re-fan-out inside this edomain.
      for (core::peer_id sn : core_.member_sns(group)) {
        if (sn == self_) continue;
        result.sends.push_back(relay_copy(pkt, sn, std::nullopt));
      }
      deliver_local(result, pkt, group);
      break;
    }
    case role::relay:
      deliver_local(result, pkt, group);
      break;
  }
  return result;
}

core::module_result group_fanout::deliver_one(core::service_context& ctx, const core::packet& pkt,
                                              const std::string& group) {
  core::module_result result;
  result.verdict = core::decision::deliver();

  const role r = classify(pkt);
  if (r == role::gateway_transit) {
    const auto target = get_skey_u64(pkt.header, skey::target_domain);
    const auto hop = gateway_hop(static_cast<edomain::edomain_id>(*target));
    if (hop) result.sends.push_back(relay_copy(pkt, *hop, static_cast<edomain::edomain_id>(*target)));
    return result;
  }

  // Prefer a local member host ("nearest").
  auto it = local_members_.find(group);
  if (it != local_members_.end() && !it->second.empty()) {
    core::outbound o;
    o.to = *it->second.begin();
    o.header = pkt.header;
    o.header.flags = ilp::kFlagToHost;
    o.payload = pkt.payload;
    result.sends.push_back(std::move(o));
    local_hits_metric_.add(ctx);
    return result;
  }

  if (r == role::relay || r == role::gateway_ingress) {
    // A relay copy found no local member (member left in flight): pick a
    // sibling SN that still has one rather than dropping.
    for (core::peer_id sn : core_.member_sns(group)) {
      if (sn == self_) continue;
      result.sends.push_back(relay_copy(pkt, sn, std::nullopt));
      return result;
    }
    return result;  // nobody left: drop
  }

  // Origin with no local member behind this SN: next preference is a
  // sibling SN in this edomain, then the nearest remote edomain.
  const auto info = core_.register_sender(group, self_);
  for (core::peer_id sn : info.local_member_sns) {
    if (sn == self_) continue;
    result.sends.push_back(relay_copy(pkt, sn, std::nullopt));
    return result;
  }
  for (edomain::edomain_id domain : info.remote_member_edomains) {
    const auto hop = gateway_hop(domain);
    if (hop) {
      result.sends.push_back(relay_copy(pkt, *hop, domain));
      return result;
    }
  }
  return result;  // no members anywhere
}

bytes group_fanout::checkpoint() const {
  writer w;
  w.varint(local_members_.size());
  for (const auto& [group, members] : local_members_) {
    w.str(group);
    w.varint(members.size());
    for (core::edge_addr m : members) w.u64(m);
  }
  return w.take();
}

void group_fanout::restore(const_byte_span state) {
  reader r(state);
  std::map<std::string, std::set<core::edge_addr>> restored;
  const std::uint64_t n_groups = r.varint();
  for (std::uint64_t g = 0; g < n_groups; ++g) {
    std::string group = r.str();
    const std::uint64_t n_members = r.varint();
    auto& members = restored[group];
    for (std::uint64_t m = 0; m < n_members; ++m) members.insert(r.u64());
  }
  local_members_ = std::move(restored);
}

}  // namespace interedge::services
