// Geo-distributed message queue service (paper §6 "Specialty services":
// "message queues such as Kafka are a core component of many distributed
// applications ... Cloudflare Queues has tried to address this change in
// workloads by proposing a geo-distributed message queuing service running
// on its edge. The InterEdge could provide such a service in an
// interconnected manner.")
//
// Each queue has a *home* SN (where it was created), registered in the
// global name registry as "mq/<name>", so producers and consumers anywhere
// — on any IESP, in any edomain — reach it through normal InterEdge
// routing: that is the "interconnected manner".
//
// Semantics: FIFO per queue, at-least-once delivery. A popped message stays
// in-flight until acked; unacked messages reappear after the visibility
// timeout (config "visibility_ms").
#pragma once

#include <deque>
#include <map>

#include "core/service_module.h"
#include "edomain/domain_core.h"
#include "services/common.h"

namespace interedge::services {

class queue_service final : public core::service_module {
 public:
  queue_service(edomain::domain_core& core, core::peer_id self) : core_(core), self_(self) {}

  ilp::service_id id() const override { return ilp::svc::message_queue; }
  std::string_view name() const override { return "message-queue"; }

  void start(core::service_context& ctx) override {
    delivered_metric_.bind(ctx);
    queues_metric_.bind(ctx);
    pushed_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override;
  void restore(core::service_context&, const_byte_span state) override;

  std::size_t depth(const std::string& queue) const;
  std::size_t in_flight(const std::string& queue) const;

 private:
  struct message {
    std::uint64_t seq = 0;
    bytes body;
  };
  struct queue_state {
    std::deque<message> ready;
    std::map<std::uint64_t, message> unacked;  // seq -> message
    std::uint64_t next_seq = 1;
  };

  core::module_result forward_to_home(core::service_context& ctx, const core::packet& pkt,
                                      core::peer_id home);
  void deliver(core::service_context& ctx, const std::string& queue, queue_state& state,
               core::edge_addr consumer, ilp::connection_id conn);
  void send_control(core::service_context& ctx, core::edge_addr to, const std::string& op,
                    const std::string& queue, std::uint64_t seq, bytes body,
                    ilp::connection_id conn);

  edomain::domain_core& core_;
  core::peer_id self_;
  std::map<std::string, queue_state> queues_;
  counter_handle delivered_metric_{"mq.delivered"};
  counter_handle queues_metric_{"mq.queues"};
  counter_handle pushed_metric_{"mq.pushed"};
};

}  // namespace interedge::services
