// Multicast service module (paper §6).
//
// Differences from pub/sub, per the paper's scalability changes: "before a
// host can send to a group it must first inform its first-hop SN of its
// intention to do so; i.e., it must register as a sender to the group."
// Unregistered senders' datagrams are dropped. Joins "must have a signature
// from the owner authorizing them to join" — enforced against the lookup
// service (auto-open is off by default for multicast).
#pragma once

#include <set>

#include "core/service_module.h"
#include "services/fanout.h"

namespace interedge::services {

class multicast_service final : public core::service_module {
 public:
  multicast_service(edomain::domain_core& core, core::peer_id self)
      : fanout_(core, self, ilp::svc::multicast) {}

  ilp::service_id id() const override { return ilp::svc::multicast; }
  std::string_view name() const override { return "multicast"; }

  void start(core::service_context& ctx) override {
    denied_joins_metric_.bind(ctx);
    unregistered_drops_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override;
  void restore(core::service_context&, const_byte_span state) override;

  std::size_t members(const std::string& group) const {
    return fanout_.local_member_count(group);
  }
  bool is_registered_sender(const std::string& group, core::edge_addr host) const;

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);
  void reply(core::service_context& ctx, const core::packet& pkt, const std::string& op,
             const std::string& detail);

  group_fanout fanout_;
  std::map<std::string, std::set<core::edge_addr>> senders_;  // group -> local senders
  counter_handle denied_joins_metric_{"multicast.denied_joins"};
  counter_handle unregistered_drops_metric_{"multicast.unregistered_drops"};
};

}  // namespace interedge::services
