// Next-generation firewall service (paper §1.2 lists "in-network
// next-generation firewalls (NGFWs)" among the security services ESPs
// deploy; §3.1 lists "regular expression matching" among the execution
// environment's library primitives this service builds on).
//
// Deep inspection rules: regular expressions evaluated against packet
// payloads, scoped by destination. Matching packets are dropped and the
// event is counted per rule. Intended for operator-imposed deployment
// (set_interceptor) at an enterprise boundary, but works as an addressed
// service too.
//
// NOTE: payload inspection only sees what the endpoints expose. With
// endpoint-encrypted payloads (the InterEdge default) an NGFW would be
// deployed inside an enclave at a point the enterprise terminates
// encryption — exactly the §6 enclave discussion; the tests cover the
// enclave-wrapped deployment.
#pragma once

#include <regex>
#include <string>
#include <vector>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

class ngfw_service final : public core::service_module {
 public:
  struct rule {
    std::string name;
    std::regex pattern;
    // 0 = applies to every destination.
    core::edge_addr dest = 0;
    std::uint64_t hits = 0;
  };

  ilp::service_id id() const override { return ilp::svc::firewall; }
  std::string_view name() const override { return "ngfw"; }
  bool content_dependent() const override { return true; }

  void add_rule(const std::string& name, const std::string& pattern,
                core::edge_addr dest = 0) {
    rules_.push_back(rule{name, std::regex(pattern), dest, 0});
  }

  void start(core::service_context& ctx) override { blocked_metric_.bind(ctx); }

  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override {
    const core::edge_addr dest = pkt.header.meta_u64(ilp::meta_key::dest_addr).value_or(0);
    // Control traffic is not inspected (it never carries app payloads).
    if (!(pkt.header.flags & ilp::kFlagControl)) {
      const std::string payload(pkt.payload.begin(), pkt.payload.end());
      for (rule& r : rules_) {
        if (r.dest != 0 && r.dest != dest) continue;
        if (std::regex_search(payload, r.pattern)) {
          ++r.hits;
          ++blocked_;
          blocked_metric_.add(ctx);
          // Deliberately NOT fast-path cached: inspection must see every
          // packet of the connection (later packets may be clean).
          return core::module_result::drop();
        }
      }
    }
    ++inspected_;
    // Interceptor semantics: deliver_local = continue to the addressed
    // service module on this SN.
    return core::module_result::deliver();
  }

  std::uint64_t blocked() const { return blocked_; }
  std::uint64_t inspected() const { return inspected_; }
  std::uint64_t rule_hits(const std::string& name) const {
    for (const rule& r : rules_) {
      if (r.name == name) return r.hits;
    }
    return 0;
  }

 private:
  std::vector<rule> rules_;
  std::uint64_t blocked_ = 0;
  std::uint64_t inspected_ = 0;
  counter_handle blocked_metric_{"ngfw.blocked"};
};

}  // namespace interedge::services
