// Streaming support service (paper §3.3 names "support for streaming" as a
// use-case-specific standardized service; §3.1 lists "video-and-audio
// re-encoding" among the execution environment's accelerable libraries).
//
// Receivers declare the bitrate their access path sustains
// ("stream-configure" control, payload = u64 max kbps). Media packets
// carry their encoded bitrate in metadata; at the receiver's first-hop SN,
// frames above the declared rate are re-encoded down by the media library
// before the last hop — the edge absorbs the bitrate mismatch instead of
// the access link.
#pragma once

#include <map>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

// ---- media re-encoding library --------------------------------------
// Stand-in for the execution environment's transcoding library (the paper
// cites GPU H.264 encoders): deterministic downsampling that preserves a
// recoverable frame header. Output size scales with the bitrate ratio.
struct media_frame {
  std::uint32_t frame_id = 0;
  std::uint32_t bitrate_kbps = 0;
  bytes samples;

  bytes encode() const;
  static media_frame decode(const_byte_span data);  // throws serial_error
};

// Re-encodes a frame to at most `target_kbps`; a no-op when the frame is
// already within the target.
media_frame media_transcode(const media_frame& frame, std::uint32_t target_kbps);

inline constexpr const char* kStreamConfigure = "stream-configure";

class streaming_service final : public core::service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::streaming; }
  std::string_view name() const override { return "streaming"; }

  void start(core::service_context& ctx) override {
    profiles_metric_.bind(ctx);
    transcoded_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bool has_profile(core::edge_addr receiver) const { return max_kbps_.count(receiver) > 0; }
  std::uint64_t transcoded() const { return transcoded_; }
  std::uint64_t passed_through() const { return passed_; }

 private:
  std::map<core::edge_addr, std::uint32_t> max_kbps_;
  std::uint64_t transcoded_ = 0;
  std::uint64_t passed_ = 0;
  counter_handle profiles_metric_{"streaming.profiles"};
  counter_handle transcoded_metric_{"streaming.transcoded"};
};

}  // namespace interedge::services
