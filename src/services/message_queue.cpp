#include "services/message_queue.h"

#include "common/serial.h"

namespace interedge::services {
namespace {
std::string home_name(const std::string& queue) { return "mq/" + queue; }
}  // namespace

core::module_result queue_service::forward_to_home(core::service_context& ctx,
                                                   const core::packet& pkt,
                                                   core::peer_id home) {
  const auto hop = ctx.next_hop(home);
  if (!hop) return core::module_result::drop();
  core::module_result r;
  r.verdict = core::decision::deliver();
  core::outbound o;
  o.to = *hop;
  o.header = pkt.header;
  o.header.set_meta_u64(ilp::meta_key::dest_addr, home);
  o.payload = pkt.payload;
  r.sends.push_back(std::move(o));
  return r;
}

void queue_service::send_control(core::service_context& ctx, core::edge_addr to,
                                 const std::string& op, const std::string& queue,
                                 std::uint64_t seq, bytes body, ilp::connection_id conn) {
  ilp::ilp_header h;
  h.service = ilp::svc::message_queue;
  h.connection = conn;
  h.flags = ilp::kFlagControl | ilp::kFlagToHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  set_skey_str(h, skey::queue_name, queue);
  set_skey_u64(h, skey::msg_seq, seq);
  ctx.send(to, h, std::move(body));
}

void queue_service::deliver(core::service_context& ctx, const std::string& queue,
                            queue_state& state, core::edge_addr consumer,
                            ilp::connection_id conn) {
  if (state.ready.empty()) {
    send_control(ctx, consumer, ops::queue_empty, queue, 0, {}, conn);
    return;
  }
  message m = std::move(state.ready.front());
  state.ready.pop_front();
  const std::uint64_t seq = m.seq;
  send_control(ctx, consumer, ops::queue_msg, queue, seq, m.body, conn);
  state.unacked.emplace(seq, std::move(m));

  // Visibility timeout: if unacked by then, the message returns to the
  // front of the queue (at-least-once).
  const auto visibility =
      std::chrono::milliseconds(std::stoll(ctx.config("visibility_ms", "30000")));
  ctx.schedule(visibility, [this, queue, seq]() {
    auto qit = queues_.find(queue);
    if (qit == queues_.end()) return;
    auto mit = qit->second.unacked.find(seq);
    if (mit == qit->second.unacked.end()) return;  // acked in time
    qit->second.ready.push_front(std::move(mit->second));
    qit->second.unacked.erase(mit);
  });
  delivered_metric_.add(ctx);
}

core::module_result queue_service::on_packet(core::service_context& ctx,
                                             const core::packet& pkt) {
  if (!(pkt.header.flags & ilp::kFlagControl)) return core::module_result::drop();

  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto queue = get_skey_str(pkt.header, skey::queue_name);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !queue || !src) return core::module_result::drop();

  auto& global = core_.global();

  if (*op == ops::queue_create) {
    // First creator wins; the home is this SN.
    if (!global.register_name(home_name(*queue), self_)) {
      return core::module_result::deliver();  // exists elsewhere; idempotent
    }
    queues_.try_emplace(*queue);
    queues_metric_.add(ctx);
    return core::module_result::deliver();
  }

  const auto home = global.resolve_name(home_name(*queue));
  if (!home) return core::module_result::drop();  // unknown queue
  if (*home != self_) return forward_to_home(ctx, pkt, *home);

  queue_state& state = queues_[*queue];
  if (*op == ops::queue_push) {
    message m;
    m.seq = state.next_seq++;
    m.body = pkt.payload;
    state.ready.push_back(std::move(m));
    pushed_metric_.add(ctx);
    return core::module_result::deliver();
  }
  if (*op == ops::queue_pop) {
    const core::edge_addr consumer =
        pkt.header.meta_u64(ilp::meta_key::reply_to).value_or(*src);
    deliver(ctx, *queue, state, consumer, pkt.header.connection);
    return core::module_result::deliver();
  }
  if (*op == ops::queue_ack) {
    const auto seq = get_skey_u64(pkt.header, skey::msg_seq);
    if (seq) state.unacked.erase(*seq);
    return core::module_result::deliver();
  }
  return core::module_result::drop();
}

std::size_t queue_service::depth(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.ready.size();
}

std::size_t queue_service::in_flight(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.unacked.size();
}

bytes queue_service::checkpoint(core::service_context&) {
  writer w;
  w.varint(queues_.size());
  for (const auto& [name, state] : queues_) {
    w.str(name);
    w.u64(state.next_seq);
    w.varint(state.ready.size());
    for (const message& m : state.ready) {
      w.u64(m.seq);
      w.blob(m.body);
    }
    // Unacked messages checkpoint as ready: they will be redelivered,
    // which at-least-once semantics permit.
    w.varint(state.unacked.size());
    for (const auto& [seq, m] : state.unacked) {
      w.u64(m.seq);
      w.blob(m.body);
    }
  }
  return w.take();
}

void queue_service::restore(core::service_context&, const_byte_span snapshot) {
  reader r(snapshot);
  std::map<std::string, queue_state> restored;
  const std::uint64_t n = r.varint();
  for (std::uint64_t q = 0; q < n; ++q) {
    std::string name = r.str();
    queue_state state;
    state.next_seq = r.u64();
    const std::uint64_t ready = r.varint();
    for (std::uint64_t i = 0; i < ready; ++i) {
      message m;
      m.seq = r.u64();
      const auto body = r.blob();
      m.body.assign(body.begin(), body.end());
      state.ready.push_back(std::move(m));
    }
    const std::uint64_t unacked = r.varint();
    for (std::uint64_t i = 0; i < unacked; ++i) {
      message m;
      m.seq = r.u64();
      const auto body = r.blob();
      m.body.assign(body.begin(), body.end());
      state.ready.push_back(std::move(m));
    }
    restored.emplace(std::move(name), std::move(state));
  }
  queues_ = std::move(restored);
}

}  // namespace interedge::services
