#include "services/mixnet.h"

#include "common/serial.h"
#include "crypto/random.h"
#include "services/envelope.h"

namespace interedge::services {

mixnet_service::mixnet_service() {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  keypair_ = crypto::x25519_keypair_from_seed(seed);
}

mixnet_service::mixnet_service(const crypto::x25519_key& seed) {
  keypair_ = crypto::x25519_keypair_from_seed(seed);
}

core::module_result mixnet_service::on_packet(core::service_context& ctx,
                                              const core::packet& pkt) {
  // Try to peel a layer addressed to this mix.
  if (const auto layer = envelope_open(keypair_.secret, pkt.payload)) {
    try {
      reader r(*layer);
      const std::uint8_t type = r.u8();
      const std::uint64_t next = r.u64();
      const const_byte_span inner = r.blob();
      ++peeled_;
      peeled_metric_.add(ctx);

      const auto hop = ctx.next_hop(next);
      if (!hop) return core::module_result::drop();

      ilp::ilp_header header;
      header.service = ilp::svc::mixnet;
      // Fresh connection id per hop: correlating packets across hops by
      // connection id must not work.
      header.connection = pkt.header.connection ^ (0x9e3779b97f4a7c15ull * (peeled_ + 1));
      header.set_meta_u64(ilp::meta_key::dest_addr, next);
      // The source is this mix, never the original sender.
      header.set_meta_u64(ilp::meta_key::src_addr, ctx.node_id());
      if (type == kMixExit) {
        header.flags = ilp::kFlagToHost;
        ++exited_;
      }

      core::module_result result;
      result.verdict = core::decision::deliver();
      result.sends.push_back(core::outbound{*hop, std::move(header),
                                            bytes(inner.begin(), inner.end())});
      return result;
    } catch (const serial_error&) {
      return core::module_result::drop();
    }
  }

  // Not for us: transit toward the addressed mix.
  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();
  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();
  return core::module_result::forward(*hop);
}

}  // namespace interedge::services
