#include "services/ordered_delivery.h"

namespace interedge::services {

std::uint64_t ordered_delivery_service::gps_now(core::service_context& ctx) const {
  const std::uint64_t base = static_cast<std::uint64_t>(ctx.now().time_since_epoch().count());
  const std::uint64_t jitter = std::stoull(ctx.config("clock_jitter_ns", "0"));
  if (jitter == 0) return base;
  // Deterministic per-SN offset in [-jitter, +jitter] models bounded GPS
  // clock error.
  const std::uint64_t h = ctx.node_id() * 0x9e3779b97f4a7c15ull;
  const std::int64_t offset = static_cast<std::int64_t>(h % (2 * jitter)) -
                              static_cast<std::int64_t>(jitter);
  return base + static_cast<std::uint64_t>(static_cast<std::int64_t>(base) > -offset ? offset : 0);
}

void ordered_delivery_service::schedule_release(core::service_context& ctx,
                                                core::edge_addr receiver) {
  const auto window =
      std::chrono::milliseconds(std::stoll(ctx.config("release_delay_ms", "50")));
  ctx.schedule(window, [this, &ctx, receiver]() {
    auto it = buffers_.find(receiver);
    if (it == buffers_.end()) return;
    receiver_buffer& buf = it->second;
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(ctx.now().time_since_epoch().count());

    // Release everything stamped at least one window ago, in order.
    const auto window_ns = static_cast<std::uint64_t>(
        std::chrono::nanoseconds(
            std::chrono::milliseconds(std::stoll(ctx.config("release_delay_ms", "50"))))
            .count());
    while (!buf.pending.empty()) {
      auto first = buf.pending.begin();
      const std::uint64_t ts = std::get<0>(first->first);
      if (ts + window_ns > horizon) break;
      const auto hop = ctx.next_hop(receiver);
      if (hop) {
        ilp::ilp_header h = first->second.header;
        h.flags = ilp::kFlagToHost;
        ctx.send(*hop, h, std::move(first->second.payload));
        ++released_;
      }
      buf.released_watermark = std::max(buf.released_watermark, ts);
      buf.pending.erase(first);
    }
  });
}

core::module_result ordered_delivery_service::on_packet(core::service_context& ctx,
                                                        const core::packet& pkt) {
  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();

  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  const bool origin_stage =
      src && pkt.l3_src == *src && !get_skey_u64(pkt.header, skey::timestamp_ns);

  ilp::ilp_header header = pkt.header;
  if (origin_stage) {
    // Stamp with the SN's GPS clock and a per-sender sequence number.
    set_skey_u64(header, skey::timestamp_ns, gps_now(ctx));
    set_skey_u64(header, skey::msg_seq, ++seq_[*src]);
    ++stamped_;
    stamped_metric_.add(ctx);
  }

  const auto hop = ctx.next_hop(*dest);
  if (!hop) return core::module_result::drop();

  if (*hop != *dest) {
    // Not the receiver's first-hop SN yet: relay the (stamped) message.
    core::module_result r;
    r.verdict = core::decision::deliver();
    r.sends.push_back(core::outbound{*hop, std::move(header), pkt.payload});
    return r;
  }

  // Receiver-side SN: buffer and release in timestamp order.
  const std::uint64_t ts = get_skey_u64(header, skey::timestamp_ns).value_or(gps_now(ctx));
  const std::uint64_t origin = get_skey_u64(header, skey::origin_addr).value_or(src.value_or(0));
  const std::uint64_t sequence = get_skey_u64(header, skey::msg_seq).value_or(0);

  receiver_buffer& buf = buffers_[*dest];
  if (ts < buf.released_watermark) {
    // Arrived after its slot was already passed: deliver immediately but
    // count the ordering violation (non-atomicity, as the paper allows).
    ++late_;
    late_metric_.add(ctx);
    core::module_result r;
    r.verdict = core::decision::deliver();
    header.flags = ilp::kFlagToHost;
    r.sends.push_back(core::outbound{*hop, std::move(header), pkt.payload});
    return r;
  }
  buf.pending.emplace(order_key{ts, origin, sequence}, buffered{std::move(header), pkt.payload});
  schedule_release(ctx, *dest);
  return core::module_result::deliver();
}

}  // namespace interedge::services
