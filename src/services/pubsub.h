// Pub/sub service module (paper §6; "we have an implementation of pub/sub
// running on our prototype").
//
// Control plane (host -> first-hop SN, out of band):
//   subscribe <topic>    join validated against the lookup service
//   unsubscribe <topic>
// Data plane: publish = a data packet with skey::group = topic; fan-out to
// every subscriber across SNs and edomains via group_fanout.
//
// Resiliency is host-driven (paper §3.3: "host-driven state reconstruction
// techniques (as briefly mentioned for pub/sub in Section 6)"): the
// subscriber's client library remembers its topics and re-subscribes when
// its SN loses state (see services/clients/pubsub_client.h); the module
// additionally checkpoints its tables for standby replication.
#pragma once

#include "core/service_module.h"
#include "services/fanout.h"

namespace interedge::services {

class pubsub_service final : public core::service_module {
 public:
  pubsub_service(edomain::domain_core& core, core::peer_id self)
      : fanout_(core, self, ilp::svc::pubsub) {}

  ilp::service_id id() const override { return ilp::svc::pubsub; }
  std::string_view name() const override { return "pubsub"; }

  void start(core::service_context& ctx) override {
    denied_joins_metric_.bind(ctx);
    published_metric_.bind(ctx);
  }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  bytes checkpoint(core::service_context&) override { return fanout_.checkpoint(); }
  void restore(core::service_context&, const_byte_span state) override {
    fanout_.restore(state);
  }

  std::size_t subscribers(const std::string& topic) const {
    return fanout_.local_member_count(topic);
  }

 private:
  core::module_result handle_control(core::service_context& ctx, const core::packet& pkt);
  void reply(core::service_context& ctx, const core::packet& pkt, const std::string& op,
             const std::string& detail);

  group_fanout fanout_;
  counter_handle denied_joins_metric_{"pubsub.denied_joins"};
  counter_handle published_metric_{"pubsub.published"};
};

}  // namespace interedge::services
