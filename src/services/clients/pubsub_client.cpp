#include "services/clients/pubsub_client.h"

namespace interedge::services {

pubsub_client::pubsub_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::pubsub, [this](const ilp::ilp_header& h, bytes payload) {
    const auto topic = get_skey_str(h, skey::group);
    if (!topic) return;
    auto it = handlers_.find(*topic);
    if (it != handlers_.end() && it->second) it->second(*topic, std::move(payload));
  });
  stack_.set_control_handler(ilp::svc::pubsub, [this](const ilp::ilp_header& h, bytes) {
    const auto op = h.meta_str(ilp::meta_key::control_op);
    if (op == ops::publish_ack) ++acks_;
    if (op == ops::deny) ++denials_;
  });
}

void pubsub_client::send_subscribe(const std::string& topic) {
  ilp::ilp_header control;
  control.service = ilp::svc::pubsub;
  control.connection = next_conn_++;
  control.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  control.set_meta_str(ilp::meta_key::control_op, ops::subscribe);
  control.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  control.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(control, skey::group, topic);
  stack_.pipes().send(stack_.first_hop_sn(), control, {});
}

void pubsub_client::subscribe(const std::string& topic, message_handler handler) {
  handlers_[topic] = std::move(handler);
  send_subscribe(topic);
}

void pubsub_client::unsubscribe(const std::string& topic) {
  handlers_.erase(topic);
  ilp::ilp_header control;
  control.service = ilp::svc::pubsub;
  control.connection = next_conn_++;
  control.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  control.set_meta_str(ilp::meta_key::control_op, ops::unsubscribe);
  control.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  control.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(control, skey::group, topic);
  stack_.pipes().send(stack_.first_hop_sn(), control, {});
}

void pubsub_client::publish(const std::string& topic, bytes payload) {
  ilp::ilp_header h;
  h.service = ilp::svc::pubsub;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  set_skey_str(h, skey::group, topic);
  stack_.pipes().send(stack_.first_hop_sn(), h, std::move(payload));
}

void pubsub_client::resync() {
  for (const auto& [topic, handler] : handlers_) send_subscribe(topic);
}

}  // namespace interedge::services
