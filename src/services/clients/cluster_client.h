// Host-side cluster-interconnect logic: the site gateway. Encapsulates
// frames (inner private address + payload) toward other sites and hands
// decapsulated frames to the local cluster.
#pragma once

#include <functional>
#include <string>

#include "host/host_stack.h"
#include "services/cluster_interconnect.h"
#include "services/common.h"

namespace interedge::services {

class cluster_gateway {
 public:
  // (inner destination address within this cluster site, frame payload)
  using frame_handler = std::function<void(std::uint64_t inner_dest, bytes frame)>;

  explicit cluster_gateway(host::host_stack& stack);

  void attach(const std::string& cluster);
  void detach(const std::string& cluster);

  // Encapsulates a frame for a host in a remote site of the cluster.
  void send_frame(const std::string& cluster, std::uint64_t inner_dest, bytes frame);

  void set_handler(frame_handler handler) { handler_ = std::move(handler); }
  std::uint64_t frames_received() const { return received_; }

 private:
  void control(const std::string& op, const std::string& cluster);

  host::host_stack& stack_;
  frame_handler handler_;
  std::uint64_t received_ = 0;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
