// Host-side bulk-data-delivery logic: the sender chunks objects; receivers
// reassemble, detect gaps, and re-fetch missing chunks from their first-hop
// SN's cache.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

class bulk_sender {
 public:
  explicit bulk_sender(host::host_stack& stack) : stack_(stack) {}

  // Splits `body` into chunks and pushes them to the group.
  void send_object(const std::string& group, const std::string& object_id,
                   const_byte_span body, std::size_t chunk_size = 1024);

 private:
  host::host_stack& stack_;
  std::uint64_t next_conn_ = 1;
};

class bulk_receiver {
 public:
  using object_handler = std::function<void(const std::string& object_id, bytes body)>;

  explicit bulk_receiver(host::host_stack& stack);

  void join(const std::string& group);
  void set_handler(object_handler handler) { on_object_ = std::move(handler); }

  // Gap repair: ask the first-hop SN for a specific chunk.
  void fetch_chunk(const std::string& object_id, std::uint64_t index);

  // Chunk indices still missing for an in-progress object.
  std::vector<std::uint64_t> missing(const std::string& object_id) const;

 private:
  struct assembly {
    std::uint64_t total = 0;
    std::map<std::uint64_t, bytes> chunks;  // 1-based index -> data
  };
  void accept_chunk(const std::string& object_id, std::uint64_t index, std::uint64_t total,
                    bytes data);

  host::host_stack& stack_;
  object_handler on_object_;
  std::map<std::string, assembly> assemblies_;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
