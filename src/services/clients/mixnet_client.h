// Host-side mixnet logic: onion construction over a published directory of
// mix SNs and their keys.
#pragma once

#include <functional>
#include <vector>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

struct mix_node {
  host::peer_id sn = 0;
  crypto::x25519_key public_key{};
};

// The directory of available mixes (in a deployment this is published
// alongside IESP rate cards; tests and examples build it from the modules).
using mix_directory = std::vector<mix_node>;

class mixnet_client {
 public:
  using message_handler = std::function<void(bytes payload)>;

  explicit mixnet_client(host::host_stack& stack);

  // Builds the onion for a hop chain and a final destination host.
  static bytes build_onion(const std::vector<mix_node>& hops, host::edge_addr dest,
                           const_byte_span payload);

  // Sends payload to dest through the given chain of mixes.
  void send(const std::vector<mix_node>& hops, host::edge_addr dest, bytes payload);

  void set_handler(message_handler handler) { handler_ = std::move(handler); }

 private:
  host::host_stack& stack_;
  message_handler handler_;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
