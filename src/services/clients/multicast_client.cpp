#include "services/clients/multicast_client.h"

namespace interedge::services {

multicast_client::multicast_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::multicast,
                             [this](const ilp::ilp_header& h, bytes payload) {
                               const auto group = get_skey_str(h, skey::group);
                               if (group && handler_) handler_(*group, std::move(payload));
                             });
  stack_.set_control_handler(ilp::svc::multicast, [this](const ilp::ilp_header& h, bytes) {
    const auto op = h.meta_str(ilp::meta_key::control_op);
    if (op == ops::publish_ack) ++acks_;
    if (op == ops::deny) ++denials_;
  });
}

void multicast_client::control(const std::string& op, const std::string& group) {
  ilp::ilp_header h;
  h.service = ilp::svc::multicast;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(h, skey::group, group);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

void multicast_client::join(const std::string& group) { control(ops::join, group); }
void multicast_client::leave(const std::string& group) { control(ops::leave, group); }
void multicast_client::register_sender(const std::string& group) {
  control(ops::register_sender, group);
}

void multicast_client::send(const std::string& group, bytes payload) {
  ilp::ilp_header h;
  h.service = ilp::svc::multicast;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  set_skey_str(h, skey::group, group);
  stack_.pipes().send(stack_.first_hop_sn(), h, std::move(payload));
}

anycast_client::anycast_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::anycast, [this](const ilp::ilp_header& h, bytes payload) {
    const auto group = get_skey_str(h, skey::group);
    if (group && handler_) handler_(*group, std::move(payload));
  });
}

void anycast_client::control(const std::string& op, const std::string& group) {
  ilp::ilp_header h;
  h.service = ilp::svc::anycast;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(h, skey::group, group);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

void anycast_client::join(const std::string& group) { control(ops::join, group); }
void anycast_client::leave(const std::string& group) { control(ops::leave, group); }

void anycast_client::send(const std::string& group, bytes payload) {
  ilp::ilp_header h;
  h.service = ilp::svc::anycast;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  set_skey_str(h, skey::group, group);
  stack_.pipes().send(stack_.first_hop_sn(), h, std::move(payload));
}

}  // namespace interedge::services
