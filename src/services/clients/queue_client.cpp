#include "services/clients/queue_client.h"

namespace interedge::services {

queue_client::queue_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_control_handler(
      ilp::svc::message_queue, [this](const ilp::ilp_header& h, bytes payload) {
        const auto op = h.meta_str(ilp::meta_key::control_op);
        const auto queue = get_skey_str(h, skey::queue_name);
        if (!op || !queue) return;
        if (*op == ops::queue_msg) {
          ++received_;
          const std::uint64_t seq = get_skey_u64(h, skey::msg_seq).value_or(0);
          if (on_message_) on_message_(*queue, seq, std::move(payload));
        } else if (*op == ops::queue_empty) {
          if (on_empty_) on_empty_(*queue);
        }
      });
}

void queue_client::control(const std::string& op, const std::string& queue, bytes body,
                           std::optional<std::uint64_t> seq) {
  ilp::ilp_header h;
  h.service = ilp::svc::message_queue;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(h, skey::queue_name, queue);
  if (seq) set_skey_u64(h, skey::msg_seq, *seq);
  stack_.pipes().send(stack_.first_hop_sn(), h, std::move(body));
}

void queue_client::create(const std::string& queue) { control(ops::queue_create, queue, {}); }
void queue_client::push(const std::string& queue, bytes body) {
  control(ops::queue_push, queue, std::move(body));
}
void queue_client::pop(const std::string& queue) { control(ops::queue_pop, queue, {}); }
void queue_client::ack(const std::string& queue, std::uint64_t seq) {
  control(ops::queue_ack, queue, {}, seq);
}

}  // namespace interedge::services
