// Host-side mobility logic: announce after re-homing, locate peers.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "host/host_stack.h"
#include "services/common.h"
#include "services/mobility.h"

namespace interedge::services {

class mobility_client {
 public:
  using locate_handler =
      std::function<void(host::edge_addr target, std::vector<host::peer_id> sns)>;

  explicit mobility_client(host::host_stack& stack);

  // Call after stack.rehome(new_sn): announces the move through the new
  // first-hop SN (which updates the lookup record and breadcrumbs the old
  // SNs).
  void announce();

  // Asks the first-hop SN for a peer's current first-hop SNs.
  void locate(host::edge_addr target, locate_handler handler);

 private:
  host::host_stack& stack_;
  std::map<ilp::connection_id, std::pair<host::edge_addr, locate_handler>> pending_;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
