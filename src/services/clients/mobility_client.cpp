#include "services/clients/mobility_client.h"

#include "common/serial.h"

namespace interedge::services {

mobility_client::mobility_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_control_handler(
      ilp::svc::mobility, [this](const ilp::ilp_header& h, bytes payload) {
        const auto op = h.meta_str(ilp::meta_key::control_op);
        if (op != mobility_ops::located) return;
        auto it = pending_.find(h.connection);
        if (it == pending_.end()) return;
        auto [target, handler] = std::move(it->second);
        pending_.erase(it);
        try {
          reader r(payload);
          const std::uint64_t n = r.varint();
          std::vector<host::peer_id> sns;
          for (std::uint64_t i = 0; i < n; ++i) sns.push_back(r.u64());
          if (handler) handler(target, std::move(sns));
        } catch (const serial_error&) {
        }
      });
}

void mobility_client::announce() {
  ilp::ilp_header h;
  h.service = ilp::svc::mobility;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, mobility_ops::announce);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

void mobility_client::locate(host::edge_addr target, locate_handler handler) {
  const ilp::connection_id conn = next_conn_++;
  pending_[conn] = {target, std::move(handler)};
  ilp::ilp_header h;
  h.service = ilp::svc::mobility;
  h.connection = conn;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, mobility_ops::locate);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  h.set_meta_u64(ilp::meta_key::dest_addr, target);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

}  // namespace interedge::services
