// Host-side multicast logic: join with owner authorization, explicit
// sender registration before sending (paper §6), and receive dispatch.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

class multicast_client {
 public:
  using message_handler = std::function<void(const std::string& group, bytes payload)>;

  explicit multicast_client(host::host_stack& stack);

  void join(const std::string& group);
  void leave(const std::string& group);
  void register_sender(const std::string& group);
  void send(const std::string& group, bytes payload);
  void set_handler(message_handler handler) { handler_ = std::move(handler); }

  std::uint64_t acks() const { return acks_; }
  std::uint64_t denials() const { return denials_; }

 private:
  void control(const std::string& op, const std::string& group);

  host::host_stack& stack_;
  message_handler handler_;
  std::uint64_t acks_ = 0;
  std::uint64_t denials_ = 0;
  std::uint64_t next_conn_ = 1;
};

// Anycast needs only trivial host logic: join/leave and plain sends.
class anycast_client {
 public:
  using message_handler = std::function<void(const std::string& group, bytes payload)>;

  explicit anycast_client(host::host_stack& stack);

  void join(const std::string& group);
  void leave(const std::string& group);
  void send(const std::string& group, bytes payload);
  void set_handler(message_handler handler) { handler_ = std::move(handler); }

 private:
  void control(const std::string& op, const std::string& group);
  host::host_stack& stack_;
  message_handler handler_;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
