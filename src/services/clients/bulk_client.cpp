#include "services/clients/bulk_client.h"

namespace interedge::services {

void bulk_sender::send_object(const std::string& group, const std::string& object_id,
                              const_byte_span body, std::size_t chunk_size) {
  const std::uint64_t total =
      body.empty() ? 1 : (body.size() + chunk_size - 1) / chunk_size;
  const ilp::connection_id conn = next_conn_++;
  for (std::uint64_t index = 1; index <= total; ++index) {
    const std::size_t offset = static_cast<std::size_t>(index - 1) * chunk_size;
    const std::size_t take = std::min(chunk_size, body.size() - offset);
    ilp::ilp_header h;
    h.service = ilp::svc::bulk_delivery;
    h.connection = conn;
    h.flags = ilp::kFlagFromHost;
    h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
    set_skey_str(h, skey::group, group);
    set_skey_str(h, skey::object_id, object_id);
    set_skey_u64(h, skey::chunk_index, index);
    set_skey_u64(h, skey::chunk_count, total);
    const auto chunk = body.subspan(offset, take);
    stack_.pipes().send(stack_.first_hop_sn(), h, bytes(chunk.begin(), chunk.end()));
  }
}

bulk_receiver::bulk_receiver(host::host_stack& stack) : stack_(stack) {
  // Fan-out data chunks.
  stack_.set_service_handler(ilp::svc::bulk_delivery,
                             [this](const ilp::ilp_header& h, bytes payload) {
                               const auto object = get_skey_str(h, skey::object_id);
                               const auto index = get_skey_u64(h, skey::chunk_index);
                               const auto total = get_skey_u64(h, skey::chunk_count);
                               if (!object || !index || !total) return;
                               accept_chunk(*object, *index, *total, std::move(payload));
                             });
  // Re-fetched chunks arrive as control replies; the SN includes the
  // object's chunk count so even a receiver that saw no data packets can
  // reassemble.
  stack_.set_control_handler(ilp::svc::bulk_delivery,
                             [this](const ilp::ilp_header& h, bytes payload) {
                               const auto object = get_skey_str(h, skey::object_id);
                               const auto index = get_skey_u64(h, skey::chunk_index);
                               if (!object || !index) return;
                               std::uint64_t total = get_skey_u64(h, skey::chunk_count).value_or(0);
                               auto it = assemblies_.find(*object);
                               if (total == 0 && it != assemblies_.end()) total = it->second.total;
                               if (total == 0) return;  // size unknown: cannot place
                               accept_chunk(*object, *index, total, std::move(payload));
                             });
}

void bulk_receiver::join(const std::string& group) {
  ilp::ilp_header h;
  h.service = ilp::svc::bulk_delivery;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, ops::join);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(h, skey::group, group);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

void bulk_receiver::fetch_chunk(const std::string& object_id, std::uint64_t index) {
  ilp::ilp_header h;
  h.service = ilp::svc::bulk_delivery;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, "fetch");
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  set_skey_str(h, skey::object_id, object_id);
  set_skey_u64(h, skey::chunk_index, index);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

std::vector<std::uint64_t> bulk_receiver::missing(const std::string& object_id) const {
  std::vector<std::uint64_t> out;
  auto it = assemblies_.find(object_id);
  if (it == assemblies_.end()) return out;
  for (std::uint64_t i = 1; i <= it->second.total; ++i) {
    if (!it->second.chunks.count(i)) out.push_back(i);
  }
  return out;
}

void bulk_receiver::accept_chunk(const std::string& object_id, std::uint64_t index,
                                 std::uint64_t total, bytes data) {
  assembly& a = assemblies_[object_id];
  a.total = std::max(a.total, total);
  a.chunks.emplace(index, std::move(data));
  if (a.total == 0 || a.chunks.size() < a.total) return;
  // Complete: reassemble in order and hand off.
  bytes body;
  for (auto& [i, chunk] : a.chunks) body.insert(body.end(), chunk.begin(), chunk.end());
  assemblies_.erase(object_id);
  if (on_object_) on_object_(object_id, std::move(body));
}

}  // namespace interedge::services
