#include "services/clients/odns_client.h"

#include "crypto/random.h"

namespace interedge::services {

odns_client::odns_client(host::host_stack& stack, crypto::x25519_key resolver_public)
    : stack_(stack), resolver_public_(resolver_public) {
  stack_.set_service_handler(ilp::svc::odns, [this](const ilp::ilp_header& h, bytes payload) {
    auto it = pending_.find(h.connection);
    if (it == pending_.end()) return;
    const auto answer = reply_open(it->second.key, payload);
    if (!answer) return;
    pending p = std::move(it->second);
    pending_.erase(it);
    ++answers_;
    if (p.handler) p.handler(p.name, to_string(*answer));
  });
}

void odns_client::query(const std::string& name, answer_handler handler) {
  auto [sealed, key] = envelope_seal_with_reply(resolver_public_, to_bytes(name));
  const ilp::connection_id conn = next_conn_++;
  pending_[conn] = pending{name, key, std::move(handler)};

  ilp::ilp_header h;
  h.service = ilp::svc::odns;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  stack_.pipes().send(stack_.first_hop_sn(), h, std::move(sealed));
}

odns_resolver::odns_resolver(host::host_stack& stack) : stack_(stack) {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  keypair_ = crypto::x25519_keypair_from_seed(seed);

  stack_.set_service_handler(ilp::svc::odns, [this](const ilp::ilp_header& h, bytes payload) {
    const auto proxy = h.meta_u64(ilp::meta_key::src_addr);
    if (!proxy) return;
    observed_.push_back(*proxy);
    const auto opened = envelope_open_with_reply(keypair_.secret, payload);
    if (!opened) return;
    const std::string name = to_string(opened->first);
    auto it = zone_.find(name);
    const std::string value = it == zone_.end() ? "NXDOMAIN" : it->second;
    ++answered_;

    // Reply to the proxy SN under the same connection id; it relays to
    // whoever asked.
    ilp::ilp_header reply;
    reply.service = ilp::svc::odns;
    reply.connection = h.connection;
    reply.flags = ilp::kFlagFromHost;
    reply.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
    reply.set_meta_u64(ilp::meta_key::dest_addr, *proxy);
    stack_.pipes().send(stack_.first_hop_sn(), reply,
                        reply_seal(opened->second, to_bytes(value)));
  });
}

}  // namespace interedge::services
