#include "services/clients/content.h"

#include "services/delivery.h"

namespace interedge::services {

content_client::content_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::delivery, [this](const ilp::ilp_header& h, bytes payload) {
    const auto key = get_skey_str(h, skey::content_key);
    const auto stage = get_skey_u64(h, skey::stage);
    if (!key || stage != kContentResponse) return;
    auto it = pending_.find(*key);
    if (it == pending_.end()) return;
    auto handler = std::move(it->second);
    pending_.erase(it);
    ++responses_;
    if (handler) handler(*key, std::move(payload));
  });
}

void content_client::fetch(host::edge_addr origin, const std::string& key,
                           content_handler handler) {
  pending_[key] = std::move(handler);
  auto conn = stack_.open(origin, ilp::svc::delivery, stack_.first_hop_sn());
  conn.set_option(ilp::meta_key::bundle_options, kBundleCaching);
  conn.set_option_str(static_cast<ilp::meta_key>(skey::content_key), key);
  conn.set_option(static_cast<ilp::meta_key>(skey::stage), kContentRequest);
  conn.send({});
}

content_origin::content_origin(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::delivery, [this](const ilp::ilp_header& h, bytes) {
    const auto key = get_skey_str(h, skey::content_key);
    const auto stage = get_skey_u64(h, skey::stage).value_or(kContentRequest);
    const auto requester = h.meta_u64(ilp::meta_key::src_addr);
    if (!key || stage != kContentRequest || !requester) return;
    auto it = store_.find(*key);
    if (it == store_.end()) return;
    ++served_;
    auto conn = stack_.open(*requester, ilp::svc::delivery, stack_.first_hop_sn());
    conn.set_option(ilp::meta_key::bundle_options, kBundleCaching);
    conn.set_option_str(static_cast<ilp::meta_key>(skey::content_key), *key);
    conn.set_option(static_cast<ilp::meta_key>(skey::stage), kContentResponse);
    conn.send(it->second);
  });
}

}  // namespace interedge::services
