#include "services/clients/cluster_client.h"

#include "common/serial.h"

namespace interedge::services {

cluster_gateway::cluster_gateway(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::cluster, [this](const ilp::ilp_header&, bytes payload) {
    try {
      reader r(payload);
      const std::uint64_t inner_dest = r.u64();
      const auto frame = r.blob();
      ++received_;
      if (handler_) handler_(inner_dest, bytes(frame.begin(), frame.end()));
    } catch (const serial_error&) {
    }
  });
}

void cluster_gateway::control(const std::string& op, const std::string& cluster) {
  ilp::ilp_header h;
  h.service = ilp::svc::cluster;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  h.set_meta_u64(ilp::meta_key::reply_to, stack_.addr());
  set_skey_str(h, skey::group, cluster);
  stack_.pipes().send(stack_.first_hop_sn(), h, {});
}

void cluster_gateway::attach(const std::string& cluster) {
  control(cluster_ops::attach, cluster);
}

void cluster_gateway::detach(const std::string& cluster) {
  control(cluster_ops::detach, cluster);
}

void cluster_gateway::send_frame(const std::string& cluster, std::uint64_t inner_dest,
                                 bytes frame) {
  writer w(8 + frame.size());
  w.u64(inner_dest);
  w.blob(frame);
  ilp::ilp_header h;
  h.service = ilp::svc::cluster;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
  set_skey_str(h, skey::group, cluster);
  stack_.pipes().send(stack_.first_hop_sn(), h, w.take());
}

}  // namespace interedge::services
