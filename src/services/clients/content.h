// Host-side content (CDN bundle) logic: a fetch client and an origin
// server, both built on the delivery service with the caching option set.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

// Requests content by key from an origin; responses may come from any SN
// cache on the path (transparent to the client).
class content_client {
 public:
  using content_handler = std::function<void(const std::string& key, bytes body)>;

  explicit content_client(host::host_stack& stack);

  void fetch(host::edge_addr origin, const std::string& key, content_handler handler);
  std::uint64_t responses() const { return responses_; }

 private:
  host::host_stack& stack_;
  std::map<std::string, content_handler> pending_;  // key -> handler
  std::uint64_t responses_ = 0;
  std::uint64_t next_conn_ = 1;
};

// Origin server: answers content requests from its in-memory store.
class content_origin {
 public:
  explicit content_origin(host::host_stack& stack);

  void put(const std::string& key, bytes body) { store_[key] = std::move(body); }
  std::uint64_t requests_served() const { return served_; }

 private:
  host::host_stack& stack_;
  std::map<std::string, bytes> store_;
  std::uint64_t served_ = 0;
};

}  // namespace interedge::services
