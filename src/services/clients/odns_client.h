// Host-side oDNS logic: stub resolver (client) and the authoritative
// oblivious resolver application.
//
// The client seals its query to the resolver's published key; only the
// resolver can read the name, and only the proxy SN knows who asked.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "host/host_stack.h"
#include "services/common.h"
#include "services/envelope.h"

namespace interedge::services {

class odns_client {
 public:
  using answer_handler = std::function<void(const std::string& name, const std::string& value)>;

  odns_client(host::host_stack& stack, crypto::x25519_key resolver_public);

  void query(const std::string& name, answer_handler handler);
  std::uint64_t answers() const { return answers_; }

 private:
  struct pending {
    std::string name;
    reply_key key;
    answer_handler handler;
  };
  host::host_stack& stack_;
  crypto::x25519_key resolver_public_;
  std::map<ilp::connection_id, pending> pending_;
  std::uint64_t next_conn_ = 1;
  std::uint64_t answers_ = 0;
};

// The resolver application: decrypts queries, answers from its zone data,
// and replies via the proxy SN without ever learning the client identity.
class odns_resolver {
 public:
  explicit odns_resolver(host::host_stack& stack);

  const crypto::x25519_key& public_key() const { return keypair_.public_key; }
  void add_record(const std::string& name, const std::string& value) { zone_[name] = value; }

  std::uint64_t queries_answered() const { return answered_; }
  // Source addresses observed on incoming queries — for privacy tests:
  // must only ever contain SN (proxy) identities.
  const std::vector<host::edge_addr>& observed_sources() const { return observed_; }

 private:
  host::host_stack& stack_;
  crypto::x25519_keypair keypair_;
  std::map<std::string, std::string> zone_;
  std::uint64_t answered_ = 0;
  std::vector<host::edge_addr> observed_;
};

}  // namespace interedge::services
