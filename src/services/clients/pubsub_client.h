// Host-side pub/sub logic (paper §3.1: the host component implements
// "client-side support for services — such as pub/sub ... — that require
// host logic").
//
// Keeps the authoritative subscription set on the host so the paper's
// host-driven state reconstruction works: after an SN failure/replacement,
// resync() re-issues every subscription (§3.3).
#pragma once

#include <functional>
#include <map>
#include <string>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

class pubsub_client {
 public:
  using message_handler = std::function<void(const std::string& topic, bytes payload)>;

  explicit pubsub_client(host::host_stack& stack);

  void subscribe(const std::string& topic, message_handler handler);
  void unsubscribe(const std::string& topic);
  void publish(const std::string& topic, bytes payload);

  // Host-driven state reconstruction: re-subscribe everything (e.g. after
  // the first-hop SN was replaced).
  void resync();

  std::size_t topic_count() const { return handlers_.size(); }
  std::uint64_t acks() const { return acks_; }
  std::uint64_t denials() const { return denials_; }

 private:
  void send_subscribe(const std::string& topic);

  host::host_stack& stack_;
  std::map<std::string, message_handler> handlers_;
  std::uint64_t acks_ = 0;
  std::uint64_t denials_ = 0;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
