// Host-side message-queue logic: producers push, consumers pop/ack, all
// via control messages to the first-hop SN (which routes to the queue's
// home SN through the name registry).
#pragma once

#include <functional>
#include <string>

#include "host/host_stack.h"
#include "services/common.h"

namespace interedge::services {

class queue_client {
 public:
  using message_handler =
      std::function<void(const std::string& queue, std::uint64_t seq, bytes body)>;
  using empty_handler = std::function<void(const std::string& queue)>;

  explicit queue_client(host::host_stack& stack);

  void create(const std::string& queue);
  void push(const std::string& queue, bytes body);
  // Requests one message; it arrives via the message handler (or the empty
  // handler). The consumer must ack(seq) within the visibility timeout.
  void pop(const std::string& queue);
  void ack(const std::string& queue, std::uint64_t seq);

  void set_message_handler(message_handler handler) { on_message_ = std::move(handler); }
  void set_empty_handler(empty_handler handler) { on_empty_ = std::move(handler); }

  std::uint64_t received() const { return received_; }

 private:
  void control(const std::string& op, const std::string& queue, bytes body,
               std::optional<std::uint64_t> seq = std::nullopt);

  host::host_stack& stack_;
  message_handler on_message_;
  empty_handler on_empty_;
  std::uint64_t received_ = 0;
  std::uint64_t next_conn_ = 1;
};

}  // namespace interedge::services
