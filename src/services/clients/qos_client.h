// Host-side last-hop QoS logic: a receiver pushes its access-link profile
// to its first-hop SN out of band.
#pragma once

#include "host/host_stack.h"
#include "services/qos.h"

namespace interedge::services {

class qos_client {
 public:
  explicit qos_client(host::host_stack& stack) : stack_(stack) {}

  // Declares the receiver's access capacity and stream rules to the
  // first-hop SN (paper §6: a household prioritizing gaming over
  // streaming).
  void configure(const qos_profile& profile) {
    ilp::ilp_header h;
    h.service = ilp::svc::last_hop_qos;
    h.connection = 1;
    h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
    h.set_meta_str(ilp::meta_key::control_op, ops::qos_configure);
    h.set_meta_u64(ilp::meta_key::src_addr, stack_.addr());
    stack_.pipes().send(stack_.first_hop_sn(), h, profile.encode());
  }

 private:
  host::host_stack& stack_;
};

}  // namespace interedge::services
