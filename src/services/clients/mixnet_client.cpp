#include "services/clients/mixnet_client.h"

#include "common/serial.h"
#include "services/envelope.h"
#include "services/mixnet.h"

namespace interedge::services {

mixnet_client::mixnet_client(host::host_stack& stack) : stack_(stack) {
  stack_.set_service_handler(ilp::svc::mixnet, [this](const ilp::ilp_header&, bytes payload) {
    if (handler_) handler_(std::move(payload));
  });
}

bytes mixnet_client::build_onion(const std::vector<mix_node>& hops, host::edge_addr dest,
                                 const_byte_span payload) {
  // Innermost layer: the exit instruction, sealed to the last mix.
  writer exit_layer;
  exit_layer.u8(kMixExit);
  exit_layer.u64(dest);
  exit_layer.blob(payload);
  bytes onion = envelope_seal(hops.back().public_key, exit_layer.data());

  // Wrap outward: each earlier mix learns only its successor.
  for (std::size_t i = hops.size() - 1; i-- > 0;) {
    writer layer;
    layer.u8(kMixRelay);
    layer.u64(hops[i + 1].sn);
    layer.blob(onion);
    onion = envelope_seal(hops[i].public_key, layer.data());
  }
  return onion;
}

void mixnet_client::send(const std::vector<mix_node>& hops, host::edge_addr dest,
                         bytes payload) {
  if (hops.empty()) return;
  ilp::ilp_header h;
  h.service = ilp::svc::mixnet;
  h.connection = next_conn_++;
  h.flags = ilp::kFlagFromHost;
  // Entry point: the first mix. The sender's own identity appears only on
  // the first hop (as the L3 source of the host->SN pipe).
  h.set_meta_u64(ilp::meta_key::dest_addr, hops.front().sn);
  stack_.pipes().send(stack_.first_hop_sn(), h, build_onion(hops, dest, payload));
}

}  // namespace interedge::services
