// Weighted-fair-queueing + strict-priority scheduler used by the last-hop
// QoS service (paper §6: receivers specify "a set of weights or priorities
// (for weighted-fair-queueing and/or priority scheduling) for various
// traffic streams").
//
// Classic virtual-finish-time WFQ:
//   * strict priority between priority levels (lower value = served first);
//   * within a level, each class c has weight w_c; an arriving item of size
//     s gets finish time F = max(V, F_prev(c)) + s / w_c and the scheduler
//     always releases the smallest F — long-run throughput shares converge
//     to the weight ratios.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

namespace interedge::services {

template <typename T>
class wfq_scheduler {
 public:
  struct class_config {
    std::uint32_t priority = 0;  // 0 = highest
    double weight = 1.0;
    std::size_t max_queue = 1024;
  };

  void configure_class(std::uint64_t class_id, class_config config) {
    auto& c = classes_[class_id];
    c.config = config;
  }

  bool has_class(std::uint64_t class_id) const { return classes_.count(class_id) > 0; }

  // Enqueues into a class; returns false (drop) if the class queue is full
  // or the class was never configured.
  bool enqueue(std::uint64_t class_id, T item, std::size_t size) {
    auto it = classes_.find(class_id);
    if (it == classes_.end()) return false;
    cls& c = it->second;
    if (c.queue.size() >= c.config.max_queue) {
      ++dropped_;
      return false;
    }
    auto& level = levels_[c.config.priority];
    const double start = std::max(level.virtual_time, c.last_finish);
    const double finish = start + static_cast<double>(size) / std::max(c.config.weight, 1e-9);
    c.last_finish = finish;
    c.queue.push_back(entry{std::move(item), size, finish});
    ++queued_;
    return true;
  }

  // Releases the next item: highest-priority non-empty level, smallest
  // virtual finish time within it.
  std::optional<T> dequeue() {
    for (auto& [priority, level] : levels_) {
      std::uint64_t best_class = 0;
      const entry* best = nullptr;
      for (auto& [id, c] : classes_) {
        if (c.config.priority != priority || c.queue.empty()) continue;
        if (!best || c.queue.front().finish < best->finish) {
          best = &c.queue.front();
          best_class = id;
        }
      }
      if (best) {
        cls& c = classes_[best_class];
        entry e = std::move(c.queue.front());
        c.queue.pop_front();
        level.virtual_time = e.finish;
        --queued_;
        ++released_;
        return std::move(e.item);
      }
    }
    return std::nullopt;
  }

  // Size (bytes) of the item that dequeue() would release next.
  std::optional<std::size_t> peek_size() const {
    for (const auto& [priority, level] : levels_) {
      const entry* best = nullptr;
      for (const auto& [id, c] : classes_) {
        if (c.config.priority != priority || c.queue.empty()) continue;
        if (!best || c.queue.front().finish < best->finish) best = &c.queue.front();
      }
      if (best) return best->size;
    }
    return std::nullopt;
  }

  bool empty() const { return queued_ == 0; }
  std::size_t pending() const { return queued_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t released() const { return released_; }

 private:
  struct entry {
    T item;
    std::size_t size;
    double finish;
  };
  struct cls {
    class_config config;
    std::deque<entry> queue;
    double last_finish = 0.0;
  };
  struct priority_level {
    double virtual_time = 0.0;
  };

  std::map<std::uint64_t, cls> classes_;
  std::map<std::uint32_t, priority_level> levels_;  // ordered: 0 first
  std::size_t queued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace interedge::services
