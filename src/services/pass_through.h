// Operator-imposed pass-through SN logic (paper §3.2, third invocation
// mode): "an enterprise may impose a firewall service or an SD-WAN service
// on all traffic entering and leaving its network. In this case, the
// enterprise would have what we call a 'pass-through' SN at its boundary
// that terminates ILP and executes the operator-imposed services, and then
// forwards to the next-hop SN where the client-invoked InterEdge services
// would be implemented."
//
// Install via exec_env::set_interceptor(). Behaviour:
//   * packets from enterprise hosts: operator rules applied; survivors are
//     forwarded verbatim to the configured upstream SN (SD-WAN-style exit
//     selection is a rule away) — the client-invoked service runs there;
//   * packets arriving from outside for enterprise hosts: rules applied,
//     survivors delivered to the host;
//   * anything the rules reject is dropped and fast-path cached.
#pragma once

#include <map>
#include <set>

#include "core/service_module.h"
#include "services/common.h"
#include "services/firewall.h"

namespace interedge::services {

class pass_through_service final : public core::service_module {
 public:
  explicit pass_through_service(core::peer_id upstream_sn) : upstream_(upstream_sn) {}

  ilp::service_id id() const override { return ilp::svc::firewall; }
  std::string_view name() const override { return "pass-through"; }

  void add_rule(firewall_rule rule) { rules_.push_back(rule); }
  // Hosts inside the enterprise boundary (traffic direction detection).
  void add_enterprise_host(core::edge_addr host) { enterprise_hosts_.insert(host); }

  // SD-WAN-style exit selection (the paper's other operator-imposed
  // example): outbound traffic of a given inner service leaves through a
  // specific upstream SN instead of the default (e.g. latency-sensitive
  // services via the premium transit IESP).
  void set_service_exit(ilp::service_id service, core::peer_id upstream) {
    service_exits_[service] = upstream;
  }

  void start(core::service_context& ctx) override { blocked_metric_.bind(ctx); }

  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override {
    const std::uint64_t src = pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src);
    const std::uint64_t dest = pkt.header.meta_u64(ilp::meta_key::dest_addr).value_or(0);
    const std::uint64_t inner = pkt.header.service;

    for (const firewall_rule& rule : rules_) {
      if (!rule.matches(src, dest, inner)) continue;
      if (!rule.allow) {
        ++blocked_;
        blocked_metric_.add(ctx);
        core::module_result r = core::module_result::drop();
        // Control packets are never fast-path cached by the terminus, so
        // this insert only affects data connections.
        r.cache_inserts.emplace_back(
            core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
            core::decision::drop_packet());
        return r;
      }
      break;
    }

    const bool is_control = (pkt.header.flags & ilp::kFlagControl) != 0;
    auto forward_cached = [&](core::peer_id hop) {
      core::module_result r = core::module_result::forward(hop);
      if (!is_control) {
        r.cache_inserts.emplace_back(
            core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
            core::decision::forward_to(hop));
      }
      return r;
    };

    // Outbound leg: enterprise host -> upstream IESP SN (per-service exit
    // override first, then the default upstream).
    if (enterprise_hosts_.count(pkt.l3_src)) {
      ++passed_out_;
      auto exit_it = service_exits_.find(pkt.header.service);
      return forward_cached(exit_it != service_exits_.end() ? exit_it->second : upstream_);
    }

    // Inbound leg: deliver to the enterprise host it addresses.
    if (dest != 0 && enterprise_hosts_.count(dest)) {
      ++passed_in_;
      return forward_cached(dest);
    }

    // Not enterprise traffic (e.g. the SN's own service frames): continue
    // to this SN's service modules.
    return core::module_result::deliver();
  }

  std::uint64_t blocked() const { return blocked_; }
  std::uint64_t passed_out() const { return passed_out_; }
  std::uint64_t passed_in() const { return passed_in_; }

 private:
  core::peer_id upstream_;
  std::vector<firewall_rule> rules_;
  std::map<ilp::service_id, core::peer_id> service_exits_;
  std::set<core::edge_addr> enterprise_hosts_;
  std::uint64_t blocked_ = 0;
  std::uint64_t passed_out_ = 0;
  std::uint64_t passed_in_ = 0;
  counter_handle blocked_metric_{"pass_through.blocked"};
};

}  // namespace interedge::services
