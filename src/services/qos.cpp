#include "services/qos.h"

#include "common/serial.h"

namespace interedge::services {

bytes qos_profile::encode() const {
  writer w;
  w.u64(access_bps);
  w.varint(rules.size());
  for (const qos_stream_rule& r : rules) {
    w.u64(r.src_prefix);
    w.u8(r.prefix_bits);
    w.u32(r.priority);
    w.u64(static_cast<std::uint64_t>(r.weight * 1000.0));  // milli-weight
  }
  return w.take();
}

qos_profile qos_profile::decode(const_byte_span data) {
  reader r(data);
  qos_profile p;
  p.access_bps = r.u64();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    qos_stream_rule rule;
    rule.src_prefix = r.u64();
    rule.prefix_bits = r.u8();
    rule.priority = r.u32();
    rule.weight = static_cast<double>(r.u64()) / 1000.0;
    p.rules.push_back(rule);
  }
  return p;
}

std::size_t qos_service::classify(const qos_profile& profile, std::uint64_t src) {
  for (std::size_t i = 0; i < profile.rules.size(); ++i) {
    if (profile.rules[i].matches(src)) return i;
  }
  return profile.rules.size();  // default class
}

core::module_result qos_service::handle_control(core::service_context& ctx,
                                                const core::packet& pkt) {
  const auto op = pkt.header.meta_str(ilp::meta_key::control_op);
  const auto src = pkt.header.meta_u64(ilp::meta_key::src_addr);
  if (!op || !src || *op != ops::qos_configure) return core::module_result::drop();

  try {
    receiver_state state;
    state.profile = qos_profile::decode(pkt.payload);
    // One scheduler class per rule plus a default best-effort class.
    for (std::size_t i = 0; i < state.profile.rules.size(); ++i) {
      state.scheduler.configure_class(
          i, {.priority = state.profile.rules[i].priority,
              .weight = state.profile.rules[i].weight,
              .max_queue = 1024});
    }
    state.scheduler.configure_class(state.profile.rules.size(),
                                    {.priority = 0xffffffff, .weight = 1.0, .max_queue = 1024});
    receivers_[*src] = std::move(state);
    profiles_metric_.add(ctx);
  } catch (const serial_error&) {
    return core::module_result::drop();
  }
  return core::module_result::deliver();
}

void qos_service::start_drain(core::service_context& ctx, core::edge_addr receiver) {
  auto it = receivers_.find(receiver);
  if (it == receivers_.end() || it->second.draining) return;
  it->second.draining = true;

  // Release one packet, then schedule the next release after its
  // serialization time on the declared access link.
  std::function<void()> drain = [this, &ctx, receiver]() {
    auto rit = receivers_.find(receiver);
    if (rit == receivers_.end()) return;
    receiver_state& state = rit->second;
    auto next = state.scheduler.dequeue();
    if (!next) {
      state.draining = false;
      return;
    }
    const std::size_t size = next->payload.size();
    const auto hop = ctx.next_hop(receiver);
    if (hop) {
      ctx.send(*hop, next->header, std::move(next->payload));
      ++state.shaped;
    }
    const double bps = static_cast<double>(std::max<std::uint64_t>(state.profile.access_bps, 1));
    const auto transmit =
        nanoseconds(static_cast<std::int64_t>(static_cast<double>(size) * 8 * 1.0e9 / bps));
    ctx.schedule(transmit, [this, &ctx, receiver]() {
      auto r2 = receivers_.find(receiver);
      if (r2 == receivers_.end()) return;
      r2->second.draining = false;
      if (!r2->second.scheduler.empty()) start_drain(ctx, receiver);
    });
  };
  ctx.schedule(nanoseconds(0), drain);
}

core::module_result qos_service::on_packet(core::service_context& ctx, const core::packet& pkt) {
  if (pkt.header.flags & ilp::kFlagControl) return handle_control(ctx, pkt);

  const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
  if (!dest) return core::module_result::drop();

  auto it = receivers_.find(*dest);
  if (it == receivers_.end()) {
    // Receiver has no QoS profile here: plain forwarding.
    const auto hop = ctx.next_hop(*dest);
    if (!hop) return core::module_result::drop();
    core::module_result r = core::module_result::forward(*hop);
    r.cache_inserts.emplace_back(
        core::cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
        core::decision::forward_to(*hop));
    return r;
  }

  const std::uint64_t src = pkt.header.meta_u64(ilp::meta_key::src_addr).value_or(pkt.l3_src);
  const std::size_t cls = classify(it->second.profile, src);
  ilp::ilp_header header = pkt.header;
  header.flags |= ilp::kFlagToHost;
  const std::size_t size = std::max<std::size_t>(pkt.payload.size(), 1);
  it->second.scheduler.enqueue(cls, pending_packet{std::move(header), pkt.payload}, size);
  start_drain(ctx, *dest);
  return core::module_result::deliver();  // consumed; released by the shaper
}

std::uint64_t qos_service::shaped(core::edge_addr receiver) const {
  auto it = receivers_.find(receiver);
  return it == receivers_.end() ? 0 : it->second.shaped;
}

std::uint64_t qos_service::dropped(core::edge_addr receiver) const {
  auto it = receivers_.find(receiver);
  return it == receivers_.end() ? 0 : it->second.scheduler.dropped();
}

}  // namespace interedge::services
