// Public-key sealed envelopes (X25519 + HKDF + ChaCha20-Poly1305), the
// building block for the privacy services: oDNS queries encrypted to the
// resolver, mixnet onion layers encrypted to each mix node.
//
// seal():  ephemeral_pub(32) || AEAD_{k}(plaintext), k = HKDF(DH(e, R)).
// Each seal uses a fresh ephemeral key, so a fixed zero nonce is safe.
// seal_with_reply() additionally derives a symmetric reply key both sides
// share, so the recipient can answer without knowing the sender.
#pragma once

#include <optional>
#include <utility>

#include "common/bytes.h"
#include "crypto/x25519.h"

namespace interedge::services {

inline constexpr std::size_t kEnvelopeOverhead = 32 + 16;  // eph pub + tag

bytes envelope_seal(const crypto::x25519_key& recipient_public, const_byte_span plaintext);
std::optional<bytes> envelope_open(const crypto::x25519_key& recipient_secret,
                                   const_byte_span sealed);

// Variants that also derive a shared reply key.
using reply_key = std::array<std::uint8_t, 32>;
std::pair<bytes, reply_key> envelope_seal_with_reply(const crypto::x25519_key& recipient_public,
                                                     const_byte_span plaintext);
std::optional<std::pair<bytes, reply_key>> envelope_open_with_reply(
    const crypto::x25519_key& recipient_secret, const_byte_span sealed);

// Symmetric seal/open under a reply key (fresh random nonce per message).
bytes reply_seal(const reply_key& key, const_byte_span plaintext);
std::optional<bytes> reply_open(const reply_key& key, const_byte_span sealed);

}  // namespace interedge::services
