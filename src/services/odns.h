// Oblivious DNS service (paper §6: "The use of enclaves makes it simpler
// to implement oDNS, private relays, ..."; oDNS is in the prototype's
// deployed-services list).
//
// The oDNS split: the client's first-hop SN acts as the *proxy* — it sees
// who is asking but not what (queries are envelope-sealed to the resolver's
// public key); the resolver sees the question but not who asked (the proxy
// re-originates the query under its own identity).
//
//   client --[sealed query]--> proxy SN --[sealed query, src=SN]--> resolver
//   client <--[sealed answer]-- proxy SN <--[sealed answer]-------- resolver
//
// The resolver is an ordinary host running services/clients/odns_resolver.
// Its address comes from the standardized module config key "resolver".
// Deploy this module inside an enclave_runtime for the paper's full
// privacy story (the tests do both).
#pragma once

#include <map>

#include "core/service_module.h"
#include "services/common.h"

namespace interedge::services {

class odns_service final : public core::service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::odns; }
  std::string_view name() const override { return "odns"; }

  void start(core::service_context& ctx) override { proxied_metric_.bind(ctx); }
  core::module_result on_packet(core::service_context& ctx, const core::packet& pkt) override;

  std::uint64_t proxied_queries() const { return proxied_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct pending_query {
    core::edge_addr client = 0;
    ilp::connection_id client_connection = 0;
  };

  std::map<ilp::connection_id, pending_query> pending_;  // proxy conn -> client
  ilp::connection_id next_proxy_conn_ = 1;
  std::uint64_t proxied_ = 0;
  counter_handle proxied_metric_{"odns.proxied"};
};

}  // namespace interedge::services
