// WireGuard-style tunnel (Appendix C "Direct peering"): the paper
// benchmarks Wireguard to show a commodity server "could easily maintain
// 98,000 simultaneous tunnels, each doing symmetric key rotation every
// three minutes" at <0.5 core and ~3.4 Mbps.
//
// Substitution: we implement our own Noise-IK-shaped tunnel with the same
// cryptographic workload per rekey — ephemeral X25519 keys, 3-4 DH
// operations per side, HKDF chains, AEAD-sealed handshake payloads — and
// the same wire sizes (148-byte initiation, 92-byte response), so the
// peering-scale benchmark measures equivalent work. Not wire-compatible
// with WireGuard.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/trace.h"
#include "crypto/aead.h"
#include "crypto/x25519.h"

namespace interedge::tunnel {

inline constexpr std::size_t kInitiationSize = 148;
inline constexpr std::size_t kResponseSize = 92;

struct tunnel_stats {
  std::uint64_t handshakes = 0;
  std::uint64_t handshake_bytes = 0;
  std::uint64_t data_sealed = 0;
  std::uint64_t data_opened = 0;
  std::uint64_t rejected = 0;
};

// One endpoint of a tunnel. Both ends know each other's static public key
// (as inter-edomain peers do, via the peering agreement).
class tunnel_endpoint {
 public:
  tunnel_endpoint(const crypto::x25519_keypair& static_keys,
                  const crypto::x25519_key& peer_static_public);

  // ---- handshake (initiator) ----
  // Produces the 148-byte initiation message and stores ephemeral state.
  bytes create_initiation();
  // Consumes the 92-byte response; true on success (transport keys ready).
  bool consume_response(const_byte_span response);

  // ---- handshake (responder) ----
  // Consumes an initiation; returns the 92-byte response on success.
  std::optional<bytes> consume_initiation(const_byte_span initiation);

  bool established() const { return established_; }

  // Path-trace correlation (ISSUE 5): with a recorder installed, every
  // completed handshake emits a kAnnoRekey node event span, so traces
  // crossing a peering link during a rekey window carry the annotation.
  void enable_tracing(trace::path_recorder* rec) { path_rec_ = rec; }

  // ---- transport ----
  // counter-nonce AEAD; 16-byte tag + 8-byte counter overhead.
  bytes seal(const_byte_span plaintext);
  std::optional<bytes> open(const_byte_span sealed);

  const tunnel_stats& stats() const { return stats_; }

 private:
  void derive_transport(const crypto::x25519_key& chain, bool initiator);

  crypto::x25519_keypair static_;
  crypto::x25519_key peer_static_;
  crypto::x25519_keypair ephemeral_;  // initiator's in-flight handshake
  std::array<std::uint8_t, 32> send_key_{};
  std::array<std::uint8_t, 32> recv_key_{};
  std::uint64_t send_counter_ = 0;
  bool established_ = false;
  tunnel_stats stats_;
  trace::path_recorder* path_rec_ = nullptr;
};

// A tunnel pair driven in-process (both ends on this machine), as the
// benchmark needs: runs full handshakes and counts bytes that would cross
// the wire.
class tunnel_pair {
 public:
  tunnel_pair(std::uint64_t seed_a, std::uint64_t seed_b);

  // Runs a complete rekey handshake; returns bytes exchanged on the wire.
  std::size_t rekey();

  bool verify_transport();  // seals/opens a probe in both directions

  tunnel_endpoint& a() { return a_; }
  tunnel_endpoint& b() { return b_; }

 private:
  static crypto::x25519_keypair keys_from_seed(std::uint64_t seed);
  tunnel_endpoint a_;
  tunnel_endpoint b_;
};

// Fleet of tunnels with a rotation schedule — the Appendix C workload.
class tunnel_fleet {
 public:
  tunnel_fleet(std::size_t count, nanoseconds rotation_interval, std::uint64_t seed = 1);

  // Rekeys every tunnel whose rotation deadline has passed; returns the
  // number rekeyed. Deadlines are staggered uniformly across the interval.
  std::size_t rotate_due(time_point now);

  std::size_t size() const { return tunnels_.size(); }
  std::uint64_t total_rekeys() const { return total_rekeys_; }
  std::uint64_t total_handshake_bytes() const { return total_bytes_; }

  // Installs `rec` on every endpoint (see tunnel_endpoint::enable_tracing).
  void enable_tracing(trace::path_recorder* rec);

 private:
  struct slot {
    std::unique_ptr<tunnel_pair> pair;
    time_point next_rekey;
  };
  std::vector<slot> tunnels_;
  nanoseconds interval_;
  std::uint64_t total_rekeys_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace interedge::tunnel
