#include "tunnel/tunnel.h"

#include <cstring>
#include <memory>

#include "common/rng.h"
#include "crypto/kdf.h"
#include "crypto/random.h"

namespace interedge::tunnel {
namespace {

// Chains two secrets into a new chaining key (Noise-style mix).
crypto::x25519_key mix(const crypto::x25519_key& chain, const crypto::x25519_key& input) {
  const bytes out = crypto::hkdf(const_byte_span(chain.data(), chain.size()),
                                 const_byte_span(input.data(), input.size()),
                                 to_bytes("interedge-tunnel-mix"), 32);
  crypto::x25519_key next;
  std::memcpy(next.data(), out.data(), 32);
  return next;
}

std::array<std::uint8_t, 32> handshake_key(const crypto::x25519_key& chain,
                                           std::string_view label) {
  const bytes out = crypto::hkdf({}, const_byte_span(chain.data(), chain.size()),
                                 to_bytes(label), 32);
  std::array<std::uint8_t, 32> k;
  std::memcpy(k.data(), out.data(), 32);
  return k;
}

void make_counter_nonce(std::uint8_t nonce[crypto::kAeadNonceSize], std::uint64_t counter) {
  std::memset(nonce, 0, crypto::kAeadNonceSize);
  for (int i = 0; i < 8; ++i) nonce[4 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
}

}  // namespace

tunnel_endpoint::tunnel_endpoint(const crypto::x25519_keypair& static_keys,
                                 const crypto::x25519_key& peer_static_public)
    : static_(static_keys), peer_static_(peer_static_public) {}

bytes tunnel_endpoint::create_initiation() {
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  ephemeral_ = crypto::x25519_keypair_from_seed(seed);

  // chain = mix(es) then mix(ss): the same DH count as WG msg 1.
  crypto::x25519_key chain{};
  chain = mix(chain, crypto::x25519(ephemeral_.secret, peer_static_));
  const auto k1 = handshake_key(chain, "k1");
  chain = mix(chain, crypto::x25519(static_.secret, peer_static_));
  const auto k2 = handshake_key(chain, "k2");

  // Layout (148 B): type(4) | sender(4) | ephemeral(32) |
  //   sealed static pub (32+16) | sealed timestamp (12+16) | mac1+mac2 (32)
  bytes msg;
  msg.reserve(kInitiationSize);
  const std::uint8_t type[4] = {1, 0, 0, 0};
  msg.insert(msg.end(), type, type + 4);
  std::uint8_t sender[4];
  crypto::random_bytes(sender);
  msg.insert(msg.end(), sender, sender + 4);
  msg.insert(msg.end(), ephemeral_.public_key.begin(), ephemeral_.public_key.end());

  std::uint8_t nonce[crypto::kAeadNonceSize];
  make_counter_nonce(nonce, 0);
  const bytes sealed_static =
      crypto::aead_seal(k1.data(), nonce, {},
                        const_byte_span(static_.public_key.data(), 32));
  msg.insert(msg.end(), sealed_static.begin(), sealed_static.end());

  std::uint8_t timestamp[12] = {};  // TAI64N placeholder, sealed like WG's
  const bytes sealed_ts = crypto::aead_seal(k2.data(), nonce, {},
                                            const_byte_span(timestamp, sizeof(timestamp)));
  msg.insert(msg.end(), sealed_ts.begin(), sealed_ts.end());

  // mac1/mac2 over the message so far, keyed by the peer's static key.
  const auto mac1 = crypto::hmac_sha256(const_byte_span(peer_static_.data(), 32), msg);
  msg.insert(msg.end(), mac1.begin(), mac1.begin() + 16);
  const auto mac2 = crypto::hmac_sha256(const_byte_span(peer_static_.data(), 32), msg);
  msg.insert(msg.end(), mac2.begin(), mac2.begin() + 16);

  ++stats_.handshakes;
  stats_.handshake_bytes += msg.size();
  return msg;
}

std::optional<bytes> tunnel_endpoint::consume_initiation(const_byte_span initiation) {
  if (initiation.size() != kInitiationSize) {
    ++stats_.rejected;
    return std::nullopt;
  }
  crypto::x25519_key their_ephemeral;
  std::copy(initiation.begin() + 8, initiation.begin() + 40, their_ephemeral.begin());

  crypto::x25519_key chain{};
  chain = mix(chain, crypto::x25519(static_.secret, their_ephemeral));  // es (mirrored)
  const auto k1 = handshake_key(chain, "k1");

  std::uint8_t nonce[crypto::kAeadNonceSize];
  make_counter_nonce(nonce, 0);
  const auto opened_static =
      crypto::aead_open(k1.data(), nonce, {}, initiation.subspan(40, 48));
  if (!opened_static || opened_static->size() != 32 ||
      !std::equal(opened_static->begin(), opened_static->end(), peer_static_.begin())) {
    ++stats_.rejected;
    return std::nullopt;  // not our configured peer
  }
  chain = mix(chain, crypto::x25519(static_.secret, peer_static_));  // ss
  const auto k2 = handshake_key(chain, "k2");
  const auto opened_ts = crypto::aead_open(k2.data(), nonce, {}, initiation.subspan(88, 28));
  if (!opened_ts) {
    ++stats_.rejected;
    return std::nullopt;
  }

  // Responder ephemeral; ee and se mixes, then transport keys.
  crypto::x25519_key seed;
  crypto::random_bytes(seed);
  const auto responder_ephemeral = crypto::x25519_keypair_from_seed(seed);
  chain = mix(chain, crypto::x25519(responder_ephemeral.secret, their_ephemeral));  // ee
  chain = mix(chain, crypto::x25519(responder_ephemeral.secret, peer_static_));     // se
  derive_transport(chain, /*initiator=*/false);

  // Response (92 B): type(4) | sender(4) | receiver(4) | ephemeral(32) |
  //   empty AEAD (16) | mac1+mac2 (32)
  bytes msg;
  msg.reserve(kResponseSize);
  const std::uint8_t type[4] = {2, 0, 0, 0};
  msg.insert(msg.end(), type, type + 4);
  std::uint8_t indices[8];
  crypto::random_bytes(indices);
  msg.insert(msg.end(), indices, indices + 8);
  msg.insert(msg.end(), responder_ephemeral.public_key.begin(),
             responder_ephemeral.public_key.end());
  const auto k3 = handshake_key(chain, "k3");
  const bytes sealed_empty = crypto::aead_seal(k3.data(), nonce, {}, {});
  msg.insert(msg.end(), sealed_empty.begin(), sealed_empty.end());
  const auto mac1 = crypto::hmac_sha256(const_byte_span(peer_static_.data(), 32), msg);
  msg.insert(msg.end(), mac1.begin(), mac1.begin() + 16);
  const auto mac2 = crypto::hmac_sha256(const_byte_span(peer_static_.data(), 32), msg);
  msg.insert(msg.end(), mac2.begin(), mac2.begin() + 16);

  ++stats_.handshakes;
  stats_.handshake_bytes += msg.size();
  return msg;
}

bool tunnel_endpoint::consume_response(const_byte_span response) {
  if (response.size() != kResponseSize) {
    ++stats_.rejected;
    return false;
  }
  crypto::x25519_key their_ephemeral;
  std::copy(response.begin() + 12, response.begin() + 44, their_ephemeral.begin());

  // Re-derive the chain the same way the responder did.
  crypto::x25519_key chain{};
  chain = mix(chain, crypto::x25519(ephemeral_.secret, peer_static_));  // es
  chain = mix(chain, crypto::x25519(static_.secret, peer_static_));     // ss
  chain = mix(chain, crypto::x25519(ephemeral_.secret, their_ephemeral));  // ee
  chain = mix(chain, crypto::x25519(static_.secret, their_ephemeral));     // se
  const auto k3 = handshake_key(chain, "k3");
  std::uint8_t nonce[crypto::kAeadNonceSize];
  make_counter_nonce(nonce, 0);
  if (!crypto::aead_open(k3.data(), nonce, {}, response.subspan(44, 16))) {
    ++stats_.rejected;
    return false;
  }
  derive_transport(chain, /*initiator=*/true);
  stats_.handshake_bytes += response.size();
  return true;
}

void tunnel_endpoint::derive_transport(const crypto::x25519_key& chain, bool initiator) {
  const bytes keys = crypto::hkdf({}, const_byte_span(chain.data(), chain.size()),
                                  to_bytes("interedge-tunnel-transport"), 64);
  if (initiator) {
    std::memcpy(send_key_.data(), keys.data(), 32);
    std::memcpy(recv_key_.data(), keys.data() + 32, 32);
  } else {
    std::memcpy(recv_key_.data(), keys.data(), 32);
    std::memcpy(send_key_.data(), keys.data() + 32, 32);
  }
  send_counter_ = 0;
  established_ = true;
  if (path_rec_ != nullptr) {
    // Rekey window marker: the collector folds this into traces crossing
    // the peering link around now.
    const std::uint64_t now = path_rec_->now();
    path_rec_->emit(trace::path_span{
        .trace_id = 0,
        .span_id = path_rec_->next_span_id(),
        .parent_span = 0,
        .node = path_rec_->node(),
        .connection = stats_.handshakes,
        .service = 0,
        .hop_count = 0,
        .kind = trace::span_kind::event,
        .verdict = trace::kVerdictNone,
        .annotations = trace::kAnnoRekey,
        .start_ns = now,
        .duration_ns = 0,
    });
  }
}

bytes tunnel_endpoint::seal(const_byte_span plaintext) {
  const std::uint64_t counter = send_counter_++;
  std::uint8_t nonce[crypto::kAeadNonceSize];
  make_counter_nonce(nonce, counter);
  bytes out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(counter >> (8 * i));
  const bytes sealed = crypto::aead_seal(send_key_.data(), nonce, {}, plaintext);
  out.insert(out.end(), sealed.begin(), sealed.end());
  ++stats_.data_sealed;
  return out;
}

std::optional<bytes> tunnel_endpoint::open(const_byte_span sealed) {
  if (sealed.size() < 8 + crypto::kAeadTagSize) {
    ++stats_.rejected;
    return std::nullopt;
  }
  std::uint64_t counter = 0;
  for (int i = 0; i < 8; ++i) counter |= static_cast<std::uint64_t>(sealed[i]) << (8 * i);
  std::uint8_t nonce[crypto::kAeadNonceSize];
  make_counter_nonce(nonce, counter);
  auto opened = crypto::aead_open(recv_key_.data(), nonce, {}, sealed.subspan(8));
  if (!opened) {
    ++stats_.rejected;
    return std::nullopt;
  }
  ++stats_.data_opened;
  return opened;
}

// ---- tunnel_pair / fleet ----------------------------------------------

crypto::x25519_keypair tunnel_pair::keys_from_seed(std::uint64_t seed) {
  rng r(seed);
  crypto::x25519_key k;
  r.fill(k);
  return crypto::x25519_keypair_from_seed(k);
}

tunnel_pair::tunnel_pair(std::uint64_t seed_a, std::uint64_t seed_b)
    : a_(keys_from_seed(seed_a), keys_from_seed(seed_b).public_key),
      b_(keys_from_seed(seed_b), keys_from_seed(seed_a).public_key) {}

std::size_t tunnel_pair::rekey() {
  const bytes initiation = a_.create_initiation();
  const auto response = b_.consume_initiation(initiation);
  if (!response) return initiation.size();
  a_.consume_response(*response);
  return initiation.size() + response->size();
}

bool tunnel_pair::verify_transport() {
  if (!a_.established() || !b_.established()) return false;
  const auto p1 = b_.open(a_.seal(to_bytes("probe-ab")));
  const auto p2 = a_.open(b_.seal(to_bytes("probe-ba")));
  return p1 && to_string(*p1) == "probe-ab" && p2 && to_string(*p2) == "probe-ba";
}

tunnel_fleet::tunnel_fleet(std::size_t count, nanoseconds rotation_interval, std::uint64_t seed)
    : interval_(rotation_interval) {
  tunnels_.reserve(count);
  rng r(seed);
  for (std::size_t i = 0; i < count; ++i) {
    slot s;
    s.pair = std::make_unique<tunnel_pair>(seed * 1000003 + 2 * i, seed * 1000003 + 2 * i + 1);
    // Stagger deadlines uniformly so rekeys spread across the interval.
    s.next_rekey = time_point(nanoseconds(
        static_cast<std::int64_t>(r.below(static_cast<std::uint64_t>(interval_.count())))));
    tunnels_.push_back(std::move(s));
  }
}

void tunnel_fleet::enable_tracing(trace::path_recorder* rec) {
  for (slot& s : tunnels_) {
    s.pair->a().enable_tracing(rec);
    s.pair->b().enable_tracing(rec);
  }
}

std::size_t tunnel_fleet::rotate_due(time_point now) {
  std::size_t rekeyed = 0;
  for (slot& s : tunnels_) {
    if (s.next_rekey > now) continue;
    total_bytes_ += s.pair->rekey();
    ++total_rekeys_;
    ++rekeyed;
    while (s.next_rekey <= now) s.next_rekey += interval_;
  }
  return rekeyed;
}

}  // namespace interedge::tunnel
