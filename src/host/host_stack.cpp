#include "host/host_stack.h"

#include "common/logging.h"
#include "common/serial.h"

namespace interedge::host {

void connection::send(bytes payload) {
  ilp::ilp_header header;
  header.service = service_;
  header.connection = id_;
  header.flags = ilp::kFlagFromHost;
  header.set_meta_u64(ilp::meta_key::dest_addr, remote_);
  header.set_meta_u64(ilp::meta_key::src_addr, stack_->addr());
  for (const auto& [key, value] : options_) header.metadata[key] = value;
  stack_->send_packet(via_, header, std::move(payload));
}

void connection::set_option(ilp::meta_key key, std::uint64_t value) {
  writer w(8);
  w.u64(value);
  options_[static_cast<std::uint16_t>(key)] = w.take();
}

void connection::set_option_str(ilp::meta_key key, std::string_view value) {
  options_[static_cast<std::uint16_t>(key)] = to_bytes(value);
}

host_stack::host_stack(host_config config, const clock& clk, send_datagram_fn send,
                       scheduler_fn scheduler, const lookup::lookup_service* directory)
    : config_(config),
      clock_(clk),
      scheduler_(std::move(scheduler)),
      directory_(directory),
      pipes_(
          config.addr, [s = std::move(send)](peer_id to, bytes d) { s(to, std::move(d)); },
          [this](peer_id from, const ilp::ilp_header& header, bytes payload) {
            ++received_;
            // Terminal deliver span: closes the trace the origin opened.
            std::uint64_t trace_start = 0;
            trace::trace_context tc{};
            if (path_rec_ != nullptr) {
              if (auto t = header.trace_ctx(); t && t->sampled()) {
                tc = *t;
                trace_start = path_rec_->now();
              }
            }
            const bool is_control = (header.flags & ilp::kFlagControl) != 0;
            auto& handlers = is_control ? control_handlers_ : service_handlers_;
            auto it = handlers.find(header.service);
            if (it != handlers.end() && it->second) {
              it->second(header, std::move(payload));
            } else if (default_handler_) {
              default_handler_(header, std::move(payload));
            } else {
              IE_LOG(debug) << "host " << config_.addr << ": unhandled packet from " << from
                            << " service " << header.service;
            }
            if (trace_start != 0) {
              path_rec_->emit(trace::path_span{
                  .trace_id = tc.trace_id,
                  .span_id = path_rec_->next_span_id(),
                  .parent_span = tc.parent_span,
                  .node = config_.addr,
                  .connection = header.connection,
                  .service = header.service,
                  .hop_count = tc.hop_count,
                  .kind = trace::span_kind::deliver,
                  .verdict = trace::kVerdictDeliver,
                  .annotations = 0,
                  .start_ns = trace_start,
                  .duration_ns = path_rec_->now() - trace_start,
              });
            }
          }),
      conn_rng_(config.connection_seed != 0 ? config.connection_seed : config.addr * 0x9e3779b9ull + 1) {
  if (config_.path_span_capacity > 0) {
    path_rec_ = std::make_unique<trace::path_recorder>(
        trace::path_recorder::config{.node = config_.addr,
                                     .sample_shift = config_.trace_sample_shift,
                                     .capacity = config_.path_span_capacity,
                                     .clk = &clk});
  }
}

void host_stack::on_datagram(peer_id from, const_byte_span datagram) {
  pipes_.on_datagram(from, datagram);
}

peer_id host_stack::route_first_hop(edge_addr dest, peer_id override_sn) {
  if (override_sn != 0) return override_sn;
  // §3.2 Direct connectivity: if the peer shares our first-hop SN (the
  // "same subnet" signal available to us), talk to it directly over ILP.
  if (config_.allow_direct && directory_ != nullptr) {
    const auto record = directory_->find_host(dest);
    if (record) {
      for (peer_id sn : record->service_nodes) {
        if (sn == config_.first_hop_sn) {
          ++direct_sends_;
          return dest;
        }
      }
    }
  }
  return config_.first_hop_sn;
}

connection host_stack::open(edge_addr dest, ilp::service_id service, peer_id via_sn) {
  connection c;
  c.stack_ = this;
  c.id_ = conn_rng_.next();
  c.service_ = service;
  c.remote_ = dest;
  c.via_ = route_first_hop(dest, via_sn);
  return c;
}

void host_stack::send_to(edge_addr dest, ilp::service_id service, bytes payload) {
  connection c = open(dest, service);
  c.send(std::move(payload));
}

void host_stack::send_control(ilp::service_id service, const std::string& operation, bytes args,
                              std::optional<ilp::connection_id> conn) {
  send_control_to(config_.first_hop_sn, service, operation, std::move(args), conn);
}

void host_stack::send_control_to(peer_id sn, ilp::service_id service,
                                 const std::string& operation, bytes args,
                                 std::optional<ilp::connection_id> conn) {
  ilp::ilp_header header;
  header.service = service;
  header.connection = conn.value_or(conn_rng_.next());
  header.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  header.set_meta_str(ilp::meta_key::control_op, operation);
  header.set_meta_u64(ilp::meta_key::src_addr, config_.addr);
  header.set_meta_u64(ilp::meta_key::reply_to, config_.addr);
  send_packet(sn, header, std::move(args));
}

void host_stack::set_service_handler(ilp::service_id service, receive_handler handler) {
  service_handlers_[service] = std::move(handler);
}

void host_stack::set_control_handler(ilp::service_id service, receive_handler handler) {
  control_handlers_[service] = std::move(handler);
}

bool host_stack::switch_to_fallback() {
  if (config_.fallback_sns.empty()) return false;
  config_.first_hop_sn = config_.fallback_sns.front();
  config_.fallback_sns.erase(config_.fallback_sns.begin());
  return true;
}

void host_stack::send_packet(peer_id via, ilp::ilp_header header, bytes payload) {
  ++sent_;
  // Origin of a path trace: the sampling decision is made exactly once,
  // here; the sampled bit rides the sealed context to every hop. A header
  // that already carries a context (a client relaying a traced packet) is
  // left alone — traces have one origin.
  if (path_rec_ != nullptr && !header.trace_ctx() && path_rec_->sample_tick()) {
    const std::uint64_t trace_id = path_rec_->new_trace_id();
    const std::uint64_t span_id = path_rec_->next_span_id();
    const std::uint64_t start = path_rec_->now();
    trace::trace_context ctx;
    ctx.trace_id = trace_id;
    ctx.parent_span = span_id;
    ctx.hop_count = 1;  // the first SN emits at hop 1; origin is hop 0
    ctx.flags = trace::kTraceCtxSampled;
    header.set_trace(ctx);
    pipes_.send(via, header, std::move(payload));
    arm_handshake_retry();
    path_rec_->emit(trace::path_span{
        .trace_id = trace_id,
        .span_id = span_id,
        .parent_span = 0,
        .node = config_.addr,
        .connection = header.connection,
        .service = header.service,
        .hop_count = 0,
        .kind = trace::span_kind::origin,
        .verdict = trace::kVerdictForward,
        .annotations = 0,
        .start_ns = start,
        .duration_ns = path_rec_->now() - start,
    });
    return;
  }
  pipes_.send(via, header, std::move(payload));
  arm_handshake_retry();
}

std::size_t host_stack::drain_path_spans(std::vector<trace::path_span>& out) {
  if (path_rec_ == nullptr) return 0;
  std::size_t total = 0;
  for (std::size_t n = path_rec_->drain(out); n > 0; n = path_rec_->drain(out)) total += n;
  return total;
}

void host_stack::arm_handshake_retry() {
  if (retry_armed_ || pipes_.pending_handshakes() == 0) return;
  retry_armed_ = true;
  scheduler_(std::chrono::milliseconds(kHandshakeRetryMs), [this] {
    retry_armed_ = false;
    if (pipes_.pending_handshakes() == 0) return;
    ++handshake_retries_;
    pipes_.retry_pending();
    arm_handshake_retry();
  });
}

}  // namespace interedge::host
