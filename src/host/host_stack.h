// Host support for the InterEdge (paper §3.1 "Host support", §3.2).
//
// "The InterEdge requires a host component that implements support for ILP.
// Additionally, the host component is also responsible for implementing
// client-side support for services — such as pub/sub, anycast and
// multicast — that require host logic."
//
// This is that component: it owns the host's ILP pipes, its first-hop SN
// association(s), the extended network API applications use to invoke
// services ("applications indicating their desired service to the host OS
// via an extended host network API"), the out-of-band control channel to
// the first-hop SN, and the direct host-to-host fast path for peers behind
// the same SN.
//
// Service-specific client logic (pub/sub subscriber state reconstruction,
// multicast join signing, ...) lives in services/clients/ and builds on
// this class.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/buf_pool.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/trace.h"
#include "ilp/pipe_manager.h"
#include "lookup/lookup_service.h"

namespace interedge::host {

using ilp::edge_addr;
using ilp::peer_id;

struct host_config {
  edge_addr addr = 0;  // also the host's L3 identifier in this implementation
  peer_id first_hop_sn = 0;
  std::vector<peer_id> fallback_sns;
  // Allow the §3.2 "Direct connectivity" optimization: hosts behind the
  // same first-hop SN exchange packets directly over ILP.
  bool allow_direct = true;
  std::uint64_t connection_seed = 0;  // 0 = derived from addr

  // Cross-hop path tracing (ISSUE 5). The host is where the sampling
  // decision is made — once, at the origin; every SN on the path honors
  // the sampled bit it finds in the sealed context. path_span_capacity 0
  // (the default) disables origination entirely.
  std::size_t path_span_capacity = 0;
  std::uint32_t trace_sample_shift = 8;  // sample 1 in 2^shift sends
};

// A point-to-point conversation using one InterEdge service. "There is no
// composition in such explicit invocations; hosts can only invoke a single
// service" — a connection is bound to exactly one service id (which may
// name a bundle).
class connection {
 public:
  ilp::connection_id id() const { return id_; }
  ilp::service_id service() const { return service_; }
  edge_addr remote() const { return remote_; }

  // Sends one datagram on this connection.
  void send(bytes payload);
  // Optional per-packet service metadata ("the invocation may have
  // optional settings (signalled in the metadata)").
  void set_option(ilp::meta_key key, std::uint64_t value);
  void set_option_str(ilp::meta_key key, std::string_view value);

 private:
  friend class host_stack;
  class host_stack* stack_ = nullptr;
  ilp::connection_id id_ = 0;
  ilp::service_id service_ = 0;
  edge_addr remote_ = 0;
  peer_id via_ = 0;  // first hop this connection uses (SN or the peer host)
  std::map<std::uint16_t, bytes> options_;
};

class host_stack {
 public:
  using send_datagram_fn = std::function<void(peer_id to, bytes datagram)>;
  using scheduler_fn = std::function<void(nanoseconds delay, std::function<void()> fn)>;
  // Handler for arriving application data: (source info header, payload).
  using receive_handler = std::function<void(const ilp::ilp_header&, bytes payload)>;

  host_stack(host_config config, const clock& clk, send_datagram_fn send,
             scheduler_fn scheduler, const lookup::lookup_service* directory);

  // Wire to the network.
  void on_datagram(peer_id from, const_byte_span datagram);

  // Zero-copy ingress convenience (ISSUE 6): accepts the slab views a
  // udp_endpoint::recv_batch_views / event_loop::attach_views hands over
  // and feeds each through on_datagram. Host traffic volume doesn't call
  // for a dedicated in-place datapath — the views simply skip the
  // transport-layer copy into owned bytes.
  void on_datagram_views(std::span<std::pair<peer_id, buf::pkt_view>> datagrams) {
    for (auto& [from, view] : datagrams) on_datagram(from, view.span());
  }

  edge_addr addr() const { return config_.addr; }
  peer_id first_hop_sn() const { return config_.first_hop_sn; }

  // ---- extended network API ----
  // Opens a connection to `dest` using `service`. `via_sn` overrides the
  // first-hop SN ("the host will use whichever first-hop SN is appropriate
  // for a given connection ... depend[ing] on who is paying").
  connection open(edge_addr dest, ilp::service_id service, peer_id via_sn = 0);

  // One-shot datagram without connection state.
  void send_to(edge_addr dest, ilp::service_id service, bytes payload);

  // Out-of-band control to the first-hop SN (§3.2 second invocation mode:
  // "services can be invoked by the host out of band (via a control
  // protocol between the host and its first-hop SN)").
  void send_control(ilp::service_id service, const std::string& operation, bytes args,
                    std::optional<ilp::connection_id> conn = std::nullopt);
  // Control message addressed to a specific SN (service clients use this).
  void send_control_to(peer_id sn, ilp::service_id service, const std::string& operation,
                       bytes args, std::optional<ilp::connection_id> conn = std::nullopt);

  // ---- receive dispatch ----
  void set_default_handler(receive_handler handler) { default_handler_ = std::move(handler); }
  void set_service_handler(ilp::service_id service, receive_handler handler);
  void set_control_handler(ilp::service_id service, receive_handler handler);

  // Failover to the next fallback SN (association management).
  bool switch_to_fallback();

  // Mobility: the host attached to a different first-hop SN (new access
  // network). Client-side service state (pub/sub etc.) is reconstructed by
  // the service clients' resync paths; the mobility service updates the
  // global record.
  void rehome(peer_id new_first_hop_sn) { config_.first_hop_sn = new_first_hop_sn; }

  // Raw pipe access for advanced clients.
  ilp::pipe_manager& pipes() { return pipes_; }
  void rotate_keys() { pipes_.rotate_all(); }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_received() const { return received_; }
  std::uint64_t direct_sends() const { return direct_sends_; }
  std::uint64_t handshake_retries() const { return handshake_retries_; }

  // Path tracing: null unless host_config::path_span_capacity > 0.
  trace::path_recorder* path_recorder() { return path_rec_.get(); }
  // Appends buffered origin/deliver spans to `out`; returns the count.
  std::size_t drain_path_spans(std::vector<trace::path_span>& out);

 private:
  friend class connection;
  // Lost handshakes (and the packets queued behind them) are recovered by
  // a periodic retry while any handshake is outstanding.
  static constexpr int kHandshakeRetryMs = 500;
  void send_packet(peer_id via, ilp::ilp_header header, bytes payload);
  void arm_handshake_retry();
  // Picks the first hop for a destination, applying the direct-path rule.
  peer_id route_first_hop(edge_addr dest, peer_id override_sn);

  host_config config_;
  const clock& clock_;
  scheduler_fn scheduler_;
  const lookup::lookup_service* directory_;
  ilp::pipe_manager pipes_;
  rng conn_rng_;
  std::unique_ptr<trace::path_recorder> path_rec_;
  receive_handler default_handler_;
  std::map<ilp::service_id, receive_handler> service_handlers_;
  std::map<ilp::service_id, receive_handler> control_handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t direct_sends_ = 0;
  std::uint64_t handshake_retries_ = 0;
  bool retry_armed_ = false;
};

}  // namespace interedge::host
