#!/bin/sh
# Regenerates every experiment (DESIGN.md §4). Each binary bounds its own
# runtime; google-benchmark binaries accept --benchmark_min_time.
#
# With --json, each google-benchmark binary additionally writes its full
# result set to BENCH_<name>.json (google-benchmark JSON format) in the
# repo root, for machine comparison across runs. The table harnesses
# (table1_enclave, peering_scale, ablation_services) print their own
# formats and are unaffected.
set -e
cd "$(dirname "$0")"

json=0
for arg in "$@"; do
  case "$arg" in
    --json) json=1 ;;
    *) echo "usage: $0 [--json]" >&2; exit 2 ;;
  esac
done

# run_gbench <name> [extra args...]: runs build/bench/<name>, adding JSON
# output flags when --json was given. Note: the bundled google-benchmark
# predates duration suffixes, so --benchmark_min_time takes a plain number.
run_gbench() {
  name="$1"; shift
  if [ "$json" = 1 ]; then
    ./build/bench/"$name" "$@" \
      --benchmark_out="BENCH_${name}.json" --benchmark_out_format=json
  else
    ./build/bench/"$name" "$@"
  fi
}

./build/bench/table1_enclave
echo
./build/bench/peering_scale --scale=0.05
echo
run_gbench ablation_decision_cache --benchmark_min_time=0.05
echo
run_gbench ablation_transport --benchmark_min_time=0.05
echo
run_gbench ablation_ilp_crypto --benchmark_min_time=0.05
echo
run_gbench ablation_enclave --benchmark_min_time=0.05
echo
# Includes the profiling-plane overhead arm (ISSUE 10):
# BM_IngressDatapath_Profiled rides this binary — the robustness datapath
# with a 97Hz sampling profiler armed on the bench thread and per-stage
# cycle attribution live. Compare pkts/s against
# BM_IngressDatapath_Robustness at the same batch; budget is <2% at 32.
# The profiler micro-costs (cycle_scope, ring push, drain, symbolize)
# live in ablation_observability below.
run_gbench ablation_batch_datapath --benchmark_min_time=0.05
echo
# Multi-core datapath sweep: workers 0/1/2/4/8 x feed batch 1/32. Each
# result row carries a "workers" counter (and per-shard hit rates) so the
# --json output is machine-comparable across worker counts.
run_gbench ablation_parallel_datapath --benchmark_min_time=0.05
echo
run_gbench ablation_observability --benchmark_min_time=0.05
echo
./build/bench/ablation_services --max_subscribers=64
echo
# Scenario suites (DESIGN.md §14): one JSON SLO verdict report per suite
# on stdout; with --json each is also written to SCENARIO_<suite>.json.
# Exits nonzero if any suite's verdicts fail, so CI gates on it directly.
if [ "$json" = 1 ]; then
  ./build/bench/scenario_suites --seed=42 --json
else
  ./build/bench/scenario_suites --seed=42
fi
