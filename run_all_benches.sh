#!/bin/sh
# Regenerates every experiment (DESIGN.md §4). Each binary bounds its own
# runtime; google-benchmark binaries accept --benchmark_min_time.
set -e
cd "$(dirname "$0")"
./build/bench/table1_enclave
echo
./build/bench/peering_scale --scale=0.05
echo
./build/bench/ablation_decision_cache --benchmark_min_time=0.05
echo
./build/bench/ablation_transport --benchmark_min_time=0.05
echo
./build/bench/ablation_ilp_crypto --benchmark_min_time=0.05
echo
./build/bench/ablation_enclave --benchmark_min_time=0.05
echo
./build/bench/ablation_services --max_subscribers=64
