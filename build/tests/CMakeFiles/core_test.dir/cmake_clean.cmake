file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/channel_test.cpp.o"
  "CMakeFiles/core_test.dir/core/channel_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/decision_cache_test.cpp.o"
  "CMakeFiles/core_test.dir/core/decision_cache_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/exec_env_test.cpp.o"
  "CMakeFiles/core_test.dir/core/exec_env_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/offpath_test.cpp.o"
  "CMakeFiles/core_test.dir/core/offpath_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pipe_terminus_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pipe_terminus_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/service_node_test.cpp.o"
  "CMakeFiles/core_test.dir/core/service_node_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
