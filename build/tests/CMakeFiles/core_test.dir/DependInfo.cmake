
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/channel_test.cpp" "tests/CMakeFiles/core_test.dir/core/channel_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/channel_test.cpp.o.d"
  "/root/repo/tests/core/decision_cache_test.cpp" "tests/CMakeFiles/core_test.dir/core/decision_cache_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/decision_cache_test.cpp.o.d"
  "/root/repo/tests/core/exec_env_test.cpp" "tests/CMakeFiles/core_test.dir/core/exec_env_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/exec_env_test.cpp.o.d"
  "/root/repo/tests/core/offpath_test.cpp" "tests/CMakeFiles/core_test.dir/core/offpath_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/offpath_test.cpp.o.d"
  "/root/repo/tests/core/pipe_terminus_test.cpp" "tests/CMakeFiles/core_test.dir/core/pipe_terminus_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipe_terminus_test.cpp.o.d"
  "/root/repo/tests/core/service_node_test.cpp" "tests/CMakeFiles/core_test.dir/core/service_node_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/service_node_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/interedge_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
