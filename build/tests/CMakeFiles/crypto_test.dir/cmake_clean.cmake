file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/kdf_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/kdf_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/psp_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/psp_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/siphash_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/siphash_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o.d"
  "crypto_test"
  "crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
