
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aead_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/aead_test.cpp.o.d"
  "/root/repo/tests/crypto/chacha20_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/chacha20_test.cpp.o.d"
  "/root/repo/tests/crypto/kdf_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/kdf_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/kdf_test.cpp.o.d"
  "/root/repo/tests/crypto/poly1305_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/poly1305_test.cpp.o.d"
  "/root/repo/tests/crypto/psp_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/psp_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/psp_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/siphash_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/siphash_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/siphash_test.cpp.o.d"
  "/root/repo/tests/crypto/x25519_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto/x25519_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
