file(REMOVE_RECURSE
  "CMakeFiles/ilp_test.dir/ilp/header_test.cpp.o"
  "CMakeFiles/ilp_test.dir/ilp/header_test.cpp.o.d"
  "CMakeFiles/ilp_test.dir/ilp/pipe_manager_test.cpp.o"
  "CMakeFiles/ilp_test.dir/ilp/pipe_manager_test.cpp.o.d"
  "CMakeFiles/ilp_test.dir/ilp/pipe_test.cpp.o"
  "CMakeFiles/ilp_test.dir/ilp/pipe_test.cpp.o.d"
  "ilp_test"
  "ilp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
