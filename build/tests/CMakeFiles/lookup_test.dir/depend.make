# Empty dependencies file for lookup_test.
# This may be replaced when dependencies are built.
