file(REMOVE_RECURSE
  "CMakeFiles/lookup_test.dir/lookup/lookup_test.cpp.o"
  "CMakeFiles/lookup_test.dir/lookup/lookup_test.cpp.o.d"
  "lookup_test"
  "lookup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
