# Empty dependencies file for edomain_test.
# This may be replaced when dependencies are built.
