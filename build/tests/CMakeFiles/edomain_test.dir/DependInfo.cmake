
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edomain/domain_core_test.cpp" "tests/CMakeFiles/edomain_test.dir/edomain/domain_core_test.cpp.o" "gcc" "tests/CMakeFiles/edomain_test.dir/edomain/domain_core_test.cpp.o.d"
  "/root/repo/tests/edomain/pricing_test.cpp" "tests/CMakeFiles/edomain_test.dir/edomain/pricing_test.cpp.o" "gcc" "tests/CMakeFiles/edomain_test.dir/edomain/pricing_test.cpp.o.d"
  "/root/repo/tests/edomain/routing_test.cpp" "tests/CMakeFiles/edomain_test.dir/edomain/routing_test.cpp.o" "gcc" "tests/CMakeFiles/edomain_test.dir/edomain/routing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/edomain/CMakeFiles/interedge_edomain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lookup/CMakeFiles/interedge_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
