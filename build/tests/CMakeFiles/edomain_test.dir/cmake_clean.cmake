file(REMOVE_RECURSE
  "CMakeFiles/edomain_test.dir/edomain/domain_core_test.cpp.o"
  "CMakeFiles/edomain_test.dir/edomain/domain_core_test.cpp.o.d"
  "CMakeFiles/edomain_test.dir/edomain/pricing_test.cpp.o"
  "CMakeFiles/edomain_test.dir/edomain/pricing_test.cpp.o.d"
  "CMakeFiles/edomain_test.dir/edomain/routing_test.cpp.o"
  "CMakeFiles/edomain_test.dir/edomain/routing_test.cpp.o.d"
  "edomain_test"
  "edomain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edomain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
