file(REMOVE_RECURSE
  "CMakeFiles/tunnel_test.dir/tunnel/tunnel_test.cpp.o"
  "CMakeFiles/tunnel_test.dir/tunnel/tunnel_test.cpp.o.d"
  "tunnel_test"
  "tunnel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
