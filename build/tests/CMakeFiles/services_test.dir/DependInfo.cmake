
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/services/cluster_test.cpp" "tests/CMakeFiles/services_test.dir/services/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/cluster_test.cpp.o.d"
  "/root/repo/tests/services/delivery_test.cpp" "tests/CMakeFiles/services_test.dir/services/delivery_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/delivery_test.cpp.o.d"
  "/root/repo/tests/services/envelope_test.cpp" "tests/CMakeFiles/services_test.dir/services/envelope_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/envelope_test.cpp.o.d"
  "/root/repo/tests/services/mobility_test.cpp" "tests/CMakeFiles/services_test.dir/services/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/mobility_test.cpp.o.d"
  "/root/repo/tests/services/multicast_anycast_test.cpp" "tests/CMakeFiles/services_test.dir/services/multicast_anycast_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/multicast_anycast_test.cpp.o.d"
  "/root/repo/tests/services/ngfw_attest_test.cpp" "tests/CMakeFiles/services_test.dir/services/ngfw_attest_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/ngfw_attest_test.cpp.o.d"
  "/root/repo/tests/services/pass_through_test.cpp" "tests/CMakeFiles/services_test.dir/services/pass_through_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/pass_through_test.cpp.o.d"
  "/root/repo/tests/services/privacy_test.cpp" "tests/CMakeFiles/services_test.dir/services/privacy_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/privacy_test.cpp.o.d"
  "/root/repo/tests/services/pubsub_test.cpp" "tests/CMakeFiles/services_test.dir/services/pubsub_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/pubsub_test.cpp.o.d"
  "/root/repo/tests/services/qos_test.cpp" "tests/CMakeFiles/services_test.dir/services/qos_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/qos_test.cpp.o.d"
  "/root/repo/tests/services/resilience_test.cpp" "tests/CMakeFiles/services_test.dir/services/resilience_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/resilience_test.cpp.o.d"
  "/root/repo/tests/services/security_test.cpp" "tests/CMakeFiles/services_test.dir/services/security_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/security_test.cpp.o.d"
  "/root/repo/tests/services/specialty_test.cpp" "tests/CMakeFiles/services_test.dir/services/specialty_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/specialty_test.cpp.o.d"
  "/root/repo/tests/services/streaming_test.cpp" "tests/CMakeFiles/services_test.dir/services/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/streaming_test.cpp.o.d"
  "/root/repo/tests/services/wfq_test.cpp" "tests/CMakeFiles/services_test.dir/services/wfq_test.cpp.o" "gcc" "tests/CMakeFiles/services_test.dir/services/wfq_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/deploy/CMakeFiles/interedge_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/interedge_services.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/interedge_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/edomain/CMakeFiles/interedge_edomain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/interedge_host.dir/DependInfo.cmake"
  "/root/repo/build/src/lookup/CMakeFiles/interedge_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/interedge_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
