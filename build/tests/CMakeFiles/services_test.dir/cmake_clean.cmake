file(REMOVE_RECURSE
  "CMakeFiles/services_test.dir/services/cluster_test.cpp.o"
  "CMakeFiles/services_test.dir/services/cluster_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/delivery_test.cpp.o"
  "CMakeFiles/services_test.dir/services/delivery_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/envelope_test.cpp.o"
  "CMakeFiles/services_test.dir/services/envelope_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/mobility_test.cpp.o"
  "CMakeFiles/services_test.dir/services/mobility_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/multicast_anycast_test.cpp.o"
  "CMakeFiles/services_test.dir/services/multicast_anycast_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/ngfw_attest_test.cpp.o"
  "CMakeFiles/services_test.dir/services/ngfw_attest_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/pass_through_test.cpp.o"
  "CMakeFiles/services_test.dir/services/pass_through_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/privacy_test.cpp.o"
  "CMakeFiles/services_test.dir/services/privacy_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/pubsub_test.cpp.o"
  "CMakeFiles/services_test.dir/services/pubsub_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/qos_test.cpp.o"
  "CMakeFiles/services_test.dir/services/qos_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/resilience_test.cpp.o"
  "CMakeFiles/services_test.dir/services/resilience_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/security_test.cpp.o"
  "CMakeFiles/services_test.dir/services/security_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/specialty_test.cpp.o"
  "CMakeFiles/services_test.dir/services/specialty_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/streaming_test.cpp.o"
  "CMakeFiles/services_test.dir/services/streaming_test.cpp.o.d"
  "CMakeFiles/services_test.dir/services/wfq_test.cpp.o"
  "CMakeFiles/services_test.dir/services/wfq_test.cpp.o.d"
  "services_test"
  "services_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
