file(REMOVE_RECURSE
  "CMakeFiles/interedge_tunnel.dir/tunnel.cpp.o"
  "CMakeFiles/interedge_tunnel.dir/tunnel.cpp.o.d"
  "libinteredge_tunnel.a"
  "libinteredge_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
