file(REMOVE_RECURSE
  "libinteredge_tunnel.a"
)
