# Empty dependencies file for interedge_tunnel.
# This may be replaced when dependencies are built.
