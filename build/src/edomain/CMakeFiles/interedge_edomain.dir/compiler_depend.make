# Empty compiler generated dependencies file for interedge_edomain.
# This may be replaced when dependencies are built.
