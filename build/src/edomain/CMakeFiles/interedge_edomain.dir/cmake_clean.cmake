file(REMOVE_RECURSE
  "CMakeFiles/interedge_edomain.dir/domain_core.cpp.o"
  "CMakeFiles/interedge_edomain.dir/domain_core.cpp.o.d"
  "CMakeFiles/interedge_edomain.dir/peering.cpp.o"
  "CMakeFiles/interedge_edomain.dir/peering.cpp.o.d"
  "CMakeFiles/interedge_edomain.dir/pricing.cpp.o"
  "CMakeFiles/interedge_edomain.dir/pricing.cpp.o.d"
  "CMakeFiles/interedge_edomain.dir/routing.cpp.o"
  "CMakeFiles/interedge_edomain.dir/routing.cpp.o.d"
  "libinteredge_edomain.a"
  "libinteredge_edomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_edomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
