file(REMOVE_RECURSE
  "libinteredge_edomain.a"
)
