
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edomain/domain_core.cpp" "src/edomain/CMakeFiles/interedge_edomain.dir/domain_core.cpp.o" "gcc" "src/edomain/CMakeFiles/interedge_edomain.dir/domain_core.cpp.o.d"
  "/root/repo/src/edomain/peering.cpp" "src/edomain/CMakeFiles/interedge_edomain.dir/peering.cpp.o" "gcc" "src/edomain/CMakeFiles/interedge_edomain.dir/peering.cpp.o.d"
  "/root/repo/src/edomain/pricing.cpp" "src/edomain/CMakeFiles/interedge_edomain.dir/pricing.cpp.o" "gcc" "src/edomain/CMakeFiles/interedge_edomain.dir/pricing.cpp.o.d"
  "/root/repo/src/edomain/routing.cpp" "src/edomain/CMakeFiles/interedge_edomain.dir/routing.cpp.o" "gcc" "src/edomain/CMakeFiles/interedge_edomain.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lookup/CMakeFiles/interedge_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
