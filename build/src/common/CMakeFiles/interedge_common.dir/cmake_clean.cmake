file(REMOVE_RECURSE
  "CMakeFiles/interedge_common.dir/clock.cpp.o"
  "CMakeFiles/interedge_common.dir/clock.cpp.o.d"
  "CMakeFiles/interedge_common.dir/flags.cpp.o"
  "CMakeFiles/interedge_common.dir/flags.cpp.o.d"
  "CMakeFiles/interedge_common.dir/logging.cpp.o"
  "CMakeFiles/interedge_common.dir/logging.cpp.o.d"
  "CMakeFiles/interedge_common.dir/metrics.cpp.o"
  "CMakeFiles/interedge_common.dir/metrics.cpp.o.d"
  "CMakeFiles/interedge_common.dir/rng.cpp.o"
  "CMakeFiles/interedge_common.dir/rng.cpp.o.d"
  "CMakeFiles/interedge_common.dir/serial.cpp.o"
  "CMakeFiles/interedge_common.dir/serial.cpp.o.d"
  "libinteredge_common.a"
  "libinteredge_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
