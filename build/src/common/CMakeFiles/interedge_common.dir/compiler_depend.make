# Empty compiler generated dependencies file for interedge_common.
# This may be replaced when dependencies are built.
