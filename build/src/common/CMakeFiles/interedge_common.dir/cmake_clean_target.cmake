file(REMOVE_RECURSE
  "libinteredge_common.a"
)
