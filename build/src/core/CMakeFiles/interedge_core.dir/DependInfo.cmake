
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel.cpp" "src/core/CMakeFiles/interedge_core.dir/channel.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/channel.cpp.o.d"
  "/root/repo/src/core/decision_cache.cpp" "src/core/CMakeFiles/interedge_core.dir/decision_cache.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/decision_cache.cpp.o.d"
  "/root/repo/src/core/exec_env.cpp" "src/core/CMakeFiles/interedge_core.dir/exec_env.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/exec_env.cpp.o.d"
  "/root/repo/src/core/offpath.cpp" "src/core/CMakeFiles/interedge_core.dir/offpath.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/offpath.cpp.o.d"
  "/root/repo/src/core/pipe_terminus.cpp" "src/core/CMakeFiles/interedge_core.dir/pipe_terminus.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/pipe_terminus.cpp.o.d"
  "/root/repo/src/core/service_node.cpp" "src/core/CMakeFiles/interedge_core.dir/service_node.cpp.o" "gcc" "src/core/CMakeFiles/interedge_core.dir/service_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
