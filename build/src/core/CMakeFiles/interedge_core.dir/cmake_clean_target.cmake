file(REMOVE_RECURSE
  "libinteredge_core.a"
)
