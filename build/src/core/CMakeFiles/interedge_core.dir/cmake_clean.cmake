file(REMOVE_RECURSE
  "CMakeFiles/interedge_core.dir/channel.cpp.o"
  "CMakeFiles/interedge_core.dir/channel.cpp.o.d"
  "CMakeFiles/interedge_core.dir/decision_cache.cpp.o"
  "CMakeFiles/interedge_core.dir/decision_cache.cpp.o.d"
  "CMakeFiles/interedge_core.dir/exec_env.cpp.o"
  "CMakeFiles/interedge_core.dir/exec_env.cpp.o.d"
  "CMakeFiles/interedge_core.dir/offpath.cpp.o"
  "CMakeFiles/interedge_core.dir/offpath.cpp.o.d"
  "CMakeFiles/interedge_core.dir/pipe_terminus.cpp.o"
  "CMakeFiles/interedge_core.dir/pipe_terminus.cpp.o.d"
  "CMakeFiles/interedge_core.dir/service_node.cpp.o"
  "CMakeFiles/interedge_core.dir/service_node.cpp.o.d"
  "libinteredge_core.a"
  "libinteredge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
