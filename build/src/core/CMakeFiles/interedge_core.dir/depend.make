# Empty dependencies file for interedge_core.
# This may be replaced when dependencies are built.
