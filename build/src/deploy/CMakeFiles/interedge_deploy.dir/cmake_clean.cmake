file(REMOVE_RECURSE
  "CMakeFiles/interedge_deploy.dir/deployment.cpp.o"
  "CMakeFiles/interedge_deploy.dir/deployment.cpp.o.d"
  "CMakeFiles/interedge_deploy.dir/standard_services.cpp.o"
  "CMakeFiles/interedge_deploy.dir/standard_services.cpp.o.d"
  "libinteredge_deploy.a"
  "libinteredge_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
