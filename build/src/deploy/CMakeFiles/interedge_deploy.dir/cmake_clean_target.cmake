file(REMOVE_RECURSE
  "libinteredge_deploy.a"
)
