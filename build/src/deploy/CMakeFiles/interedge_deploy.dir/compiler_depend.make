# Empty compiler generated dependencies file for interedge_deploy.
# This may be replaced when dependencies are built.
