file(REMOVE_RECURSE
  "CMakeFiles/interedge_ilp.dir/header.cpp.o"
  "CMakeFiles/interedge_ilp.dir/header.cpp.o.d"
  "CMakeFiles/interedge_ilp.dir/pipe.cpp.o"
  "CMakeFiles/interedge_ilp.dir/pipe.cpp.o.d"
  "CMakeFiles/interedge_ilp.dir/pipe_manager.cpp.o"
  "CMakeFiles/interedge_ilp.dir/pipe_manager.cpp.o.d"
  "libinteredge_ilp.a"
  "libinteredge_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
