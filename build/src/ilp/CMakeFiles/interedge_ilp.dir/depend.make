# Empty dependencies file for interedge_ilp.
# This may be replaced when dependencies are built.
