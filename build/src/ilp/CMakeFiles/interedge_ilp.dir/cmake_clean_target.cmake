file(REMOVE_RECURSE
  "libinteredge_ilp.a"
)
