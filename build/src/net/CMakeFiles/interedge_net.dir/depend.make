# Empty dependencies file for interedge_net.
# This may be replaced when dependencies are built.
