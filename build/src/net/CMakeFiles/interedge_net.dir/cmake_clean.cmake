file(REMOVE_RECURSE
  "CMakeFiles/interedge_net.dir/udp_transport.cpp.o"
  "CMakeFiles/interedge_net.dir/udp_transport.cpp.o.d"
  "libinteredge_net.a"
  "libinteredge_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
