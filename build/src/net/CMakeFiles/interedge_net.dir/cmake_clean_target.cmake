file(REMOVE_RECURSE
  "libinteredge_net.a"
)
