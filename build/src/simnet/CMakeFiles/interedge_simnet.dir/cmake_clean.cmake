file(REMOVE_RECURSE
  "CMakeFiles/interedge_simnet.dir/simulation.cpp.o"
  "CMakeFiles/interedge_simnet.dir/simulation.cpp.o.d"
  "libinteredge_simnet.a"
  "libinteredge_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
