# Empty compiler generated dependencies file for interedge_simnet.
# This may be replaced when dependencies are built.
