file(REMOVE_RECURSE
  "libinteredge_simnet.a"
)
