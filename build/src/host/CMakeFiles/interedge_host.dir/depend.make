# Empty dependencies file for interedge_host.
# This may be replaced when dependencies are built.
