file(REMOVE_RECURSE
  "libinteredge_host.a"
)
