file(REMOVE_RECURSE
  "CMakeFiles/interedge_host.dir/host_stack.cpp.o"
  "CMakeFiles/interedge_host.dir/host_stack.cpp.o.d"
  "libinteredge_host.a"
  "libinteredge_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
