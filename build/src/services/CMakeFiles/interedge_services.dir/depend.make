# Empty dependencies file for interedge_services.
# This may be replaced when dependencies are built.
