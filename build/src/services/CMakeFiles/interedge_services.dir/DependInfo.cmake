
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/anycast.cpp" "src/services/CMakeFiles/interedge_services.dir/anycast.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/anycast.cpp.o.d"
  "/root/repo/src/services/bulk_delivery.cpp" "src/services/CMakeFiles/interedge_services.dir/bulk_delivery.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/bulk_delivery.cpp.o.d"
  "/root/repo/src/services/clients/bulk_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/bulk_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/bulk_client.cpp.o.d"
  "/root/repo/src/services/clients/cluster_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/cluster_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/cluster_client.cpp.o.d"
  "/root/repo/src/services/clients/content.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/content.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/content.cpp.o.d"
  "/root/repo/src/services/clients/mixnet_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/mixnet_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/mixnet_client.cpp.o.d"
  "/root/repo/src/services/clients/mobility_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/mobility_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/mobility_client.cpp.o.d"
  "/root/repo/src/services/clients/multicast_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/multicast_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/multicast_client.cpp.o.d"
  "/root/repo/src/services/clients/odns_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/odns_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/odns_client.cpp.o.d"
  "/root/repo/src/services/clients/pubsub_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/pubsub_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/pubsub_client.cpp.o.d"
  "/root/repo/src/services/clients/queue_client.cpp" "src/services/CMakeFiles/interedge_services.dir/clients/queue_client.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/clients/queue_client.cpp.o.d"
  "/root/repo/src/services/cluster_interconnect.cpp" "src/services/CMakeFiles/interedge_services.dir/cluster_interconnect.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/cluster_interconnect.cpp.o.d"
  "/root/repo/src/services/ddos.cpp" "src/services/CMakeFiles/interedge_services.dir/ddos.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/ddos.cpp.o.d"
  "/root/repo/src/services/delivery.cpp" "src/services/CMakeFiles/interedge_services.dir/delivery.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/delivery.cpp.o.d"
  "/root/repo/src/services/envelope.cpp" "src/services/CMakeFiles/interedge_services.dir/envelope.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/envelope.cpp.o.d"
  "/root/repo/src/services/fanout.cpp" "src/services/CMakeFiles/interedge_services.dir/fanout.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/fanout.cpp.o.d"
  "/root/repo/src/services/message_queue.cpp" "src/services/CMakeFiles/interedge_services.dir/message_queue.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/message_queue.cpp.o.d"
  "/root/repo/src/services/mixnet.cpp" "src/services/CMakeFiles/interedge_services.dir/mixnet.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/mixnet.cpp.o.d"
  "/root/repo/src/services/mobility.cpp" "src/services/CMakeFiles/interedge_services.dir/mobility.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/mobility.cpp.o.d"
  "/root/repo/src/services/multicast.cpp" "src/services/CMakeFiles/interedge_services.dir/multicast.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/multicast.cpp.o.d"
  "/root/repo/src/services/odns.cpp" "src/services/CMakeFiles/interedge_services.dir/odns.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/odns.cpp.o.d"
  "/root/repo/src/services/ordered_delivery.cpp" "src/services/CMakeFiles/interedge_services.dir/ordered_delivery.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/ordered_delivery.cpp.o.d"
  "/root/repo/src/services/pubsub.cpp" "src/services/CMakeFiles/interedge_services.dir/pubsub.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/pubsub.cpp.o.d"
  "/root/repo/src/services/qos.cpp" "src/services/CMakeFiles/interedge_services.dir/qos.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/qos.cpp.o.d"
  "/root/repo/src/services/streaming.cpp" "src/services/CMakeFiles/interedge_services.dir/streaming.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/streaming.cpp.o.d"
  "/root/repo/src/services/vpn.cpp" "src/services/CMakeFiles/interedge_services.dir/vpn.cpp.o" "gcc" "src/services/CMakeFiles/interedge_services.dir/vpn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/edomain/CMakeFiles/interedge_edomain.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/interedge_host.dir/DependInfo.cmake"
  "/root/repo/build/src/lookup/CMakeFiles/interedge_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
