file(REMOVE_RECURSE
  "libinteredge_services.a"
)
