file(REMOVE_RECURSE
  "CMakeFiles/interedge_lookup.dir/lookup_service.cpp.o"
  "CMakeFiles/interedge_lookup.dir/lookup_service.cpp.o.d"
  "libinteredge_lookup.a"
  "libinteredge_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
