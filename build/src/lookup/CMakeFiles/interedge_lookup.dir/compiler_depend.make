# Empty compiler generated dependencies file for interedge_lookup.
# This may be replaced when dependencies are built.
