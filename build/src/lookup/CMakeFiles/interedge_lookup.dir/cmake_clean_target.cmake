file(REMOVE_RECURSE
  "libinteredge_lookup.a"
)
