file(REMOVE_RECURSE
  "CMakeFiles/interedge_enclave.dir/attestation.cpp.o"
  "CMakeFiles/interedge_enclave.dir/attestation.cpp.o.d"
  "CMakeFiles/interedge_enclave.dir/enclave.cpp.o"
  "CMakeFiles/interedge_enclave.dir/enclave.cpp.o.d"
  "libinteredge_enclave.a"
  "libinteredge_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
