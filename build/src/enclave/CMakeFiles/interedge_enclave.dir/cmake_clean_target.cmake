file(REMOVE_RECURSE
  "libinteredge_enclave.a"
)
