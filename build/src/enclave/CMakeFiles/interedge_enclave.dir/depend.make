# Empty dependencies file for interedge_enclave.
# This may be replaced when dependencies are built.
