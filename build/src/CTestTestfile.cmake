# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("simnet")
subdirs("net")
subdirs("ilp")
subdirs("enclave")
subdirs("core")
subdirs("lookup")
subdirs("edomain")
subdirs("host")
subdirs("deploy")
subdirs("services")
subdirs("tunnel")
