# Empty dependencies file for interedge_crypto.
# This may be replaced when dependencies are built.
