file(REMOVE_RECURSE
  "libinteredge_crypto.a"
)
