file(REMOVE_RECURSE
  "CMakeFiles/interedge_crypto.dir/aead.cpp.o"
  "CMakeFiles/interedge_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/interedge_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/kdf.cpp.o"
  "CMakeFiles/interedge_crypto.dir/kdf.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/interedge_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/psp.cpp.o"
  "CMakeFiles/interedge_crypto.dir/psp.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/random.cpp.o"
  "CMakeFiles/interedge_crypto.dir/random.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/sha256.cpp.o"
  "CMakeFiles/interedge_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/siphash.cpp.o"
  "CMakeFiles/interedge_crypto.dir/siphash.cpp.o.d"
  "CMakeFiles/interedge_crypto.dir/x25519.cpp.o"
  "CMakeFiles/interedge_crypto.dir/x25519.cpp.o.d"
  "libinteredge_crypto.a"
  "libinteredge_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interedge_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
