
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/aead.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/aead.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/kdf.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/kdf.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/kdf.cpp.o.d"
  "/root/repo/src/crypto/poly1305.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/poly1305.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/poly1305.cpp.o.d"
  "/root/repo/src/crypto/psp.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/psp.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/psp.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/random.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/random.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/siphash.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/siphash.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/interedge_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/interedge_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
