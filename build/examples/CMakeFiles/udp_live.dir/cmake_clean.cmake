file(REMOVE_RECURSE
  "CMakeFiles/udp_live.dir/udp_live.cpp.o"
  "CMakeFiles/udp_live.dir/udp_live.cpp.o.d"
  "udp_live"
  "udp_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
