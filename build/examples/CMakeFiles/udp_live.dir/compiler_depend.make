# Empty compiler generated dependencies file for udp_live.
# This may be replaced when dependencies are built.
