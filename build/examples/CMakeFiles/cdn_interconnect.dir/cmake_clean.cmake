file(REMOVE_RECURSE
  "CMakeFiles/cdn_interconnect.dir/cdn_interconnect.cpp.o"
  "CMakeFiles/cdn_interconnect.dir/cdn_interconnect.cpp.o.d"
  "cdn_interconnect"
  "cdn_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
