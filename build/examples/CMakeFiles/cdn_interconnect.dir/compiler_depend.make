# Empty compiler generated dependencies file for cdn_interconnect.
# This may be replaced when dependencies are built.
