file(REMOVE_RECURSE
  "CMakeFiles/private_relay.dir/private_relay.cpp.o"
  "CMakeFiles/private_relay.dir/private_relay.cpp.o.d"
  "private_relay"
  "private_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
