# Empty compiler generated dependencies file for private_relay.
# This may be replaced when dependencies are built.
