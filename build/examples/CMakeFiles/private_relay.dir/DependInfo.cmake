
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/private_relay.cpp" "examples/CMakeFiles/private_relay.dir/private_relay.cpp.o" "gcc" "examples/CMakeFiles/private_relay.dir/private_relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/deploy/CMakeFiles/interedge_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/interedge_services.dir/DependInfo.cmake"
  "/root/repo/build/src/edomain/CMakeFiles/interedge_edomain.dir/DependInfo.cmake"
  "/root/repo/build/src/enclave/CMakeFiles/interedge_enclave.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/interedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/interedge_host.dir/DependInfo.cmake"
  "/root/repo/build/src/lookup/CMakeFiles/interedge_lookup.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/interedge_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/interedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/interedge_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/interedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
