file(REMOVE_RECURSE
  "CMakeFiles/qos_household.dir/qos_household.cpp.o"
  "CMakeFiles/qos_household.dir/qos_household.cpp.o.d"
  "qos_household"
  "qos_household.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_household.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
