# Empty compiler generated dependencies file for qos_household.
# This may be replaced when dependencies are built.
