# Empty dependencies file for enterprise_boundary.
# This may be replaced when dependencies are built.
