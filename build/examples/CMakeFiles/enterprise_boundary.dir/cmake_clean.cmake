file(REMOVE_RECURSE
  "CMakeFiles/enterprise_boundary.dir/enterprise_boundary.cpp.o"
  "CMakeFiles/enterprise_boundary.dir/enterprise_boundary.cpp.o.d"
  "enterprise_boundary"
  "enterprise_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
