file(REMOVE_RECURSE
  "CMakeFiles/pubsub_chat.dir/pubsub_chat.cpp.o"
  "CMakeFiles/pubsub_chat.dir/pubsub_chat.cpp.o.d"
  "pubsub_chat"
  "pubsub_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
