# Empty compiler generated dependencies file for pubsub_chat.
# This may be replaced when dependencies are built.
