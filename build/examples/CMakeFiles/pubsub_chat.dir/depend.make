# Empty dependencies file for pubsub_chat.
# This may be replaced when dependencies are built.
