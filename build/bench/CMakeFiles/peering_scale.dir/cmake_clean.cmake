file(REMOVE_RECURSE
  "CMakeFiles/peering_scale.dir/peering_scale.cpp.o"
  "CMakeFiles/peering_scale.dir/peering_scale.cpp.o.d"
  "peering_scale"
  "peering_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
