# Empty compiler generated dependencies file for peering_scale.
# This may be replaced when dependencies are built.
