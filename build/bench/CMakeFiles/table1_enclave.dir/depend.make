# Empty dependencies file for table1_enclave.
# This may be replaced when dependencies are built.
