file(REMOVE_RECURSE
  "CMakeFiles/table1_enclave.dir/table1_enclave.cpp.o"
  "CMakeFiles/table1_enclave.dir/table1_enclave.cpp.o.d"
  "table1_enclave"
  "table1_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
