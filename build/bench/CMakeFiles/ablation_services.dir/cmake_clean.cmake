file(REMOVE_RECURSE
  "CMakeFiles/ablation_services.dir/ablation_services.cpp.o"
  "CMakeFiles/ablation_services.dir/ablation_services.cpp.o.d"
  "ablation_services"
  "ablation_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
