# Empty compiler generated dependencies file for ablation_services.
# This may be replaced when dependencies are built.
