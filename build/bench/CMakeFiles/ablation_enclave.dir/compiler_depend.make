# Empty compiler generated dependencies file for ablation_enclave.
# This may be replaced when dependencies are built.
