file(REMOVE_RECURSE
  "CMakeFiles/ablation_enclave.dir/ablation_enclave.cpp.o"
  "CMakeFiles/ablation_enclave.dir/ablation_enclave.cpp.o.d"
  "ablation_enclave"
  "ablation_enclave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enclave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
