file(REMOVE_RECURSE
  "CMakeFiles/ablation_ilp_crypto.dir/ablation_ilp_crypto.cpp.o"
  "CMakeFiles/ablation_ilp_crypto.dir/ablation_ilp_crypto.cpp.o.d"
  "ablation_ilp_crypto"
  "ablation_ilp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ilp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
