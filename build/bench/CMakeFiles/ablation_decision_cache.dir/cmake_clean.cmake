file(REMOVE_RECURSE
  "CMakeFiles/ablation_decision_cache.dir/ablation_decision_cache.cpp.o"
  "CMakeFiles/ablation_decision_cache.dir/ablation_decision_cache.cpp.o.d"
  "ablation_decision_cache"
  "ablation_decision_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decision_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
