# Empty dependencies file for ablation_decision_cache.
# This may be replaced when dependencies are built.
