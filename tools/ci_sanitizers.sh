#!/bin/sh
# Sanitizer CI job: builds and runs the test suite under ASan+UBSan and
# TSan (presets in CMakePresets.json). TSan is what keeps the lock-free
# telemetry paths honest — sharded_counter stripes, concurrent histogram
# records and the trace ring are all hammered by the common_test suite.
#
#   tools/ci_sanitizers.sh [asan|tsan]    # default: both
set -e
cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  echo "== $preset: configure =="
  cmake --preset "$preset"
  echo "== $preset: build =="
  cmake --build --preset "$preset" -j
  echo "== $preset: test =="
  ctest --preset "$preset" -j
}

case "${1:-all}" in
  asan) run_preset asan ;;
  tsan) run_preset tsan ;;
  all)
    run_preset asan
    run_preset tsan
    ;;
  *) echo "usage: $0 [asan|tsan]" >&2; exit 2 ;;
esac
