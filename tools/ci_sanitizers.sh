#!/bin/sh
# Sanitizer CI job: builds and runs the test suite under ASan+UBSan and
# TSan (presets in CMakePresets.json). TSan is what keeps the lock-free
# paths honest — sharded_counter stripes, concurrent histogram records,
# the trace ring, and the multi-core SN datapath (worker shards, SPSC
# rings, the invalidation bus) hammered by parallel_test.
#
#   tools/ci_sanitizers.sh [asan|tsan]    # default: both
set -e
cd "$(dirname "$0")/.."

run_preset() {
  preset="$1"
  echo "== $preset: configure =="
  cmake --preset "$preset"
  echo "== $preset: build =="
  cmake --build --preset "$preset" -j
  echo "== $preset: test =="
  ctest --preset "$preset" -j
  # Second, focused pass over the multi-core datapath tests: these spawn
  # real worker threads (steering, shard caches, invalidation bus), which
  # is exactly what the sanitizers — tsan above all — exist to check.
  echo "== $preset: parallel datapath (focused) =="
  ctest --preset "$preset" -R parallel_test --output-on-failure
  # Fault matrix: the failover/liveness/shedding scenarios re-run focused.
  # Crash-restart, partition-heal, and slow-path saturation exercise the
  # teardown/retry edges (pipe erasure while probes are in flight, shed
  # verdicts racing worker pumps) where lifetime and ordering bugs hide.
  echo "== $preset: fault matrix (focused) =="
  ctest --preset "$preset" -R 'failover_test|simnet_test' --output-on-failure
  # Path tracing (ISSUE 5): the span recorders are SPSC rings drained by
  # the control thread while worker shards emit, and the collector is hit
  # from the observability push tick — tsan's bread and butter. The
  # trace_test unit pass plus the end-to-end path_trace scenarios.
  echo "== $preset: path tracing (focused) =="
  ctest --preset "$preset" -R 'trace_collector_test|path_trace_test' --output-on-failure
  # Zero-copy datapath (ISSUE 6): slab refcounts crossing threads and SPSC
  # rings (buf_pool_test's handoff/concurrent cases are the tsan targets),
  # plus the real-socket transport — both rx backends, in-place decrypt
  # windows over pool slabs, view lifetimes through the event loop.
  # Full-duplex egress (ISSUE 8) rides the same net_test pass: the UdpTx
  # cases pin completion-driven slab release (tx pins racing rx recycling)
  # and ShardedEgressConcurrentDrain pushes worker-shard forwards through
  # the uring tx ring while the control thread flushes — the tsan target
  # for the egress half.
  echo "== $preset: slab pool + transport (focused) =="
  ctest --preset "$preset" -R 'buf_pool_test|net_test' --output-on-failure
  # SLO health plane (ISSUE 7): the flight recorder's multi-producer
  # seqlock ring with a racing snapshot reader and a mid-run freeze is the
  # tsan target (health_test); the end-to-end binary drives the watchdog
  # against real stalled worker threads and the burn-rate page path.
  echo "== $preset: health plane + flight recorder (focused) =="
  ctest --preset "$preset" -R 'health_test|slo_health_test' --output-on-failure
  # Profiling plane (ISSUE 10): an async-signal handler writing per-thread
  # SPSC rings while the control thread drains and tears threads down.
  # ConcurrentSamplingDrainAndTeardown fires live SIGPROF at 1993Hz into
  # spinning workers under concurrent drain — tsan proves the handler
  # touches nothing but the ring's atomics and its slot memory, asan that
  # teardown never races a late signal into freed memory.
  echo "== $preset: sampling profiler (focused) =="
  ctest --preset "$preset" -R prof_test --output-on-failure
  # Scenario engine (ISSUE 9): the adversarial + churn suites drive every
  # concurrent subsystem at once — sharded datapaths under flood-driven
  # shed, the invalidation bus purging verdicts on protect/allow and
  # peer-down, liveness teardown racing traffic during mobility_churn's
  # crash, and the observability push path mid-page. asan owns the
  # lifetime edges (pipes torn down with packets in flight), tsan the
  # cross-thread verdict and metric flows.
  echo "== $preset: scenario suites (focused) =="
  ctest --preset "$preset" -R scenario_test --output-on-failure
}

case "${1:-all}" in
  asan) run_preset asan ;;
  tsan) run_preset tsan ;;
  all)
    run_preset asan
    run_preset tsan
    ;;
  *) echo "usage: $0 [asan|tsan]" >&2; exit 2 ;;
esac
