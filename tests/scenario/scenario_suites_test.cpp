// Scenario engine end-to-end (ISSUE 9): every named suite runs seeded over
// the simulated deployment, emits a machine-readable SLO verdict report,
// passes its own verdicts, and replays digest-identically from the same
// seed. The ddos_mix assertions double as the graceful-degradation
// acceptance check: legitimate p99 must demonstrably breach during the
// attack AND recover inside the SLO after mitigation while the flood is
// shed.
#include "scenario/suites.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace interedge::scenario {
namespace {

constexpr std::uint64_t kSeed = 42;

const slo_check& find_check(const scenario_report& rep, std::string_view name) {
  for (const slo_check& c : rep.checks) {
    if (c.name == name) return c;
  }
  throw std::runtime_error("missing check: " + std::string(name));
}

std::string verdict_lines(const scenario_report& rep) {
  std::string out;
  for (const slo_check& c : rep.checks) {
    out += c.name + ": " + std::to_string(c.observed) + (c.upper_bound ? " <= " : " >= ") +
           std::to_string(c.bound) + (c.pass ? " PASS" : " FAIL") + "\n";
  }
  return out;
}

TEST(ScenarioSuites, FlashCrowdAbsorbsSpikeAtTheEdge) {
  const scenario_report rep = run_flash_crowd(kSeed);
  EXPECT_TRUE(rep.passed()) << verdict_lines(rep);
  EXPECT_EQ(rep.suite, "flash_crowd");
  // The spike is absorbed by the caching bundle, not the origin: most
  // requests hit the edge cache and the origin sees a small fraction.
  EXPECT_GE(find_check(rep, "edge_cache_hit_ratio").observed, 0.5);
  EXPECT_LE(find_check(rep, "origin_load_fraction").observed, 0.5);
  EXPECT_EQ(find_check(rep, "slo_pages").observed, 0.0);
  EXPECT_GT(rep.stats.at("issued"), 0.0);
}

TEST(ScenarioSuites, PubsubStormDeliversUnderAmplification) {
  const scenario_report rep = run_pubsub_storm(kSeed);
  EXPECT_TRUE(rep.passed()) << verdict_lines(rep);
  EXPECT_GE(find_check(rep, "delivery_ratio").observed, 0.98);
  // Six subscribers across three edomains: each publish amplifies well
  // beyond one wire packet.
  EXPECT_GT(rep.stats.at("amplification"), 6.0);
}

TEST(ScenarioSuites, DdosMixDegradesThenRecovers) {
  const scenario_report rep = run_ddos_mix(kSeed);
  EXPECT_TRUE(rep.passed()) << verdict_lines(rep);
  // Phase A: the flood demonstrably breaches the latency SLO, the
  // burn-rate monitor pages, and the page freezes the flight recorder.
  EXPECT_GT(find_check(rep, "attack_degrades_legit_p99").observed, 10.0);
  EXPECT_GE(find_check(rep, "slo_pages").observed, 1.0);
  EXPECT_GE(find_check(rep, "blackbox_frozen").observed, 1.0);
  // Phase B: mitigation sheds the attack at its entry edge while the
  // legitimate flows survive — bounded p99, no loss.
  EXPECT_LE(find_check(rep, "legit_recovery_p99_ms").observed, 10.0);
  EXPECT_GE(find_check(rep, "legit_delivery_ratio").observed, 0.99);
  EXPECT_GE(find_check(rep, "attack_shed_fraction").observed, 0.95);
  EXPECT_GE(find_check(rep, "spoof_rejections").observed, 1.0);
}

TEST(ScenarioSuites, MobilityChurnSurvivesFaultsMidMigration) {
  const scenario_report rep = run_mobility_churn(kSeed);
  EXPECT_TRUE(rep.passed()) << verdict_lines(rep);
  EXPECT_GE(find_check(rep, "delivered_ratio").observed, 0.90);
  EXPECT_LE(find_check(rep, "max_outage_ms").observed, 14.0);
  // The churn exercised the re-anchoring datapath: breadcrumbs chased
  // stale-routed traffic, a crumb aged out, and the old SN's crash purged
  // the gateway's cached forwards through the peer-down path.
  EXPECT_GE(find_check(rep, "breadcrumb_forwards").observed, 5.0);
  EXPECT_GE(find_check(rep, "breadcrumbs_expired").observed, 1.0);
  EXPECT_GE(find_check(rep, "peer_down_cache_purges").observed, 1.0);
}

TEST(ScenarioSuites, ReplayIsDigestIdentical) {
  for (const std::string_view name : suite_names()) {
    const scenario_report a = run_suite(name, 7);
    const scenario_report b = run_suite(name, 7);
    EXPECT_EQ(a.behavior_digest, b.behavior_digest) << name;
    // Byte-identical reports, not just matching digests: every observed
    // value, stat, and verdict replays.
    EXPECT_EQ(a.to_json(), b.to_json()) << name;
    // And the digest actually discriminates: a different seed is a
    // different behavioral trace.
    const scenario_report c = run_suite(name, 8);
    EXPECT_NE(a.behavior_digest, c.behavior_digest) << name;
  }
}

TEST(ScenarioSuites, ProfilerArmedRunIsBehaviorIdentical) {
  // The continuous profiling plane (ISSUE 10) is observation-only: a
  // flash_crowd run with every SN sampled at 997Hz must produce the exact
  // behavior_digest of a run with the profiler off. SA_RESTART on the
  // SIGPROF handler means no syscall in the suite ever sees EINTR, and the
  // handler itself only reads the stack — any divergence here is a
  // profiler bug leaking into simulated behavior.
  const scenario_report off = run_flash_crowd(kSeed);
  suite_options armed;
  armed.profiler_hz = 997;
  armed.profiler_force_timer = true;  // deterministic backend under any CI
  const scenario_report on = run_flash_crowd(kSeed, armed);
  EXPECT_EQ(off.behavior_digest, on.behavior_digest);
  EXPECT_EQ(off.to_json(), on.to_json());
}

TEST(ScenarioSuites, ReportJsonIsMachineReadable) {
  const scenario_report rep = run_flash_crowd(kSeed);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"suite\":\"flash_crowd\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"behavior_digest\":\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"checks\":["), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
}

TEST(ScenarioSuites, DispatchKnowsEveryNameAndRejectsUnknown) {
  EXPECT_EQ(suite_names().size(), 4u);
  EXPECT_THROW(run_suite("no_such_suite", kSeed), std::invalid_argument);
}

}  // namespace
}  // namespace interedge::scenario
