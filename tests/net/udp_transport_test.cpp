// Real-socket tests: the same InterEdge components that run on the
// simulator run over actual UDP datagrams on localhost.
#include "net/udp_transport.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/service_node.h"
#include "core/test_modules.h"
#include "host/host_stack.h"
#include "ilp/pipe_manager.h"
#include "services/clients/pubsub_client.h"
#include "services/pubsub.h"

namespace interedge::net {
namespace {

using namespace std::chrono_literals;

TEST(UdpEndpoint, BindsEphemeralPort) {
  udp_endpoint a;
  EXPECT_GT(a.port(), 0);
  udp_endpoint b;
  EXPECT_NE(a.port(), b.port());
}

TEST(UdpEndpoint, SendReceiveBetweenEndpoints) {
  udp_endpoint a, b;
  a.add_peer(2, "127.0.0.1", b.port());
  b.add_peer(1, "127.0.0.1", a.port());

  ASSERT_TRUE(a.send(2, to_bytes("over the wire")));

  event_loop loop;
  std::string got;
  loop.attach(b, [&](peer_id from, const_byte_span data) {
    EXPECT_EQ(from, 1u);
    got = to_string(data);
  });
  loop.run_until_quiet(20ms, 2000ms);
  EXPECT_EQ(got, "over the wire");
}

// Regression: a recvmmsg that drains the socket mid-batch (the EAGAIN
// happens inside the batch, reported only as a short count) must be
// visible as a counter, and an empty-socket attempt counted separately.
TEST(UdpEndpoint, RecvBatchCountsPartialDrains) {
  udp_endpoint a, b;
  a.add_peer(2, "127.0.0.1", b.port());
  b.add_peer(1, "127.0.0.1", a.port());

  std::vector<std::pair<peer_id, bytes>> got;
  EXPECT_EQ(b.recv_batch(udp_endpoint::kBatchMax, got), 0u);
  EXPECT_EQ(b.rx_empty(), 1u);
  EXPECT_EQ(b.rx_partial_batches(), 0u);

  constexpr std::size_t kSent = 5;
  for (std::size_t i = 0; i < kSent; ++i) {
    ASSERT_TRUE(a.send(2, to_bytes("p" + std::to_string(i))));
  }
  for (int attempt = 0; attempt < 2000 && got.size() < kSent; ++attempt) {
    if (b.recv_batch(udp_endpoint::kBatchMax, got) == 0) {
      std::this_thread::sleep_for(1ms);
    }
  }
  ASSERT_EQ(got.size(), kSent);
  // 5 < kBatchMax: at least one call came up short against a dry socket.
  EXPECT_GE(b.rx_partial_batches(), 1u);
  EXPECT_EQ(b.rx_errors(), 0u);
  EXPECT_EQ(b.received(), kSent);
}

// The transient-send retry loop (EAGAIN/EWOULDBLOCK absorbed, bounded at
// kSendRetries) and its accounting: send_again() moves in lockstep with
// the mirrored net.udp.send_again counter, and a burst against a squeezed
// socket buffer returns instead of wedging. Loopback usually drains too
// fast to force a specific EAGAIN count, so the assertions pin the
// accounting invariants rather than an exact number.
TEST(UdpEndpoint, SendAgainBoundedRetryAndTelemetry) {
  udp_endpoint a, b;
  a.add_peer(2, "127.0.0.1", b.port());

  metrics_registry reg;
  a.enable_telemetry(reg);
  EXPECT_EQ(a.send_again(), 0u);
  EXPECT_EQ(reg.get_counter("net.udp.send_again").value(), 0u);

  // Squeeze the send buffer to its kernel floor so big bursts can hit a
  // full buffer mid-batch.
  const int tiny = 1;
  ASSERT_EQ(::setsockopt(a.fd(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)), 0);

  const std::vector<bytes> burst(2 * udp_endpoint::kBatchMax, bytes(1400, 0xab));
  std::uint64_t accepted = 0;
  for (int round = 0; round < 8; ++round) {
    accepted += a.send_batch(2, burst);  // bounded retry: must return
  }
  EXPECT_LE(accepted, 8 * burst.size());
  EXPECT_EQ(a.sent(), accepted);  // only kernel-accepted datagrams count
  // Every transient the retry loop absorbed is mirrored to the metric.
  EXPECT_EQ(reg.get_counter("net.udp.send_again").value(), a.send_again());

  // The single-datagram path shares the loop and the counters.
  ASSERT_TRUE(a.send(2, to_bytes("one more")));
  EXPECT_EQ(a.sent(), accepted + 1);
  EXPECT_EQ(reg.get_counter("net.udp.send_again").value(), a.send_again());
}

TEST(UdpEndpoint, ReusePortSharesOneBinding) {
  udp_endpoint first(0, /*reuse_port=*/true);
  udp_endpoint second(first.port(), /*reuse_port=*/true);
  EXPECT_EQ(second.port(), first.port());
  // Without SO_REUSEPORT the same bind must fail loudly, not silently.
  EXPECT_THROW(udp_endpoint third(first.port()), std::runtime_error);
}

TEST(UdpEndpoint, UnknownPeerSendFails) {
  udp_endpoint a;
  EXPECT_FALSE(a.send(99, to_bytes("x")));
}

TEST(UdpEndpoint, UnknownSourceDropped) {
  udp_endpoint a, stranger;
  // `a` has no peers registered; stranger knows a's address.
  stranger.add_peer(1, "127.0.0.1", a.port());
  stranger.send(1, to_bytes("who dis"));

  event_loop loop;
  int delivered = 0;
  loop.attach(a, [&](peer_id, const_byte_span) { ++delivered; });
  loop.run_for(50ms);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(a.dropped_unknown() + 0u, a.dropped_unknown());  // counter exists
}

// ---- ISSUE 6: zero-copy receive + backend selection ------------------

// Drains `rx` until `want` datagrams arrive (or the attempt budget runs
// out), appending views. Copies nothing out of the slabs.
std::size_t drain_views(udp_endpoint& rx, std::size_t want,
                        std::vector<std::pair<peer_id, buf::pkt_view>>& out) {
  for (int attempt = 0; attempt < 2000 && out.size() < want; ++attempt) {
    if (rx.recv_batch_views(udp_endpoint::kBatchMax, out) == 0) {
      std::this_thread::sleep_for(1ms);
    }
  }
  return out.size();
}

TEST(UdpBackend, LegacyConstructorKeepsMmsg) {
  // The (port, reuse_port) constructor must never auto-upgrade: existing
  // callers' counter semantics (rx_empty et al.) depend on recvmmsg.
  udp_endpoint a;
  EXPECT_EQ(a.backend(), udp_backend::mmsg);
  EXPECT_EQ(a.wait_fd(), a.fd());
}

TEST(UdpBackend, AutoDetectResolvesToARealBackend) {
  udp_config cfg;  // backend = auto_detect
  udp_endpoint a(cfg);
  if (io_uring_runtime_available()) {
    EXPECT_EQ(a.backend(), udp_backend::uring);
    EXPECT_NE(a.wait_fd(), a.fd());  // readiness watches the ring fd
  } else {
    EXPECT_EQ(a.backend(), udp_backend::mmsg);
    EXPECT_EQ(a.wait_fd(), a.fd());
  }
}

TEST(UdpBackend, UringFallbackWhenForcedUnavailable) {
  io_uring_force_unavailable(true);
  // Explicitly requesting uring on a kernel without it is a clean runtime
  // fallback to mmsg, not a construction failure.
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  udp_endpoint forced(cfg);
  EXPECT_EQ(forced.backend(), udp_backend::mmsg);

  udp_config auto_cfg;
  udp_endpoint detected(auto_cfg);
  EXPECT_EQ(detected.backend(), udp_backend::mmsg);
  io_uring_force_unavailable(false);

  // The fallen-back endpoint still moves datagrams.
  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", forced.port());
  forced.add_peer(1, "127.0.0.1", tx.port());
  ASSERT_TRUE(tx.send(2, to_bytes("fallback path")));
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(forced, 1, got), 1u);
  EXPECT_EQ(to_string(got[0].second.span()), "fallback path");
}

TEST(UdpBackend, RecvBatchViewsAliasesPoolSlabs) {
  // Zero-copy means the view's bytes live inside the endpoint's pool
  // arena — not in some per-datagram allocation.
  udp_config cfg;
  cfg.backend = udp_backend::mmsg;
  udp_endpoint rx(cfg);
  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  ASSERT_TRUE(tx.send(2, to_bytes("in the slab")));
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(rx, 1, got), 1u);

  const std::uint8_t* base = rx.pool()->arena_base();
  const std::uint8_t* end = base + rx.pool()->slab_size() * rx.pool()->slab_count();
  EXPECT_GE(got[0].second.data(), base);
  EXPECT_LT(got[0].second.data(), end);
  EXPECT_EQ(to_string(got[0].second.span()), "in the slab");

  // The held view pins its slab beyond the endpoint's own armed rx
  // buffers; dropping it recycles exactly that one slab.
  const std::size_t with_view = rx.pool_stats().outstanding;
  got.clear();
  EXPECT_EQ(rx.pool_stats().outstanding, with_view - 1);
}

TEST(UdpBackend, OversizedDatagramTruncatedAndCounted) {
  udp_config cfg;
  cfg.backend = udp_backend::mmsg;
  cfg.pool.slab_size = 128;  // far below the 512-byte datagram
  udp_endpoint rx(cfg);
  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  ASSERT_TRUE(tx.send(2, bytes(512, 0x5c)));
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(rx, 1, got), 1u);
  EXPECT_LE(got[0].second.size(), rx.pool()->slab_size());
  EXPECT_LT(got[0].second.size(), 512u);
  EXPECT_EQ(rx.rx_truncated(), 1u);
}

TEST(UdpBackend, SendGatherMatchesConcatenation) {
  udp_endpoint a, b;
  a.add_peer(2, "127.0.0.1", b.port());
  b.add_peer(1, "127.0.0.1", a.port());

  const bytes head = to_bytes("sealed-header|");
  const bytes payload = to_bytes("opaque payload");
  ASSERT_TRUE(a.send_gather(2, head, payload));

  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(b, 1, got), 1u);
  EXPECT_EQ(to_string(got[0].second.span()), "sealed-header|opaque payload");
}

// Same datagram set, byte-for-byte, through both backends. The uring arm
// skips (not fails) where the kernel lacks io_uring.
TEST(UdpBackend, MmsgUringEquivalence) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config mmsg_cfg;
  mmsg_cfg.backend = udp_backend::mmsg;
  udp_config uring_cfg;
  uring_cfg.backend = udp_backend::uring;
  udp_endpoint rx_mmsg(mmsg_cfg);
  udp_endpoint rx_uring(uring_cfg);
  ASSERT_EQ(rx_uring.backend(), udp_backend::uring);

  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx_mmsg.port());
  tx.add_peer(3, "127.0.0.1", rx_uring.port());
  rx_mmsg.add_peer(1, "127.0.0.1", tx.port());
  rx_uring.add_peer(1, "127.0.0.1", tx.port());

  constexpr std::size_t kCount = 17;
  std::vector<bytes> sent;
  for (std::size_t i = 0; i < kCount; ++i) {
    sent.push_back(to_bytes("datagram " + std::to_string(i) + " payload"));
    ASSERT_TRUE(tx.send(2, sent.back()));
    ASSERT_TRUE(tx.send(3, sent.back()));
  }

  std::vector<std::pair<peer_id, buf::pkt_view>> via_mmsg, via_uring;
  ASSERT_EQ(drain_views(rx_mmsg, kCount, via_mmsg), kCount);
  ASSERT_EQ(drain_views(rx_uring, kCount, via_uring), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(via_mmsg[i].first, 1u);
    EXPECT_EQ(via_uring[i].first, 1u);
    EXPECT_EQ(to_string(via_mmsg[i].second.span()), to_string(sent[i]));
    EXPECT_EQ(to_string(via_uring[i].second.span()), to_string(sent[i]));
  }
  EXPECT_EQ(rx_uring.received(), kCount);
  EXPECT_EQ(rx_uring.rx_errors(), 0u);
}

TEST(UdpBackend, UringPartialCompletion) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  udp_endpoint rx(cfg);
  ASSERT_EQ(rx.backend(), udp_backend::uring);
  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  // Fewer datagrams than the batch asks for: the drain returns what was
  // posted and counts the short batch, exactly like the mmsg backend.
  constexpr std::size_t kSent = 3;
  static_assert(kSent < udp_endpoint::kBatchMax);
  for (std::size_t i = 0; i < kSent; ++i) {
    ASSERT_TRUE(tx.send(2, to_bytes("p" + std::to_string(i))));
  }
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(rx, kSent, got), kSent);
  EXPECT_GE(rx.rx_partial_batches(), 1u);
  EXPECT_EQ(rx.rx_errors(), 0u);

  // And a genuinely idle drain is an rx_empty, not an error.
  const auto before = rx.rx_empty();
  got.clear();
  EXPECT_EQ(rx.recv_batch_views(udp_endpoint::kBatchMax, got), 0u);
  EXPECT_EQ(rx.rx_empty(), before + 1);
}

TEST(UdpBackend, UringBufferReplenish) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  // A deliberately tiny pool and slot count: every armed slot must be
  // replenished with a fresh slab many times over, and consumed views must
  // recycle fast enough to keep the ring armed.
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  cfg.uring_slots = 4;
  cfg.pool.slab_count = 8;
  cfg.pool.cache_batch = 2;
  udp_endpoint rx(cfg);
  ASSERT_EQ(rx.backend(), udp_backend::uring);
  udp_endpoint tx;
  tx.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", tx.port());

  constexpr std::size_t kTotal = 64;  // 8x the slab count
  std::size_t delivered = 0;
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(tx.send(2, to_bytes("r" + std::to_string(i))));
    // Consume as we go so slabs recycle into the armed slots.
    got.clear();
    delivered += rx.recv_batch_views(udp_endpoint::kBatchMax, got);
  }
  for (int attempt = 0; attempt < 2000 && delivered < kTotal; ++attempt) {
    got.clear();
    const std::size_t n = rx.recv_batch_views(udp_endpoint::kBatchMax, got);
    if (n == 0) std::this_thread::sleep_for(1ms);
    delivered += n;
  }
  EXPECT_EQ(delivered, kTotal);
  EXPECT_EQ(rx.rx_errors(), 0u);
  got.clear();
  // Nothing leaked: the only outstanding slabs are the armed rx slots.
  EXPECT_LE(rx.pool_stats().outstanding, cfg.uring_slots);
}

// ---- ISSUE 8: full-duplex io_uring (batched zero-copy egress) --------

// The same datagram set, byte for byte, whether egress goes through the
// synchronous sendmmsg path or the uring tx ring. The receiver is mmsg in
// both arms so only the tx backend varies.
TEST(UdpTx, MmsgUringTxEquivalence) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config mmsg_cfg;
  mmsg_cfg.backend = udp_backend::mmsg;
  udp_config uring_cfg;
  uring_cfg.backend = udp_backend::uring;
  udp_endpoint tx_mmsg(mmsg_cfg);
  udp_endpoint tx_uring(uring_cfg);
  ASSERT_EQ(tx_uring.backend(), udp_backend::uring);
#if INTEREDGE_HAS_IO_URING
  ASSERT_NE(tx_uring.tx_ring(), nullptr);
#endif

  udp_endpoint rx_a, rx_b;
  tx_mmsg.add_peer(2, "127.0.0.1", rx_a.port());
  tx_uring.add_peer(2, "127.0.0.1", rx_b.port());
  rx_a.add_peer(1, "127.0.0.1", tx_mmsg.port());
  rx_b.add_peer(1, "127.0.0.1", tx_uring.port());

  constexpr std::size_t kCount = 23;
  std::vector<bytes> sent;
  for (std::size_t i = 0; i < kCount; ++i) {
    sent.push_back(to_bytes("egress " + std::to_string(i) + " payload"));
  }
  EXPECT_EQ(tx_mmsg.send_batch(2, sent), kCount);
  EXPECT_EQ(tx_uring.send_batch(2, sent), kCount);
  ASSERT_TRUE(tx_uring.tx_drain());

  std::vector<std::pair<peer_id, buf::pkt_view>> via_mmsg, via_uring;
  ASSERT_EQ(drain_views(rx_a, kCount, via_mmsg), kCount);
  ASSERT_EQ(drain_views(rx_b, kCount, via_uring), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(to_string(via_mmsg[i].second.span()), to_string(sent[i]));
    EXPECT_EQ(to_string(via_uring[i].second.span()), to_string(sent[i]));
  }
  // Both arms count kernel-accepted datagrams identically.
  EXPECT_EQ(tx_mmsg.sent(), kCount);
  EXPECT_EQ(tx_uring.sent(), kCount);
  EXPECT_EQ(tx_uring.tx_inflight(), 0u);
#if INTEREDGE_HAS_IO_URING
  EXPECT_GE(tx_uring.tx_ring()->completions(), kCount);
  EXPECT_EQ(tx_uring.tx_ring()->send_errors(), 0u);
  // UDP sends are all-or-nothing at the datagram; a short send would mean
  // the gather iovecs were mis-sized.
  EXPECT_EQ(tx_uring.tx_ring()->short_sends(), 0u);
  // The whole batch went out in far fewer enters than datagrams.
  EXPECT_LT(tx_uring.tx_ring()->submit_batches(), kCount);
#endif
}

// send_gather on the uring backend with a payload aliasing the rx pool:
// the SQE gathers straight from the slab (no copy), the slab stays pinned
// until the completion retires, and afterwards the pool is fully recycled
// — release-exactly-on-CQE.
TEST(UdpTx, GatherSlabPinReleasesOnCompletion) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  udp_endpoint fwd(cfg);  // receives into slabs, forwards out of them
  ASSERT_EQ(fwd.backend(), udp_backend::uring);
  udp_endpoint origin, sink;
  origin.add_peer(2, "127.0.0.1", fwd.port());
  fwd.add_peer(1, "127.0.0.1", origin.port());
  fwd.add_peer(3, "127.0.0.1", sink.port());
  sink.add_peer(2, "127.0.0.1", fwd.port());

  ASSERT_TRUE(origin.send(2, to_bytes("payload-in-slab")));
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(fwd, 1, got), 1u);
  const const_byte_span payload = got[0].second.span();
  const std::uint8_t* base = fwd.pool()->arena_base();
  ASSERT_GE(payload.data(), base);  // precondition: it IS in the arena

  const bytes head = to_bytes("sealed|");
  // Observer reference: the refcount tells the pin story exactly (pool
  // -wide `outstanding` also counts the local cache magazine, so it can't).
  const buf::pkt_view keeper = got[0].second.clone();
  EXPECT_EQ(keeper.slab().refcount(), 2u);  // rx view + keeper
  ASSERT_TRUE(fwd.send_gather(3, head, payload));
  // The staged send holds its own slab reference: dropping the rx view
  // must NOT recycle the slab out from under the in-flight SQE.
  got.clear();
  EXPECT_EQ(keeper.slab().refcount(), 2u);  // keeper + the staged tx pin
  ASSERT_TRUE(fwd.tx_drain());
  EXPECT_EQ(fwd.tx_inflight(), 0u);

  // Completion retired the pin: the keeper holds the only reference left.
  EXPECT_EQ(keeper.slab().refcount(), 1u);

  std::vector<std::pair<peer_id, buf::pkt_view>> relayed;
  ASSERT_EQ(drain_views(sink, 1, relayed), 1u);
  EXPECT_EQ(to_string(relayed[0].second.span()), "sealed|payload-in-slab");
}

// An error CQE (here: -EINVAL from a zero destination port) must retire
// its slot — counted, slot recycled, nothing pinned forever.
TEST(UdpTx, ErrorCompletionRecyclesSlot) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  udp_endpoint a(cfg);
  ASSERT_EQ(a.backend(), udp_backend::uring);
  a.add_peer(7, "127.0.0.1", 0);  // port 0: the kernel rejects the send

  const bytes head = to_bytes("doomed-head");
  ASSERT_TRUE(a.send_gather(7, head, {}));
  ASSERT_TRUE(a.tx_drain());
  EXPECT_EQ(a.tx_inflight(), 0u);
#if INTEREDGE_HAS_IO_URING
  ASSERT_NE(a.tx_ring(), nullptr);
  EXPECT_GE(a.tx_ring()->send_errors(), 1u);
#endif

  // The slot is reusable: a real peer still works after the error.
  udp_endpoint rx;
  a.add_peer(8, "127.0.0.1", rx.port());
  rx.add_peer(2, "127.0.0.1", a.port());
  ASSERT_TRUE(a.send_gather(8, to_bytes("alive"), {}));
  ASSERT_TRUE(a.tx_drain());
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(rx, 1, got), 1u);
  EXPECT_EQ(to_string(got[0].second.span()), "alive");
}

// The SEND_ZC probe is runtime, not compile-time: with zerocopy forced
// off, staging falls back to plain SENDMSG, counts the fallback, and the
// bytes on the wire are identical.
TEST(UdpTx, ZerocopyProbeFallback) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
#if INTEREDGE_HAS_IO_URING
  uring_tx::force_no_zerocopy(true);
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  cfg.uring_zc_threshold = 0;  // force ZC even for these tiny payloads
  udp_endpoint a(cfg);
  uring_tx::force_no_zerocopy(false);
  ASSERT_NE(a.tx_ring(), nullptr);
  EXPECT_FALSE(a.tx_ring()->zerocopy_active());

  udp_endpoint rx;
  a.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", a.port());
  ASSERT_TRUE(a.send_gather(2, to_bytes("head|"), to_bytes("copied payload")));
  ASSERT_TRUE(a.tx_drain());
  EXPECT_EQ(a.tx_ring()->zc_used(), 0u);
  EXPECT_GE(a.tx_ring()->zc_fallback(), 1u);
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  ASSERT_EQ(drain_views(rx, 1, got), 1u);
  EXPECT_EQ(to_string(got[0].second.span()), "head|copied payload");

  // And with the force released, a fresh ring reflects the kernel's real
  // capability; when active, traffic actually uses the ZC opcode.
  udp_endpoint b(cfg);
  ASSERT_NE(b.tx_ring(), nullptr);
  if (b.tx_ring()->zerocopy_active()) {
    b.add_peer(2, "127.0.0.1", rx.port());
    rx.add_peer(3, "127.0.0.1", b.port());  // rx drops unknown sources
    ASSERT_TRUE(b.send_gather(2, to_bytes("zc|"), to_bytes("notified payload")));
    ASSERT_TRUE(b.tx_drain());
    EXPECT_EQ(b.tx_ring()->send_errors(), 0u);
    EXPECT_GE(b.tx_ring()->zc_used(), 1u);
    EXPECT_EQ(b.tx_inflight(), 0u);  // data CQE + notif CQE both retired
    got.clear();
    ASSERT_EQ(drain_views(rx, 1, got), 1u);
    EXPECT_EQ(to_string(got[0].second.span()), "zc|notified payload");
  }
#endif
}

// Tx telemetry mirror: the net.uring.tx.* metrics move in lockstep with
// the ring's own counters.
TEST(UdpTx, TelemetryMirrorsRingCounters) {
  if (!io_uring_runtime_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  udp_config cfg;
  cfg.backend = udp_backend::uring;
  udp_endpoint a(cfg);
  metrics_registry reg;
  a.enable_telemetry(reg);
  udp_endpoint rx;
  a.add_peer(2, "127.0.0.1", rx.port());
  rx.add_peer(1, "127.0.0.1", a.port());

  const std::vector<bytes> burst(9, to_bytes("telemetry probe"));
  EXPECT_EQ(a.send_batch(2, burst), burst.size());
  ASSERT_TRUE(a.tx_drain());
#if INTEREDGE_HAS_IO_URING
  EXPECT_EQ(reg.get_counter("net.uring.tx.completions").value(),
            a.tx_ring()->completions());
  EXPECT_EQ(reg.get_counter("net.uring.tx.short_sends").value(),
            a.tx_ring()->short_sends());
  EXPECT_EQ(reg.get_counter("net.uring.tx.zc_used").value(), a.tx_ring()->zc_used());
  EXPECT_EQ(reg.get_counter("net.uring.tx.zc_fallback").value(),
            a.tx_ring()->zc_fallback());
  EXPECT_EQ(reg.get_counter("net.uring.tx.submit_batches").value(),
            a.tx_ring()->submit_batches());
  EXPECT_EQ(static_cast<std::uint64_t>(reg.get_gauge("net.uring.tx.inflight_peak").value()),
            a.tx_ring()->inflight_peak());
  EXPECT_GE(a.tx_ring()->inflight_peak(), 1u);
#endif
}

// The sanitizer-CI concurrency target (tools/ci_sanitizers.sh runs this
// binary under tsan): a sharded SN forwards through a uring endpoint —
// worker threads produce into egress rings while the control thread
// drains them into staged gather SQEs. Exercises every cross-thread edge
// of the egress path under real completions.
TEST(UdpTx, ShardedEgressConcurrentDrain) {
  udp_config sn_cfg;  // auto_detect: uring where available, mmsg otherwise
  udp_endpoint ep_host_a, ep_host_b;
  udp_endpoint ep_sn(sn_cfg);
  event_loop loop;

  const peer_id id_a = ep_host_a.port();
  const peer_id id_sn = ep_sn.port();
  const peer_id id_b = ep_host_b.port();
  ep_host_a.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_host_b.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_sn.add_peer(id_a, "127.0.0.1", ep_host_a.port());
  ep_sn.add_peer(id_b, "127.0.0.1", ep_host_b.port());

  core::testing::identity_router route;
  real_clock clk;
  core::service_node sn(core::sn_config{.id = id_sn, .edomain = 1, .workers = 2}, clk,
                        [&](peer_id to, bytes d) { ep_sn.send(to, d); }, loop.scheduler(),
                        &route);
  sn.env().deploy(std::make_unique<core::testing::forwarder_module>());
  // Forwards drain from the shard egress rings into staged gather sends.
  sn.pipes().set_send_gather([&](peer_id to, const_byte_span head, const_byte_span payload) {
    ep_sn.send_gather(to, head, payload);
  });

  host::host_stack host_a(
      host::host_config{.addr = id_a, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
      [&](peer_id to, bytes d) { ep_host_a.send(to, d); }, loop.scheduler(), nullptr);
  host::host_stack host_b(
      host::host_config{.addr = id_b, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
      [&](peer_id to, bytes d) { ep_host_b.send(to, d); }, loop.scheduler(), nullptr);

  loop.attach(ep_host_a, [&](peer_id f, const_byte_span d) { host_a.on_datagram(f, d); });
  loop.attach(ep_host_b, [&](peer_id f, const_byte_span d) { host_b.on_datagram(f, d); });
  loop.attach_views(ep_sn, [&](std::span<std::pair<peer_id, buf::pkt_view>> ds) {
    sn.on_datagram_views(ds);
  });

  std::vector<std::string> inbox;
  host_b.set_default_handler(
      [&](const ilp::ilp_header&, bytes payload) { inbox.push_back(to_string(payload)); });

  constexpr int kMsgs = 48;
  auto conn = host_a.open(id_b, ilp::svc::delivery);
  for (int i = 0; i < kMsgs; ++i) {
    conn.send(to_bytes("concurrent " + std::to_string(i)));
    if (i % 8 == 7) loop.run_for(5ms);  // interleave drains with sends
  }
  loop.run_until_quiet(30ms, 5000ms);
  sn.wait_idle();
  loop.run_until_quiet(30ms, 2000ms);
  ASSERT_TRUE(ep_sn.tx_drain());

  EXPECT_EQ(inbox.size(), static_cast<std::size_t>(kMsgs));
  // In parallel mode the forward accounting lives in the shard termini.
  std::uint64_t forwarded = 0;
  for (std::size_t i = 0; i < sn.worker_count(); ++i) {
    forwarded += sn.shard_terminus_stats(i).forwarded;
  }
  EXPECT_EQ(forwarded, static_cast<std::uint64_t>(kMsgs));
  EXPECT_EQ(ep_sn.tx_inflight(), 0u);
}

TEST(UdpEndpoint, PeerTableSurvivesGrowth) {
  // ~100 peers forces the open-addressed table through several rehashes;
  // lookups in both directions (peer -> addr, source -> peer) must hold.
  udp_endpoint hub;
  std::vector<std::unique_ptr<udp_endpoint>> spokes;
  constexpr std::size_t kPeers = 100;
  for (std::size_t i = 0; i < kPeers; ++i) {
    spokes.push_back(std::make_unique<udp_endpoint>());
    hub.add_peer(static_cast<peer_id>(i + 1), "127.0.0.1", spokes.back()->port());
    spokes.back()->add_peer(1000, "127.0.0.1", hub.port());
  }
  // A scattering of spokes send to the hub; source resolution must map
  // each back to the right peer_id after all the insertions.
  for (std::size_t i = 0; i < kPeers; i += 7) {
    ASSERT_TRUE(spokes[i]->send(1000, to_bytes("from " + std::to_string(i))));
  }
  std::vector<std::pair<peer_id, buf::pkt_view>> got;
  const std::size_t expect = (kPeers + 6) / 7;
  ASSERT_EQ(drain_views(hub, expect, got), expect);
  for (auto& [from, view] : got) {
    EXPECT_EQ(to_string(view.span()), "from " + std::to_string(from - 1));
  }
  // And the hub can address every spoke.
  for (std::size_t i = 0; i < kPeers; ++i) {
    EXPECT_TRUE(hub.send(static_cast<peer_id>(i + 1), to_bytes("ping")));
  }
  EXPECT_EQ(hub.dropped_unknown(), 0u);
}

TEST(EventLoop, TimersFireInOrder) {
  event_loop loop;
  std::vector<int> order;
  loop.schedule(30ms, [&] { order.push_back(3); });
  loop.schedule(10ms, [&] { order.push_back(1); });
  loop.schedule(20ms, [&] { order.push_back(2); });
  loop.run_for(80ms);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ILP pipes over real UDP: handshake + sealed data.
TEST(UdpIlp, PipeHandshakeAndDataOverRealSockets) {
  udp_endpoint ep_a, ep_b;
  ep_a.add_peer(2, "127.0.0.1", ep_b.port());
  ep_b.add_peer(1, "127.0.0.1", ep_a.port());

  std::vector<std::string> received;
  ilp::pipe_manager mgr_a(1, [&](peer_id to, bytes d) { ep_a.send(to, d); },
                          [](peer_id, const ilp::ilp_header&, bytes) {});
  ilp::pipe_manager mgr_b(2, [&](peer_id to, bytes d) { ep_b.send(to, d); },
                          [&](peer_id, const ilp::ilp_header&, bytes payload) {
                            received.push_back(to_string(payload));
                          });

  event_loop loop;
  loop.attach(ep_a, [&](peer_id from, const_byte_span d) { mgr_a.on_datagram(from, d); });
  loop.attach(ep_b, [&](peer_id from, const_byte_span d) { mgr_b.on_datagram(from, d); });

  ilp::ilp_header h;
  h.service = ilp::svc::null_service;
  h.connection = 5;
  mgr_a.send(2, h, to_bytes("sealed over udp"));
  loop.run_until_quiet(30ms, 3000ms);

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "sealed over udp");
  EXPECT_TRUE(mgr_a.has_pipe(2));
  EXPECT_TRUE(mgr_b.has_pipe(1));
}

// A full InterEdge element chain on real sockets: host -> SN -> host.
TEST(UdpInterEdge, HostSnHostOverRealSockets) {
  udp_endpoint ep_host_a, ep_sn, ep_host_b;
  event_loop loop;

  // Identifier scheme: elements are addressed by their UDP port.
  const peer_id id_a = ep_host_a.port();
  const peer_id id_sn = ep_sn.port();
  const peer_id id_b = ep_host_b.port();
  ep_host_a.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_host_b.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_sn.add_peer(id_a, "127.0.0.1", ep_host_a.port());
  ep_sn.add_peer(id_b, "127.0.0.1", ep_host_b.port());

  core::testing::identity_router route;
  real_clock clk;
  core::service_node sn(core::sn_config{.id = id_sn, .edomain = 1}, clk,
                        [&](peer_id to, bytes d) { ep_sn.send(to, d); }, loop.scheduler(),
                        &route);
  sn.env().deploy(std::make_unique<core::testing::forwarder_module>());

  host::host_stack host_a(host::host_config{.addr = id_a, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
                          [&](peer_id to, bytes d) { ep_host_a.send(to, d); },
                          loop.scheduler(), nullptr);
  host::host_stack host_b(host::host_config{.addr = id_b, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
                          [&](peer_id to, bytes d) { ep_host_b.send(to, d); },
                          loop.scheduler(), nullptr);

  loop.attach(ep_host_a, [&](peer_id from, const_byte_span d) { host_a.on_datagram(from, d); });
  loop.attach(ep_host_b, [&](peer_id from, const_byte_span d) { host_b.on_datagram(from, d); });
  loop.attach(ep_sn, [&](peer_id from, const_byte_span d) { sn.on_datagram(from, d); });

  std::vector<std::string> inbox;
  host_b.set_default_handler([&](const ilp::ilp_header&, bytes payload) {
    inbox.push_back(to_string(payload));
  });

  auto conn = host_a.open(id_b, ilp::svc::delivery);
  for (int i = 0; i < 3; ++i) {
    conn.send(to_bytes("udp msg " + std::to_string(i)));
  }
  loop.run_until_quiet(30ms, 3000ms);

  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0], "udp msg 0");
  EXPECT_EQ(sn.datapath_stats().forwarded, 3u);
  EXPECT_GE(sn.datapath_stats().fast_path, 2u);  // decision cache engaged
}

// The pub/sub service module works unchanged over real sockets.
TEST(UdpInterEdge, PubSubOverRealSockets) {
  udp_endpoint ep_pub, ep_sn, ep_sub;
  event_loop loop;
  const peer_id id_pub = ep_pub.port();
  const peer_id id_sn = ep_sn.port();
  const peer_id id_sub = ep_sub.port();
  ep_pub.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_sub.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_sn.add_peer(id_pub, "127.0.0.1", ep_pub.port());
  ep_sn.add_peer(id_sub, "127.0.0.1", ep_sub.port());

  lookup::lookup_service directory;
  edomain::domain_core core(1, directory);
  core.add_sn(id_sn);
  real_clock clk;
  core::service_node sn(core::sn_config{.id = id_sn, .edomain = 1}, clk,
                        [&](peer_id to, bytes d) { ep_sn.send(to, d); }, loop.scheduler(),
                        nullptr);
  sn.env().deploy(std::make_unique<services::pubsub_service>(core, id_sn));

  host::host_stack pub_host(host::host_config{.addr = id_pub, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
                            [&](peer_id to, bytes d) { ep_pub.send(to, d); },
                            loop.scheduler(), &directory);
  host::host_stack sub_host(host::host_config{.addr = id_sub, .first_hop_sn = id_sn, .fallback_sns = {}}, clk,
                            [&](peer_id to, bytes d) { ep_sub.send(to, d); },
                            loop.scheduler(), &directory);
  loop.attach(ep_pub, [&](peer_id from, const_byte_span d) { pub_host.on_datagram(from, d); });
  loop.attach(ep_sub, [&](peer_id from, const_byte_span d) { sub_host.on_datagram(from, d); });
  loop.attach(ep_sn, [&](peer_id from, const_byte_span d) { sn.on_datagram(from, d); });

  services::pubsub_client subscriber(sub_host);
  services::pubsub_client publisher(pub_host);
  std::vector<std::string> got;
  subscriber.subscribe("live", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  loop.run_until_quiet(30ms, 2000ms);
  EXPECT_EQ(subscriber.acks(), 1u);

  publisher.publish("live", to_bytes("real datagrams"));
  loop.run_until_quiet(30ms, 2000ms);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "real datagrams");
}

}  // namespace
}  // namespace interedge::net
