// Integration tests: full InterEdge deployments over the simulator.
#include "deploy/deployment.h"

#include <gtest/gtest.h>

#include "core/test_modules.h"

namespace interedge::deploy {
namespace {

using core::testing::forwarder_module;

void deploy_forwarder(deployment& d) {
  d.deploy_service_simple([] { return std::make_unique<forwarder_module>(); });
}

struct inbox {
  std::vector<std::pair<ilp::ilp_header, bytes>> messages;
  void attach(host::host_stack& h) {
    h.set_default_handler([this](const ilp::ilp_header& hdr, bytes payload) {
      messages.emplace_back(hdr, std::move(payload));
    });
  }
};

TEST(Deployment, IntraEdomainDelivery) {
  deployment d;
  const auto dom = d.add_edomain();
  d.add_sn(dom);
  auto& alice = d.add_host(dom);
  auto& bob = d.add_host(dom);
  d.interconnect();
  deploy_forwarder(d);

  inbox bob_inbox;
  bob_inbox.attach(bob);
  // Disable the direct path so the packet traverses the SN.
  auto conn = alice.open(bob.addr(), ilp::svc::delivery, alice.first_hop_sn());
  conn.send(to_bytes("hello"));
  d.run();

  ASSERT_EQ(bob_inbox.messages.size(), 1u);
  EXPECT_EQ(to_string(bob_inbox.messages[0].second), "hello");
}

TEST(Deployment, DirectPathBetweenSameSnHosts) {
  deployment d;
  const auto dom = d.add_edomain();
  const auto sn = d.add_sn(dom);
  auto& alice = d.add_host(dom);
  auto& bob = d.add_host(dom);
  d.interconnect();
  deploy_forwarder(d);

  inbox bob_inbox;
  bob_inbox.attach(bob);
  alice.send_to(bob.addr(), ilp::svc::delivery, to_bytes("direct"));
  d.run();

  ASSERT_EQ(bob_inbox.messages.size(), 1u);
  EXPECT_EQ(alice.direct_sends(), 1u);
  // The SN never saw the packet.
  EXPECT_EQ(d.sn(sn).datapath_stats().received, 0u);
}

TEST(Deployment, InterEdomainViaGateways) {
  deployment d;
  const auto west = d.add_edomain();
  const auto east = d.add_edomain();
  const auto gw_west = d.add_sn(west);   // first SN = gateway
  const auto sn_west = d.add_sn(west);   // non-gateway SN
  const auto gw_east = d.add_sn(east);
  auto& alice = d.add_host(west, sn_west);
  auto& bob = d.add_host(east, gw_east);
  d.interconnect();
  deploy_forwarder(d);

  inbox bob_inbox;
  bob_inbox.attach(bob);
  alice.send_to(bob.addr(), ilp::svc::delivery, to_bytes("cross-domain"));
  d.run();

  ASSERT_EQ(bob_inbox.messages.size(), 1u);
  EXPECT_EQ(to_string(bob_inbox.messages[0].second), "cross-domain");
  // Path: alice -> sn_west -> gw_west -> gw_east -> bob.
  EXPECT_EQ(d.sn(sn_west).datapath_stats().forwarded, 1u);
  EXPECT_EQ(d.sn(gw_west).datapath_stats().forwarded, 1u);
  EXPECT_EQ(d.sn(gw_east).datapath_stats().forwarded, 1u);
}

TEST(Deployment, DirectInterdomainSkipsGateways) {
  deployment d(deployment_config{.direct_interdomain = true});
  const auto west = d.add_edomain();
  const auto east = d.add_edomain();
  const auto gw_west = d.add_sn(west);
  const auto sn_west = d.add_sn(west);
  const auto sn_east = d.add_sn(east);  // gateway east (but unused as relay)
  auto& alice = d.add_host(west, sn_west);
  auto& bob = d.add_host(east, sn_east);
  d.interconnect();
  deploy_forwarder(d);

  inbox bob_inbox;
  bob_inbox.attach(bob);
  alice.send_to(bob.addr(), ilp::svc::delivery, to_bytes("direct-interdomain"));
  d.run();

  ASSERT_EQ(bob_inbox.messages.size(), 1u);
  // sn_west talks straight to sn_east; the west gateway is not on the path.
  EXPECT_EQ(d.sn(gw_west).datapath_stats().received, 0u);
}

TEST(Deployment, SettlementLedgerRecordsCrossDomainTraffic) {
  deployment d;
  const auto west = d.add_edomain();
  const auto east = d.add_edomain();
  d.add_sn(west);
  d.add_sn(east);
  auto& alice = d.add_host(west);
  auto& bob = d.add_host(east);
  d.interconnect();
  deploy_forwarder(d);

  inbox bob_inbox;
  bob_inbox.attach(bob);
  for (int i = 0; i < 3; ++i) {
    alice.send_to(bob.addr(), ilp::svc::delivery, bytes(100, 0xaa));
  }
  d.run();
  EXPECT_EQ(bob_inbox.messages.size(), 3u);
  EXPECT_GT(d.ledger().traffic(west, east), 300u);  // payload + overheads
  // Settlement-free peering: zero due in both directions.
  EXPECT_EQ(d.ledger().settlement_due(west, east), 0);
  EXPECT_EQ(d.ledger().settlement_due(east, west), 0);
}

TEST(Deployment, FullMeshPeeringPipesExist) {
  deployment d;
  std::vector<edomain_id> domains;
  std::vector<peer_id> gateways;
  for (int i = 0; i < 4; ++i) {
    const auto dom = d.add_edomain();
    domains.push_back(dom);
    gateways.push_back(d.add_sn(dom));
  }
  d.interconnect();

  // "every edomain peers directly with all other edomains"
  for (std::size_t i = 0; i < gateways.size(); ++i) {
    for (std::size_t j = 0; j < gateways.size(); ++j) {
      if (i == j) continue;
      EXPECT_TRUE(d.sn(gateways[i]).pipes().has_pipe(gateways[j]))
          << i << " -> " << j;
      EXPECT_TRUE(d.core_of(domains[i]).gateway_to(domains[j]).has_value());
    }
  }
}

TEST(Deployment, HostIdentityRegisteredInLookup) {
  deployment d;
  const auto dom = d.add_edomain();
  d.add_sn(dom);
  auto& h = d.add_host(dom);
  const auto rec = d.directory().find_host(h.addr());
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->edomain, dom);
  EXPECT_EQ(rec->service_nodes.front(), h.first_hop_sn());
  EXPECT_EQ(rec->owner_public, d.identity_of(h.addr()).keys.public_key);
}

TEST(Deployment, UnknownDestinationDropsAtSn) {
  deployment d;
  const auto dom = d.add_edomain();
  const auto sn = d.add_sn(dom);
  auto& alice = d.add_host(dom);
  d.interconnect();
  deploy_forwarder(d);

  alice.send_to(999999, ilp::svc::delivery, to_bytes("to nowhere"));
  d.run();
  EXPECT_EQ(d.sn(sn).datapath_stats().dropped, 1u);
}

TEST(Deployment, ManyEdomainsScales) {
  deployment d;
  constexpr int kDomains = 8;
  std::vector<edge_addr> hosts;
  for (int i = 0; i < kDomains; ++i) {
    const auto dom = d.add_edomain();
    d.add_sn(dom);
    hosts.push_back(d.add_host(dom).addr());
  }
  d.interconnect();
  deploy_forwarder(d);

  // Every host messages every other host.
  std::map<edge_addr, int> received;
  for (edge_addr addr : hosts) {
    d.host_at(addr).set_default_handler(
        [&received, addr](const ilp::ilp_header&, bytes) { ++received[addr]; });
  }
  for (edge_addr from : hosts) {
    for (edge_addr to : hosts) {
      if (from != to) d.host_at(from).send_to(to, ilp::svc::delivery, to_bytes("x"));
    }
  }
  d.run();
  for (edge_addr addr : hosts) {
    EXPECT_EQ(received[addr], kDomains - 1) << "host " << addr;
  }
}

}  // namespace
}  // namespace interedge::deploy
