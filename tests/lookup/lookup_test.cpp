#include "lookup/lookup_service.h"

#include <gtest/gtest.h>

namespace interedge::lookup {
namespace {

crypto::x25519_keypair keypair(std::uint8_t fill) {
  crypto::x25519_key seed;
  seed.fill(fill);
  return crypto::x25519_keypair_from_seed(seed);
}

class LookupFixture : public ::testing::Test {
 protected:
  lookup_service svc;
  crypto::x25519_keypair owner = keypair(0x11);

  bytes owner_token(const std::string& statement) {
    return make_auth_token(owner.secret, svc.public_key(), to_bytes(statement));
  }
};

TEST_F(LookupFixture, HostRegistrationAndResolution) {
  host_record rec;
  rec.addr = 42;
  rec.owner_public = owner.public_key;
  rec.service_nodes = {100, 101};
  rec.edomain = 3;
  svc.register_host(rec);

  const auto found = svc.find_host(42);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->service_nodes, (std::vector<ilp::peer_id>{100, 101}));
  EXPECT_EQ(found->edomain, 3);
  EXPECT_EQ(found->owner_public, owner.public_key);
  EXPECT_FALSE(svc.find_host(43).has_value());
}

TEST_F(LookupFixture, DeregisterHost) {
  host_record rec;
  rec.addr = 42;
  svc.register_host(rec);
  EXPECT_TRUE(svc.deregister_host(42));
  EXPECT_FALSE(svc.find_host(42).has_value());
  EXPECT_FALSE(svc.deregister_host(42));
}

TEST_F(LookupFixture, GroupCreationIsExclusive) {
  EXPECT_TRUE(svc.create_group("topic/weather", owner.public_key));
  EXPECT_FALSE(svc.create_group("topic/weather", keypair(0x22).public_key));
}

TEST_F(LookupFixture, OpenGroupStatementVerified) {
  svc.create_group("g", owner.public_key);
  EXPECT_FALSE(svc.can_join("g", 7));
  // Forged token (wrong principal) must be rejected.
  const auto mallory = keypair(0x99);
  const bytes forged = make_auth_token(mallory.secret, svc.public_key(), to_bytes("open:g"));
  EXPECT_FALSE(svc.set_group_open("g", forged));
  EXPECT_FALSE(svc.can_join("g", 7));
  // Owner's token works; the group becomes open to all.
  EXPECT_TRUE(svc.set_group_open("g", owner_token("open:g")));
  EXPECT_TRUE(svc.can_join("g", 7));
  EXPECT_TRUE(svc.can_join("g", 12345));
}

TEST_F(LookupFixture, PerMemberGrants) {
  svc.create_group("g", owner.public_key);
  EXPECT_TRUE(svc.grant_membership("g", 7, owner_token("grant:g:7")));
  EXPECT_TRUE(svc.can_join("g", 7));
  EXPECT_FALSE(svc.can_join("g", 8));
  // A grant token for one member cannot authorize another.
  EXPECT_FALSE(svc.grant_membership("g", 8, owner_token("grant:g:7")));
}

TEST_F(LookupFixture, UnknownGroupJoinDenied) {
  EXPECT_FALSE(svc.can_join("nope", 7));
  EXPECT_FALSE(svc.set_group_open("nope", owner_token("open:nope")));
}

TEST_F(LookupFixture, MemberEdomainTracking) {
  svc.create_group("g", owner.public_key);
  EXPECT_TRUE(svc.add_member_edomain("g", 1));
  EXPECT_FALSE(svc.add_member_edomain("g", 1));  // already present
  EXPECT_TRUE(svc.add_member_edomain("g", 2));
  const auto rec = svc.find_group("g");
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->member_edomains, (std::set<edomain_id>{1, 2}));
  EXPECT_TRUE(svc.remove_member_edomain("g", 1));
  EXPECT_FALSE(svc.remove_member_edomain("g", 1));
}

TEST_F(LookupFixture, SenderRegistrationReturnsMembersAndWatches) {
  svc.create_group("g", owner.public_key);
  svc.add_member_edomain("g", 5);
  svc.add_member_edomain("g", 6);

  std::vector<std::pair<edomain_id, group_event>> events;
  const auto members = svc.register_sender("g", 1, [&](const std::string&, edomain_id d,
                                                       group_event e) { events.emplace_back(d, e); });
  EXPECT_EQ(members, (std::vector<edomain_id>{5, 6}));

  // Watch fires on later membership changes.
  svc.add_member_edomain("g", 7);
  svc.remove_member_edomain("g", 5);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], std::make_pair(edomain_id{7}, group_event::member_edomain_added));
  EXPECT_EQ(events[1], std::make_pair(edomain_id{5}, group_event::member_edomain_removed));

  svc.deregister_sender("g", 1);
  svc.add_member_edomain("g", 8);
  EXPECT_EQ(events.size(), 2u);  // watch removed
}

TEST_F(LookupFixture, MultipleWatchersAllNotified) {
  svc.create_group("g", owner.public_key);
  int count_a = 0, count_b = 0;
  svc.register_sender("g", 1, [&](const std::string&, edomain_id, group_event) { ++count_a; });
  svc.register_sender("g", 2, [&](const std::string&, edomain_id, group_event) { ++count_b; });
  svc.add_member_edomain("g", 9);
  EXPECT_EQ(count_a, 1);
  EXPECT_EQ(count_b, 1);
}

TEST(AuthToken, DesignatedVerifierSymmetry) {
  const auto alice = keypair(1);
  const auto verifier = keypair(2);
  const bytes statement = to_bytes("statement");
  const bytes token = make_auth_token(alice.secret, verifier.public_key, statement);
  // The verifier recomputes the same MAC from its own secret.
  const bytes expected = make_auth_token(verifier.secret, alice.public_key, statement);
  EXPECT_EQ(token, expected);
}

TEST(AuthToken, DifferentStatementsDifferentTokens) {
  const auto alice = keypair(1);
  const auto verifier = keypair(2);
  EXPECT_NE(make_auth_token(alice.secret, verifier.public_key, to_bytes("a")),
            make_auth_token(alice.secret, verifier.public_key, to_bytes("b")));
}

}  // namespace
}  // namespace interedge::lookup
