// Randomized robustness: every wire-format decoder must survive arbitrary
// bytes — either parse successfully or fail cleanly (serial_error /
// nullopt), never crash or read out of bounds. These are the inputs a
// malicious peer controls.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"
#include "core/channel.h"
#include "crypto/psp.h"
#include "ilp/header.h"
#include "ilp/pipe.h"
#include "ilp/pipe_manager.h"
#include "services/envelope.h"
#include "services/qos.h"
#include "tunnel/tunnel.h"

namespace interedge {
namespace {

bytes random_bytes_of(rng& r, std::size_t max_len) {
  bytes b(r.below(max_len + 1));
  r.fill(b);
  return b;
}

template <typename Fn>
void fuzz(std::uint64_t seed, int iterations, std::size_t max_len, Fn&& attempt) {
  rng r(seed);
  for (int i = 0; i < iterations; ++i) {
    const bytes input = random_bytes_of(r, max_len);
    attempt(const_byte_span(input));
  }
}

TEST(DecodeFuzz, IlpHeaderNeverCrashes) {
  int parsed = 0;
  fuzz(1, 2000, 200, [&](const_byte_span in) {
    try {
      auto h = ilp::ilp_header::decode(in);
      ++parsed;
      // Whatever parsed must re-encode and re-parse identically.
      EXPECT_EQ(ilp::ilp_header::decode(h.encode()), h);
    } catch (const serial_error&) {
    }
  });
  // Some random inputs will parse (headers are compact); that is fine.
  SUCCEED() << parsed << " random inputs parsed";
}

TEST(DecodeFuzz, SlowpathRequestNeverCrashes) {
  fuzz(2, 2000, 300, [&](const_byte_span in) {
    try {
      auto req = core::slowpath_request::decode(in);
      (void)req;
    } catch (const serial_error&) {
    }
  });
}

TEST(DecodeFuzz, SlowpathResponseNeverCrashes) {
  fuzz(3, 2000, 300, [&](const_byte_span in) {
    try {
      auto resp = core::slowpath_response::decode(in);
      (void)resp;
    } catch (const serial_error&) {
    }
  });
}

TEST(DecodeFuzz, QosProfileNeverCrashes) {
  fuzz(4, 2000, 200, [&](const_byte_span in) {
    try {
      auto p = services::qos_profile::decode(in);
      (void)p;
    } catch (const serial_error&) {
    }
  });
}

TEST(DecodeFuzz, PspOpenRejectsGarbage) {
  crypto::psp_master_key master;
  master.fill(0x42);
  const crypto::psp_context rx(master, 7);
  fuzz(5, 2000, 200, [&](const_byte_span in) {
    EXPECT_FALSE(rx.open(in, {}).has_value());
  });
}

TEST(DecodeFuzz, PipeOpenRejectsGarbage) {
  const bytes secret(32, 0x31);
  ilp::pipe p(secret, 1, 2, true);
  fuzz(6, 2000, 300, [&](const_byte_span in) {
    EXPECT_FALSE(p.open(in).has_value());
  });
}

TEST(DecodeFuzz, PipeManagerSurvivesGarbageDatagrams) {
  int delivered = 0;
  ilp::pipe_manager mgr(
      1, [](ilp::peer_id, bytes) {},
      [&delivered](ilp::peer_id, const ilp::ilp_header&, bytes) { ++delivered; });
  fuzz(7, 2000, 300, [&](const_byte_span in) { mgr.on_datagram(99, in); });
  // No garbage frame may ever surface as application data. (Pipes MAY be
  // created: a well-formed random handshake init is indistinguishable
  // from a genuine unauthenticated first contact — the resulting pipe can
  // never authenticate a data packet.)
  EXPECT_EQ(delivered, 0);
}

TEST(DecodeFuzz, EnvelopeOpenRejectsGarbage) {
  crypto::x25519_key seed;
  seed.fill(9);
  const auto kp = crypto::x25519_keypair_from_seed(seed);
  fuzz(8, 500, 200, [&](const_byte_span in) {
    EXPECT_FALSE(services::envelope_open(kp.secret, in).has_value());
  });
}

TEST(DecodeFuzz, TunnelHandshakeRejectsGarbage) {
  crypto::x25519_key sa, sb;
  sa.fill(1);
  sb.fill(2);
  tunnel::tunnel_endpoint ep(crypto::x25519_keypair_from_seed(sa),
                             crypto::x25519_keypair_from_seed(sb).public_key);
  rng r(9);
  // Exactly-sized random initiations must be rejected (wrong MACs/seals),
  // and wrong-size input must be rejected outright.
  for (int i = 0; i < 200; ++i) {
    bytes exact(tunnel::kInitiationSize);
    r.fill(exact);
    EXPECT_FALSE(ep.consume_initiation(exact).has_value());
    bytes wrong(r.below(400));
    if (wrong.size() == tunnel::kInitiationSize) wrong.push_back(0);
    r.fill(wrong);
    EXPECT_FALSE(ep.consume_initiation(wrong).has_value());
  }
}

TEST(DecodeFuzz, ReaderNeverOverreads) {
  // Property: any sequence of reader operations on random input either
  // succeeds within bounds or throws serial_error.
  rng r(10);
  for (int i = 0; i < 2000; ++i) {
    const bytes input = random_bytes_of(r, 64);
    reader rd(input);
    try {
      while (!rd.done()) {
        switch (r.below(5)) {
          case 0: rd.u8(); break;
          case 1: rd.u16(); break;
          case 2: rd.u32(); break;
          case 3: rd.varint(); break;
          case 4: rd.blob(); break;
        }
        ASSERT_LE(rd.position(), input.size());
      }
    } catch (const serial_error&) {
    }
  }
}

// Flip every single bit of a valid sealed pipe message: every mutation
// must be rejected (header protection is all-or-nothing).
TEST(DecodeFuzz, PipeBitFlipExhaustive) {
  const bytes secret(32, 0x44);
  ilp::pipe a(secret, 1, 2, true);
  ilp::pipe b(secret, 2, 1, false);
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = 5;
  const bytes wire = a.seal(h, to_bytes("pp"));
  const const_byte_span body = const_byte_span(wire).subspan(1);

  // Find the payload offset: everything before it is protected.
  // (Payload bytes themselves are intentionally NOT protected by the pipe.)
  const std::size_t payload_offset = wire.size() - 2;
  for (std::size_t byte = 1; byte < payload_offset; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes mutated(wire);
      mutated[byte] ^= static_cast<std::uint8_t>(1 << bit);
      const auto opened = b.open(const_byte_span(mutated).subspan(1));
      if (opened) {
        // The only acceptable parse is one that still authenticated — the
        // mutation must have hit the length prefix in a way that still
        // frames the identical sealed header, which cannot happen for a
        // single bit flip inside it.
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit << " was accepted";
      }
    }
  }
  // Sanity: the unmutated message still opens.
  EXPECT_TRUE(b.open(body).has_value());
}

}  // namespace
}  // namespace interedge
