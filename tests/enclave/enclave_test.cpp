#include "enclave/enclave.h"

#include <gtest/gtest.h>

#include "core/test_modules.h"
#include "enclave/attestation.h"

namespace interedge::enclave {
namespace {

using core::testing::sink_module;

// Minimal context for exercising the wrapper directly.
class stub_context final : public core::service_context {
 public:
  core::peer_id node_id() const override { return 1; }
  std::uint16_t edomain() const override { return 1; }
  const clock& node_clock() const override { return clk_; }
  core::kv_store& storage() override { return kv_; }
  void send(core::peer_id, const ilp::ilp_header&, bytes) override {}
  void schedule(nanoseconds, std::function<void()>) override {}
  std::string config(const std::string&, const std::string& fallback) const override {
    return fallback;
  }
  void invalidate_connection(ilp::service_id, ilp::connection_id) override {}
  void invalidate_service(ilp::service_id) override {}
  std::uint64_t cache_hit_count(const core::cache_key&) const override { return 0; }
  std::optional<core::peer_id> next_hop(core::edge_addr dest) const override { return dest; }
  metrics_registry& metrics() override { return metrics_; }

 private:
  manual_clock clk_;
  core::kv_store kv_;
  metrics_registry metrics_;
};

enclave_config test_config() {
  enclave_config c;
  c.sealing_secret = to_bytes("device-secret-123");
  return c;
}

core::packet make_packet(std::size_t payload_size = 100) {
  core::packet p;
  p.l3_src = 5;
  p.header.service = ilp::svc::null_service;
  p.header.connection = 1;
  p.payload = bytes(payload_size, 0x7a);
  return p;
}

TEST(EnclaveRuntime, TransparentToModuleSemantics) {
  auto inner = std::make_unique<sink_module>();
  auto* raw = inner.get();
  enclave_runtime enc(std::move(inner), test_config());
  stub_context ctx;

  const auto result = enc.on_packet(ctx, make_packet());
  EXPECT_EQ(result.verdict.kind, core::decision::verdict::deliver_local);
  EXPECT_EQ(raw->counter(), 1);
  EXPECT_EQ(enc.id(), ilp::svc::null_service);
  EXPECT_EQ(enc.name(), "test-sink");
}

TEST(EnclaveRuntime, CountsBoundaryCrossings) {
  enclave_runtime enc(std::make_unique<sink_module>(), test_config());
  stub_context ctx;
  for (int i = 0; i < 3; ++i) enc.on_packet(ctx, make_packet(200));
  EXPECT_EQ(enc.stats().transitions_in, 3u);
  EXPECT_EQ(enc.stats().transitions_out, 3u);
  EXPECT_EQ(enc.stats().bytes_copied, 3u * 2 * 200);
}

TEST(EnclaveRuntime, NoBounceBuffersMeansNoCopies) {
  enclave_config c = test_config();
  c.bounce_buffers = false;
  enclave_runtime enc(std::make_unique<sink_module>(), c);
  stub_context ctx;
  enc.on_packet(ctx, make_packet(200));
  EXPECT_EQ(enc.stats().bytes_copied, 0u);
  EXPECT_EQ(enc.stats().transitions_in, 1u);
}

TEST(EnclaveRuntime, SealUnsealRoundTrip) {
  enclave_runtime enc(std::make_unique<sink_module>(), test_config());
  const bytes sealed = enc.seal(to_bytes("secret state"));
  const auto opened = enc.unseal(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "secret state");
}

TEST(EnclaveRuntime, SealedBlobsAreFresh) {
  enclave_runtime enc(std::make_unique<sink_module>(), test_config());
  EXPECT_NE(enc.seal(to_bytes("same")), enc.seal(to_bytes("same")));
}

TEST(EnclaveRuntime, TamperedSealRejected) {
  enclave_runtime enc(std::make_unique<sink_module>(), test_config());
  bytes sealed = enc.seal(to_bytes("secret"));
  sealed.back() ^= 1;
  EXPECT_FALSE(enc.unseal(sealed).has_value());
}

TEST(EnclaveRuntime, DifferentModuleCannotUnseal) {
  // Sealing binds to the module measurement: a different (e.g. tampered)
  // module must not read the checkpoint.
  enclave_runtime enc_a(std::make_unique<sink_module>(), test_config());
  enclave_runtime enc_b(std::make_unique<core::testing::forwarder_module>(), test_config());
  const bytes sealed = enc_a.seal(to_bytes("secret"));
  EXPECT_FALSE(enc_b.unseal(sealed).has_value());
}

TEST(EnclaveRuntime, DifferentDeviceCannotUnseal) {
  enclave_config other = test_config();
  other.sealing_secret = to_bytes("other-device");
  enclave_runtime enc_a(std::make_unique<sink_module>(), test_config());
  enclave_runtime enc_b(std::make_unique<sink_module>(), other);
  EXPECT_FALSE(enc_b.unseal(enc_a.seal(to_bytes("x"))).has_value());
}

TEST(EnclaveRuntime, SealedCheckpointRestores) {
  stub_context ctx;
  auto inner = std::make_unique<sink_module>();
  enclave_runtime enc(std::move(inner), test_config());
  enc.on_packet(ctx, make_packet());
  enc.on_packet(ctx, make_packet());
  const bytes snap = enc.checkpoint(ctx);

  auto inner2 = std::make_unique<sink_module>();
  auto* raw2 = inner2.get();
  enclave_runtime enc2(std::move(inner2), test_config());
  stub_context ctx2;
  enc2.restore(ctx2, snap);
  EXPECT_EQ(raw2->counter(), 2);
}

TEST(EnclaveRuntime, RestoreRejectsGarbageSilently) {
  auto inner = std::make_unique<sink_module>();
  auto* raw = inner.get();
  enclave_runtime enc(std::move(inner), test_config());
  stub_context ctx;
  EXPECT_NO_THROW(enc.restore(ctx, to_bytes("garbage")));
  EXPECT_EQ(raw->counter(), 0);  // untouched
}

// ---- attestation -------------------------------------------------------

TEST(Attestation, QuoteVerifies) {
  attestation_authority authority(42);
  const bytes device_key = authority.provision(7);

  tpm device(device_key);
  const measurement m = measure_module("pubsub", "v1", to_bytes("code"));
  device.extend(m);
  authority.expect("pubsub-sn", device.register_value());

  const bytes nonce = to_bytes("fresh-nonce-1");
  EXPECT_TRUE(authority.verify(7, "pubsub-sn", nonce, device.quote(nonce)));
}

TEST(Attestation, WrongNodeKeyFails) {
  attestation_authority authority(42);
  tpm device(authority.provision(7));
  const measurement m = measure_module("pubsub", "v1", to_bytes("code"));
  device.extend(m);
  authority.expect("pubsub-sn", device.register_value());
  const bytes nonce = to_bytes("n");
  // Claiming to be node 8 with node 7's quote fails.
  EXPECT_FALSE(authority.verify(8, "pubsub-sn", nonce, device.quote(nonce)));
}

TEST(Attestation, TamperedModuleChangesMeasurement) {
  const measurement good = measure_module("pubsub", "v1", to_bytes("code"));
  const measurement bad = measure_module("pubsub", "v1", to_bytes("code'"));
  EXPECT_NE(good, bad);

  attestation_authority authority(42);
  tpm device(authority.provision(7));
  device.extend(bad);
  tpm golden(authority.provision(7));
  golden.extend(good);
  authority.expect("pubsub-sn", golden.register_value());
  const bytes nonce = to_bytes("n");
  EXPECT_FALSE(authority.verify(7, "pubsub-sn", nonce, device.quote(nonce)));
}

TEST(Attestation, ReplayWithDifferentNonceFails) {
  attestation_authority authority(42);
  tpm device(authority.provision(7));
  device.extend(measure_module("m", "v1", to_bytes("c")));
  authority.expect("label", device.register_value());
  const bytes quote = device.quote(to_bytes("nonce-1"));
  EXPECT_FALSE(authority.verify(7, "label", to_bytes("nonce-2"), quote));
}

TEST(Attestation, ExtendOrderMatters) {
  tpm a(to_bytes("k")), b(to_bytes("k"));
  const measurement m1 = measure_module("x", "1", {});
  const measurement m2 = measure_module("y", "1", {});
  a.extend(m1);
  a.extend(m2);
  b.extend(m2);
  b.extend(m1);
  EXPECT_NE(a.register_value(), b.register_value());
}

TEST(Attestation, UnknownLabelFails) {
  attestation_authority authority(1);
  tpm device(authority.provision(1));
  EXPECT_FALSE(authority.verify(1, "never-registered", to_bytes("n"), device.quote(to_bytes("n"))));
}

}  // namespace
}  // namespace interedge::enclave
