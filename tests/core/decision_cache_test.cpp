#include "core/decision_cache.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"

namespace interedge::core {
namespace {

cache_key key_of(std::uint64_t n) { return cache_key{n, static_cast<ilp::service_id>(n % 7), n * 3}; }

TEST(DecisionCache, InsertLookup) {
  decision_cache cache(16);
  const cache_key k{1, 2, 3};
  EXPECT_FALSE(cache.lookup(k).has_value());
  cache.insert(k, decision::forward_to(99));
  const auto d = cache.lookup(k);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, decision::verdict::forward);
  EXPECT_EQ(d->next_hops, std::vector<peer_id>{99});
}

TEST(DecisionCache, KeyComponentsAllMatter) {
  decision_cache cache(16);
  cache.insert({1, 2, 3}, decision::deliver());
  EXPECT_FALSE(cache.lookup({9, 2, 3}).has_value());  // different L3 src
  EXPECT_FALSE(cache.lookup({1, 9, 3}).has_value());  // different service
  EXPECT_FALSE(cache.lookup({1, 2, 9}).has_value());  // different connection
  EXPECT_TRUE(cache.lookup({1, 2, 3}).has_value());
}

TEST(DecisionCache, ReplaceExistingEntry) {
  decision_cache cache(16);
  const cache_key k{1, 2, 3};
  cache.insert(k, decision::forward_to(5));
  cache.insert(k, decision::drop_packet());
  EXPECT_EQ(cache.lookup(k)->kind, decision::verdict::drop);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCache, LruEvictionAtCapacity) {
  decision_cache cache(3);
  cache.insert(key_of(1), decision::deliver());
  cache.insert(key_of(2), decision::deliver());
  cache.insert(key_of(3), decision::deliver());
  // Touch 1 so 2 becomes LRU.
  cache.lookup(key_of(1));
  cache.insert(key_of(4), decision::deliver());
  EXPECT_TRUE(cache.contains(key_of(1)));
  EXPECT_FALSE(cache.contains(key_of(2)));
  EXPECT_TRUE(cache.contains(key_of(3)));
  EXPECT_TRUE(cache.contains(key_of(4)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DecisionCache, HitCountApi) {
  // Appendix B: services can retrieve an entry's hit count to decide
  // whether a connection is still active.
  decision_cache cache(16);
  const cache_key k{1, 2, 3};
  cache.insert(k, decision::deliver());
  EXPECT_EQ(cache.hit_count(k), 0u);
  cache.lookup(k);
  cache.lookup(k);
  EXPECT_EQ(cache.hit_count(k), 2u);
  EXPECT_EQ(cache.hit_count({9, 9, 9}), 0u);
}

TEST(DecisionCache, ContainsHasNoSideEffects) {
  decision_cache cache(16);
  const cache_key k{1, 2, 3};
  cache.insert(k, decision::deliver());
  cache.contains(k);
  EXPECT_EQ(cache.hit_count(k), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(DecisionCache, EraseConnectionDropsAllSources) {
  decision_cache cache(16);
  cache.insert({1, 7, 100}, decision::deliver());
  cache.insert({2, 7, 100}, decision::deliver());
  cache.insert({1, 7, 200}, decision::deliver());
  EXPECT_EQ(cache.erase_connection(7, 100), 2u);
  EXPECT_FALSE(cache.contains({1, 7, 100}));
  EXPECT_FALSE(cache.contains({2, 7, 100}));
  EXPECT_TRUE(cache.contains({1, 7, 200}));
}

TEST(DecisionCache, EraseService) {
  decision_cache cache(16);
  cache.insert({1, 7, 1}, decision::deliver());
  cache.insert({1, 7, 2}, decision::deliver());
  cache.insert({1, 8, 1}, decision::deliver());
  EXPECT_EQ(cache.erase_service(7), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCache, EraseServiceAfterLruRecycling) {
  // The secondary index must follow entries recycled through the LRU at
  // capacity: the victim's slot moves to the incoming entry's service.
  decision_cache cache(4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    cache.insert({i, static_cast<ilp::service_id>(i % 2 ? 7 : 8), i}, decision::deliver());
  }
  // Residents are the last four inserts: 96, 98 (svc 8) and 97, 99 (svc 7).
  EXPECT_EQ(cache.erase_service(7), 2u);
  EXPECT_EQ(cache.erase_service(7), 0u);
  EXPECT_EQ(cache.erase_service(8), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 4u);
}

// Property: erase_service removes exactly the resident entries of that
// service, under arbitrary interleavings with insert/lookup/erase and LRU
// recycling (the secondary index and the LRU list must never diverge).
TEST(DecisionCache, ServiceIndexConsistentUnderChurn) {
  rng random(11);
  decision_cache cache(32);
  for (int op = 0; op < 3000; ++op) {
    const cache_key k = key_of(random.below(100));
    switch (random.below(4)) {
      case 0:
        cache.insert(k, decision::deliver());
        break;
      case 1:
        cache.lookup(k);
        break;
      case 2:
        cache.erase(k);
        break;
      case 3: {
        const auto svc = static_cast<ilp::service_id>(random.below(7));
        std::size_t resident = 0;
        for (std::uint64_t n = 0; n < 100; ++n) {
          const cache_key c = key_of(n);
          if (c.service == svc && cache.contains(c)) ++resident;
        }
        EXPECT_EQ(cache.erase_service(svc), resident);
        for (std::uint64_t n = 0; n < 100; ++n) {
          const cache_key c = key_of(n);
          if (c.service == svc) EXPECT_FALSE(cache.contains(c));
        }
        break;
      }
    }
    ASSERT_LE(cache.size(), 32u);
  }
}

TEST(DecisionCache, EraseConnectionLeavesOtherServicesAlone) {
  decision_cache cache(16);
  cache.insert({1, 7, 100}, decision::deliver());
  cache.insert({1, 8, 100}, decision::deliver());  // same connection, other service
  EXPECT_EQ(cache.erase_connection(7, 100), 1u);
  EXPECT_TRUE(cache.contains({1, 8, 100}));
}

TEST(DecisionCache, StatsTrackHitsAndMisses) {
  decision_cache cache(16);
  cache.lookup({1, 1, 1});
  cache.insert({1, 1, 1}, decision::deliver());
  cache.lookup({1, 1, 1});
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(DecisionCache, ClearEmptiesCache) {
  decision_cache cache(16);
  for (std::uint64_t i = 0; i < 10; ++i) cache.insert(key_of(i), decision::deliver());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(key_of(5)));
}

TEST(DecisionCache, ZeroCapacityClampsToOne) {
  decision_cache cache(0);
  cache.insert({1, 1, 1}, decision::deliver());
  EXPECT_EQ(cache.size(), 1u);
  cache.insert({2, 2, 2}, decision::deliver());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecisionCache, MulticastStyleMultiHopDecision) {
  decision_cache cache(16);
  cache.insert({1, 4, 9}, decision::forward_all({10, 11, 12}));
  const auto d = cache.lookup({1, 4, 9});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->next_hops.size(), 3u);
}

// Property: under arbitrary interleavings of insert/lookup/erase, the
// cache never exceeds capacity and lookup only returns inserted values.
TEST(DecisionCache, RandomizedInvariants) {
  rng random(5);
  decision_cache cache(32);
  std::map<std::tuple<peer_id, ilp::service_id, ilp::connection_id>, decision> model;

  for (int op = 0; op < 5000; ++op) {
    const cache_key k = key_of(random.below(100));
    const auto mk = std::make_tuple(k.l3_src, k.service, k.connection);
    switch (random.below(3)) {
      case 0: {
        decision d = decision::forward_to(random.below(1000));
        cache.insert(k, d);
        model[mk] = d;
        break;
      }
      case 1: {
        const auto got = cache.lookup(k);
        if (got) {
          // Anything the cache returns must match the latest insert.
          ASSERT_TRUE(model.count(mk));
          EXPECT_EQ(*got, model[mk]);
        }
        break;
      }
      case 2:
        cache.erase(k);
        model.erase(mk);
        break;
    }
    ASSERT_LE(cache.size(), 32u);
  }
}

// Property: arbitrary eviction is always safe — after filling far past
// capacity, every lookup either misses (fall back to slow path) or
// returns the correct decision.
TEST(DecisionCache, EvictionNeverCorrupts) {
  decision_cache cache(8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.insert(key_of(i), decision::forward_to(i));
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto d = cache.lookup(key_of(i));
    if (d) {
      EXPECT_EQ(d->next_hops, std::vector<peer_id>{i});
    }
  }
}

// ---- per-entry TTL (DESIGN.md §10) ------------------------------------

TEST(DecisionCache, TtlEntryExpiresOnLookup) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision d = decision::deliver();
  d.ttl = 10ms;
  cache.insert({1, 2, 3}, d);
  clk.advance(9ms);
  EXPECT_TRUE(cache.lookup({1, 2, 3}).has_value());
  clk.advance(2ms);
  EXPECT_FALSE(cache.lookup({1, 2, 3}).has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entry is erased, not just hidden
}

TEST(DecisionCache, ZeroTtlMeansNoExpiry) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  cache.insert({1, 2, 3}, decision::deliver());  // ttl = 0
  clk.advance(std::chrono::hours(24));
  EXPECT_TRUE(cache.lookup({1, 2, 3}).has_value());
  EXPECT_EQ(cache.stats().expired, 0u);
}

TEST(DecisionCache, TtlIgnoredWithoutClock) {
  using namespace std::chrono_literals;
  decision_cache cache(16);
  decision d = decision::deliver();
  d.ttl = 1ns;
  cache.insert({1, 2, 3}, d);
  EXPECT_TRUE(cache.lookup({1, 2, 3}).has_value());
}

TEST(DecisionCache, ContainsAndHitCountTreatExpiredAsAbsent) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision d = decision::deliver();
  d.ttl = 5ms;
  cache.insert({1, 2, 3}, d);
  cache.lookup({1, 2, 3});
  clk.advance(6ms);
  EXPECT_FALSE(cache.contains({1, 2, 3}));
  EXPECT_EQ(cache.hit_count({1, 2, 3}), 0u);
}

TEST(DecisionCache, PurgeExpiredSweeps) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision short_lived = decision::deliver();
  short_lived.ttl = 5ms;
  decision long_lived = decision::deliver();
  long_lived.ttl = 50ms;
  cache.insert({1, 1, 1}, short_lived);
  cache.insert({2, 2, 2}, short_lived);
  cache.insert({3, 3, 3}, long_lived);
  cache.insert({4, 4, 4}, decision::deliver());
  clk.advance(10ms);
  EXPECT_EQ(cache.purge_expired(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().expired, 2u);
  EXPECT_TRUE(cache.contains({3, 3, 3}));
  EXPECT_TRUE(cache.contains({4, 4, 4}));
}

TEST(DecisionCache, ReinsertRefreshesTtl) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision d = decision::deliver();
  d.ttl = 10ms;
  cache.insert({1, 2, 3}, d);
  clk.advance(8ms);
  cache.insert({1, 2, 3}, d);  // refresh
  clk.advance(8ms);
  EXPECT_TRUE(cache.lookup({1, 2, 3}).has_value());  // 16ms total, 8ms since refresh
}

// ---- snapshot / restore_warm (checkpointed failover) -------------------

TEST(DecisionCache, SnapshotRestoreRoundTrip) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  cache.insert({1, 2, 3}, decision::forward_to(42));
  cache.insert({4, 5, 6}, decision::forward_all({7, 8}));
  cache.insert({7, 8, 9}, decision::drop_packet());
  cache.lookup({1, 2, 3});
  cache.lookup({1, 2, 3});

  const bytes snap = cache.snapshot(clk.now());

  decision_cache standby(16);
  standby.set_clock(&clk);
  EXPECT_EQ(standby.restore_warm(snap, clk.now()), 3u);
  EXPECT_EQ(standby.size(), 3u);
  EXPECT_EQ(standby.hit_count({1, 2, 3}), 2u);
  const auto d = standby.lookup({4, 5, 6});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, decision::verdict::forward);
  EXPECT_EQ(d->next_hops, (std::vector<peer_id>{7, 8}));
  EXPECT_EQ(standby.lookup({7, 8, 9})->kind, decision::verdict::drop);
}

TEST(DecisionCache, SnapshotCarriesRemainingTtl) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision d = decision::deliver();
  d.ttl = 20ms;
  cache.insert({1, 2, 3}, d);
  clk.advance(15ms);  // 5ms of life left

  const bytes snap = cache.snapshot(clk.now());
  decision_cache standby(16);
  standby.set_clock(&clk);
  standby.restore_warm(snap, clk.now());
  EXPECT_TRUE(standby.lookup({1, 2, 3}).has_value());
  clk.advance(6ms);  // past the remaining 5ms
  EXPECT_FALSE(standby.lookup({1, 2, 3}).has_value());
}

TEST(DecisionCache, SnapshotSkipsExpiredEntries) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  decision d = decision::deliver();
  d.ttl = 5ms;
  cache.insert({1, 1, 1}, d);
  cache.insert({2, 2, 2}, decision::deliver());
  clk.advance(10ms);

  const bytes snap = cache.snapshot(clk.now());
  decision_cache standby(16);
  standby.set_clock(&clk);
  EXPECT_EQ(standby.restore_warm(snap, clk.now()), 1u);
  EXPECT_TRUE(standby.contains({2, 2, 2}));
  EXPECT_FALSE(standby.contains({1, 1, 1}));
}

TEST(DecisionCache, RestoreIntoSmallerCacheKeepsHotEntries) {
  using namespace std::chrono_literals;
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  for (std::uint64_t i = 0; i < 8; ++i) cache.insert(key_of(i), decision::deliver());
  const bytes snap = cache.snapshot(clk.now());

  // Restored cache enforces its own (smaller) capacity; the warm entries
  // arrive LRU-first so the hottest survive.
  decision_cache standby(4);
  standby.set_clock(&clk);
  standby.restore_warm(snap, clk.now());
  EXPECT_EQ(standby.size(), 4u);
  // The most recently used originals (highest i) are the residents.
  EXPECT_TRUE(standby.contains(key_of(7)));
  EXPECT_TRUE(standby.contains(key_of(4)));
  EXPECT_FALSE(standby.contains(key_of(0)));
}

TEST(DecisionCache, RestoreRejectsGarbage) {
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  EXPECT_THROW(cache.restore_warm(to_bytes("not a snapshot"), clk.now()), serial_error);
}

}  // namespace
}  // namespace interedge::core
