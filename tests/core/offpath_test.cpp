#include "core/offpath.h"

#include <gtest/gtest.h>

namespace interedge::core {
namespace {

TEST(KvStore, PutGetErase) {
  kv_store kv;
  kv.put("a", to_bytes("1"));
  EXPECT_EQ(kv.get("a"), to_bytes("1"));
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.get("a").has_value());
  EXPECT_FALSE(kv.erase("a"));
}

TEST(KvStore, OverwriteReplaces) {
  kv_store kv;
  kv.put("k", to_bytes("old"));
  kv.put("k", to_bytes("new"));
  EXPECT_EQ(kv.get("k"), to_bytes("new"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, PrefixScanOrdered) {
  kv_store kv;
  kv.put("group/b", {});
  kv.put("group/a", {});
  kv.put("other/x", {});
  kv.put("group/c", {});
  const auto keys = kv.keys_with_prefix("group/");
  EXPECT_EQ(keys, (std::vector<std::string>{"group/a", "group/b", "group/c"}));
}

TEST(KvStore, PrefixScanEmptyResult) {
  kv_store kv;
  kv.put("a", {});
  EXPECT_TRUE(kv.keys_with_prefix("zzz").empty());
}

TEST(KvStore, SnapshotRestoreRoundTrip) {
  kv_store kv;
  kv.put("x", to_bytes("payload-1"));
  kv.put("y", bytes(1000, 0xee));
  kv.put("", to_bytes("empty-key-ok"));
  const bytes snap = kv.snapshot();

  kv_store other;
  other.put("stale", to_bytes("should vanish"));
  other.restore(snap);
  EXPECT_EQ(other.size(), 3u);
  EXPECT_EQ(other.get("x"), to_bytes("payload-1"));
  EXPECT_EQ(other.get("y")->size(), 1000u);
  EXPECT_FALSE(other.contains("stale"));
}

TEST(KvStore, EmptySnapshotRestores) {
  kv_store kv;
  const bytes snap = kv.snapshot();
  kv_store other;
  other.put("a", {});
  other.restore(snap);
  EXPECT_EQ(other.size(), 0u);
}

TEST(KvStore, CountersTrackAccess) {
  kv_store kv;
  kv.put("a", {});
  kv.get("a");
  kv.get("missing");
  EXPECT_EQ(kv.writes(), 1u);
  EXPECT_EQ(kv.reads(), 2u);
}

}  // namespace
}  // namespace interedge::core
