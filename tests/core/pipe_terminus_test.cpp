#include "core/pipe_terminus.h"

#include <gtest/gtest.h>

namespace interedge::core {
namespace {

struct forwarded_packet {
  peer_id to;
  ilp::ilp_header header;
  bytes payload;
};

class terminus_fixture : public ::testing::Test {
 protected:
  terminus_fixture()
      : cache_(16),
        channel_([this](slowpath_request req) { return handler_(std::move(req)); }),
        terminus_(cache_, channel_, [this](peer_id to, const ilp::ilp_header& h,
                                           const_byte_span p) {
          forwarded_.push_back({to, h, bytes(p.begin(), p.end())});
        }) {
    // Default handler: forward to hop 50 and install a cache entry.
    handler_ = [](slowpath_request req) {
      const auto header = ilp::ilp_header::decode(req.header_bytes);
      slowpath_response resp;
      resp.token = req.token;
      resp.verdict = decision::forward_to(50);
      resp.cache_inserts.emplace_back(cache_key{req.l3_src, header.service, header.connection},
                                      decision::forward_to(50));
      return resp;
    };
  }

  packet make_packet(ilp::connection_id conn = 1, std::uint16_t flags = 0) {
    packet p;
    p.l3_src = 7;
    p.header.service = ilp::svc::delivery;
    p.header.connection = conn;
    p.header.flags = flags;
    p.payload = to_bytes("payload");
    return p;
  }

  decision_cache cache_;
  slowpath_handler handler_;
  inline_channel channel_;
  pipe_terminus terminus_;
  std::vector<forwarded_packet> forwarded_;
};

TEST_F(terminus_fixture, FirstPacketSlowPathSecondFastPath) {
  terminus_.handle(make_packet());
  EXPECT_EQ(terminus_.stats().slow_path, 1u);
  EXPECT_EQ(terminus_.stats().fast_path, 0u);

  terminus_.handle(make_packet());
  EXPECT_EQ(terminus_.stats().slow_path, 1u);
  EXPECT_EQ(terminus_.stats().fast_path, 1u);

  ASSERT_EQ(forwarded_.size(), 2u);
  EXPECT_EQ(forwarded_[0].to, 50u);
  EXPECT_EQ(forwarded_[1].to, 50u);
}

TEST_F(terminus_fixture, PayloadForwardedByteIdentical) {
  terminus_.handle(make_packet());
  ASSERT_EQ(forwarded_.size(), 1u);
  EXPECT_EQ(forwarded_[0].payload, to_bytes("payload"));
  EXPECT_EQ(forwarded_[0].header.connection, 1u);
}

TEST_F(terminus_fixture, ControlPacketsAlwaysSlowPath) {
  terminus_.handle(make_packet(1));
  terminus_.handle(make_packet(1, ilp::kFlagControl));  // would hit cache otherwise
  EXPECT_EQ(terminus_.stats().slow_path, 2u);
}

TEST_F(terminus_fixture, DropVerdictCounted) {
  handler_ = [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::drop_packet();
    return resp;
  };
  terminus_.handle(make_packet());
  EXPECT_EQ(terminus_.stats().dropped, 1u);
  EXPECT_TRUE(forwarded_.empty());
}

TEST_F(terminus_fixture, DeliverVerdictCounted) {
  handler_ = [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::deliver();
    return resp;
  };
  terminus_.handle(make_packet());
  EXPECT_EQ(terminus_.stats().delivered, 1u);
}

TEST_F(terminus_fixture, MultiDestinationForwardsCopies) {
  // "the decision can specify multiple forwarding destinations, in which
  // case a copy of the packet is forwarded to each destination" (§4)
  handler_ = [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::forward_all({10, 11, 12});
    return resp;
  };
  terminus_.handle(make_packet());
  ASSERT_EQ(forwarded_.size(), 3u);
  EXPECT_EQ(forwarded_[0].to, 10u);
  EXPECT_EQ(forwarded_[2].to, 12u);
  EXPECT_EQ(terminus_.stats().forwarded, 3u);
}

TEST_F(terminus_fixture, ServiceSendsEmittedBeforeVerdict) {
  handler_ = [](slowpath_request req) {
    slowpath_response resp;
    resp.token = req.token;
    resp.verdict = decision::deliver();
    outbound o;
    o.to = 99;
    o.header.service = 5;
    o.payload = to_bytes("control-reply");
    resp.sends.push_back(std::move(o));
    return resp;
  };
  terminus_.handle(make_packet());
  ASSERT_EQ(forwarded_.size(), 1u);
  EXPECT_EQ(forwarded_[0].to, 99u);
  EXPECT_EQ(forwarded_[0].payload, to_bytes("control-reply"));
}

TEST_F(terminus_fixture, DifferentConnectionsDifferentCacheEntries) {
  terminus_.handle(make_packet(1));
  terminus_.handle(make_packet(2));
  EXPECT_EQ(terminus_.stats().slow_path, 2u);
  EXPECT_EQ(cache_.size(), 2u);
}

TEST_F(terminus_fixture, EvictedEntryFallsBackToSlowPath) {
  // Fill the cache far past capacity; earlier connections get evicted and
  // their packets must take the slow path again — correctness preserved.
  for (ilp::connection_id c = 0; c < 100; ++c) terminus_.handle(make_packet(c));
  const auto slow_before = terminus_.stats().slow_path;
  terminus_.handle(make_packet(0));  // long evicted
  EXPECT_EQ(terminus_.stats().slow_path, slow_before + 1);
  ASSERT_EQ(forwarded_.size(), 101u);  // every packet still forwarded
}

TEST_F(terminus_fixture, StatsReceivedCountsAll) {
  for (int i = 0; i < 5; ++i) terminus_.handle(make_packet());
  EXPECT_EQ(terminus_.stats().received, 5u);
}

TEST_F(terminus_fixture, BatchSameFlowPaysOneCacheLookup) {
  terminus_.handle(make_packet());  // install the cache entry
  const auto hits_before = cache_.stats().hits;

  std::vector<packet> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(make_packet());
  terminus_.handle_batch(batch);

  // One lookup for the run; the other 7 packets ride the memo.
  EXPECT_EQ(cache_.stats().hits, hits_before + 1);
  EXPECT_EQ(terminus_.stats().fast_path, 8u);
  EXPECT_EQ(forwarded_.size(), 9u);  // every packet still forwarded
}

TEST_F(terminus_fixture, BatchColdFlowStillResolvedViaSlowPath) {
  // A cold batch defers the slow-path drain to the end, so every packet of
  // the burst goes to the service module — and every one is still forwarded.
  std::vector<packet> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(make_packet());
  terminus_.handle_batch(batch);
  EXPECT_EQ(terminus_.stats().slow_path, 4u);
  EXPECT_EQ(forwarded_.size(), 4u);
  // The drain installed the decision: the next batch is pure fast path.
  std::vector<packet> batch2;
  for (int i = 0; i < 4; ++i) batch2.push_back(make_packet());
  terminus_.handle_batch(batch2);
  EXPECT_EQ(terminus_.stats().slow_path, 4u);
  EXPECT_EQ(terminus_.stats().fast_path, 4u);
}

TEST_F(terminus_fixture, BatchMixedWarmFlowsAllFastPath) {
  terminus_.handle(make_packet(1));
  terminus_.handle(make_packet(2));
  std::vector<packet> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back(make_packet(static_cast<ilp::connection_id>(1 + i % 2)));
  }
  terminus_.handle_batch(batch);
  EXPECT_EQ(terminus_.stats().fast_path, 6u);
  EXPECT_EQ(forwarded_.size(), 2u + 6u);
}

TEST_F(terminus_fixture, BatchControlPacketsBypassMemo) {
  terminus_.handle(make_packet(1));  // warm the flow
  std::vector<packet> batch;
  batch.push_back(make_packet(1));                      // cache hit, memo set
  batch.push_back(make_packet(1));                      // memo hit
  batch.push_back(make_packet(1, ilp::kFlagControl));   // must not use memo
  terminus_.handle_batch(batch);
  EXPECT_EQ(terminus_.stats().slow_path, 2u);  // initial cold packet + control
  EXPECT_EQ(terminus_.stats().fast_path, 2u);
}

TEST_F(terminus_fixture, BatchMatchesPerPacketBehavior) {
  // The batched path must produce the same forwards in the same order as
  // handling each packet individually.
  std::vector<packet> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(make_packet(static_cast<ilp::connection_id>(i)));
  terminus_.handle_batch(batch);
  const auto batched = forwarded_;
  forwarded_.clear();

  for (int i = 0; i < 5; ++i) terminus_.handle(make_packet(static_cast<ilp::connection_id>(i)));
  ASSERT_EQ(forwarded_.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(forwarded_[i].to, batched[i].to);
    EXPECT_EQ(forwarded_[i].header.connection, batched[i].header.connection);
    EXPECT_EQ(forwarded_[i].payload, batched[i].payload);
  }
}

// ---- load shedding and deadlines (DESIGN.md §10) ------------------------

using namespace std::chrono_literals;

// Accepts every request but never responds — a wedged slow path.
class black_hole_channel final : public slowpath_channel {
 public:
  bool submit(slowpath_request req) override {
    accepted.push_back(std::move(req));
    return true;
  }
  std::optional<slowpath_response> poll() override { return std::nullopt; }
  std::vector<slowpath_request> accepted;
};

// Rejects every submit — a permanently full channel.
class full_channel final : public slowpath_channel {
 public:
  bool submit(slowpath_request) override {
    ++attempts;
    return false;
  }
  std::optional<slowpath_response> poll() override { return std::nullopt; }
  std::size_t attempts = 0;
};

class shed_fixture : public ::testing::Test {
 protected:
  shed_fixture()
      : cache_(64), terminus_(cache_, channel_, [this](peer_id, const ilp::ilp_header&,
                                                       const_byte_span) { ++forwards_; }) {}

  packet make_packet(ilp::connection_id conn, std::uint16_t flags = 0) {
    packet p;
    p.l3_src = 7;
    p.header.service = ilp::svc::delivery;
    p.header.connection = conn;
    p.header.flags = flags;
    p.payload = to_bytes("x");
    return p;
  }

  manual_clock clk_;
  decision_cache cache_;
  black_hole_channel channel_;
  pipe_terminus terminus_;
  int forwards_ = 0;
};

TEST_F(shed_fixture, ShedsPastHighWaterInsteadOfBlocking) {
  terminus_.set_slowpath_policy({.clk = &clk_, .high_water = 4, .shed_ttl = 50ms});
  cache_.set_clock(&clk_);
  for (ilp::connection_id c = 0; c < 10; ++c) terminus_.handle(make_packet(c));
  // 4 in flight; the other 6 shed to the default (drop) verdict.
  EXPECT_EQ(terminus_.in_flight(), 4u);
  EXPECT_EQ(terminus_.stats().shed, 6u);
  EXPECT_EQ(terminus_.stats().dropped, 6u);  // fail closed
  EXPECT_EQ(channel_.accepted.size(), 4u);
}

TEST_F(shed_fixture, ShedVerdictIsTemporaryCacheEntry) {
  terminus_.set_slowpath_policy({.clk = &clk_, .high_water = 1, .shed_ttl = 50ms});
  cache_.set_clock(&clk_);
  terminus_.handle(make_packet(1));  // occupies the slow path
  terminus_.handle(make_packet(2));  // shed, installs TTL'd drop
  terminus_.handle(make_packet(2));  // fast-path hit on the shed entry
  EXPECT_EQ(terminus_.stats().shed, 1u);
  EXPECT_EQ(terminus_.stats().fast_path, 1u);

  // After the TTL the flow returns to the slow path (which has recovered
  // here only in the sense that the entry is gone — it sheds again).
  clk_.advance(60ms);
  terminus_.handle(make_packet(2));
  EXPECT_EQ(terminus_.stats().shed, 2u);
}

TEST_F(shed_fixture, ShedVerdictPerServicePolicyCanPass) {
  terminus_.set_slowpath_policy({.clk = &clk_, .high_water = 1, .shed_ttl = 50ms});
  cache_.set_clock(&clk_);
  terminus_.set_shed_verdict(ilp::svc::delivery, decision::forward_to(50));
  terminus_.handle(make_packet(1));  // in flight
  terminus_.handle(make_packet(2));  // shed — but delivery sheds to pass
  EXPECT_EQ(terminus_.stats().shed, 1u);
  EXPECT_EQ(forwards_, 1);
  EXPECT_EQ(terminus_.stats().dropped, 0u);
}

TEST_F(shed_fixture, ControlPacketsNeverShed) {
  terminus_.set_slowpath_policy({.clk = &clk_, .high_water = 1, .shed_ttl = 50ms});
  terminus_.handle(make_packet(1));
  terminus_.handle(make_packet(2, ilp::kFlagControl));
  EXPECT_EQ(terminus_.stats().shed, 0u);
  EXPECT_EQ(channel_.accepted.size(), 2u);
}

TEST_F(shed_fixture, BatchShedsAndMemoAbsorbsBurst) {
  terminus_.set_slowpath_policy({.clk = &clk_, .high_water = 1, .shed_ttl = 50ms});
  cache_.set_clock(&clk_);
  std::vector<packet> batch;
  batch.push_back(make_packet(1));                       // takes the slow-path slot
  for (int i = 0; i < 5; ++i) batch.push_back(make_packet(2));  // one shed + memo hits
  terminus_.handle_batch(batch);
  EXPECT_EQ(terminus_.stats().shed, 1u);
  EXPECT_EQ(terminus_.stats().fast_path, 4u);  // rest of the burst rides the memo
}

TEST_F(shed_fixture, DeadlineStampedIntoRequests) {
  terminus_.set_slowpath_policy({.clk = &clk_, .deadline = 5ms});
  clk_.advance(100ms);
  terminus_.handle(make_packet(1));
  ASSERT_EQ(channel_.accepted.size(), 1u);
  EXPECT_EQ(channel_.accepted[0].deadline_ns,
            static_cast<std::uint64_t>((clk_.now() + 5ms).time_since_epoch().count()));
}

TEST_F(shed_fixture, NoPolicyMeansNoDeadlineNoShedding) {
  for (ilp::connection_id c = 0; c < 100; ++c) terminus_.handle(make_packet(c));
  EXPECT_EQ(terminus_.stats().shed, 0u);
  EXPECT_EQ(terminus_.in_flight(), 100u);
  EXPECT_EQ(channel_.accepted[0].deadline_ns, 0u);
}

TEST(ShedBoundedSubmit, FullChannelShedsAfterRetryBudget) {
  manual_clock clk;
  decision_cache cache(16);
  cache.set_clock(&clk);
  full_channel channel;
  int forwards = 0;
  pipe_terminus terminus(cache, channel,
                         [&](peer_id, const ilp::ilp_header&, const_byte_span) { ++forwards; });
  terminus.set_slowpath_policy({.clk = &clk, .high_water = 8, .submit_retries = 5});

  packet p;
  p.l3_src = 7;
  p.header.service = ilp::svc::delivery;
  p.header.connection = 1;
  terminus.handle(p);  // channel never accepts: retries then sheds
  EXPECT_EQ(channel.attempts, 5u);
  EXPECT_EQ(terminus.stats().shed, 1u);
  EXPECT_EQ(terminus.stats().backpressure, 5u);
  EXPECT_EQ(terminus.in_flight(), 0u);
}

}  // namespace
}  // namespace interedge::core
