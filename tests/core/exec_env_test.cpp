#include "core/exec_env.h"

#include <gtest/gtest.h>

#include "core/test_modules.h"

namespace interedge::core {
namespace {

// Bare-bones node_services for exercising the execution environment
// without a full service node.
class fake_node final : public node_services {
 public:
  peer_id node_id() const override { return 100; }
  std::uint16_t edomain() const override { return 7; }
  const clock& node_clock() const override { return clk_; }
  void send(peer_id to, const ilp::ilp_header& h, bytes payload) override {
    sent.push_back({to, h, std::move(payload)});
  }
  void schedule(nanoseconds delay, std::function<void()> fn) override {
    timers.emplace_back(delay, std::move(fn));
  }
  std::optional<peer_id> next_hop(edge_addr dest) const override { return dest; }
  decision_cache& cache() override { return cache_; }
  metrics_registry& metrics() override { return metrics_; }

  manual_clock clk_;
  decision_cache cache_{64};
  metrics_registry metrics_;
  std::vector<outbound> sent;
  std::vector<std::pair<nanoseconds, std::function<void()>>> timers;
};

packet make_packet(ilp::service_id service, edge_addr dest = 5) {
  packet p;
  p.l3_src = 1;
  p.header.service = service;
  p.header.connection = 10;
  p.header.set_meta_u64(ilp::meta_key::dest_addr, dest);
  p.payload = to_bytes("data");
  return p;
}

TEST(ExecEnv, DispatchRoutesToModule) {
  fake_node node;
  exec_env env(node);
  auto module = std::make_unique<testing::forwarder_module>();
  auto* raw = module.get();
  env.deploy(std::move(module));

  const module_result r = env.dispatch(make_packet(ilp::svc::delivery));
  EXPECT_EQ(r.verdict, decision::forward_to(5));
  EXPECT_EQ(raw->packets_seen, 1);
  EXPECT_EQ(env.dispatches(), 1u);
}

TEST(ExecEnv, UnknownServiceDropped) {
  fake_node node;
  exec_env env(node);
  const module_result r = env.dispatch(make_packet(999));
  EXPECT_EQ(r.verdict.kind, decision::verdict::drop);
  EXPECT_EQ(env.unknown_service_drops(), 1u);
}

TEST(ExecEnv, DeployedListsModules) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<testing::forwarder_module>());
  env.deploy(std::make_unique<testing::sink_module>());
  const auto ids = env.deployed();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_TRUE(env.has_module(ilp::svc::delivery));
  EXPECT_TRUE(env.has_module(ilp::svc::null_service));
  EXPECT_FALSE(env.has_module(999));
}

TEST(ExecEnv, PerModuleStorageIsolated) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<testing::sink_module>());
  env.deploy(std::make_unique<testing::forwarder_module>());

  env.dispatch(make_packet(ilp::svc::null_service));
  // The sink stored a message; the forwarder's storage is untouched —
  // verified indirectly via checkpoint contents below.
  const bytes snap = env.checkpoint();
  EXPECT_GT(snap.size(), 0u);
}

TEST(ExecEnv, CheckpointRestoreRoundTrip) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<testing::sink_module>());
  env.dispatch(make_packet(ilp::svc::null_service));
  env.dispatch(make_packet(ilp::svc::null_service));
  const bytes snap = env.checkpoint();

  // Fresh environment (SN replacement after failure).
  fake_node node2;
  exec_env env2(node2);
  auto replacement = std::make_unique<testing::sink_module>();
  auto* raw = replacement.get();
  env2.deploy(std::move(replacement));
  env2.restore(snap);
  EXPECT_EQ(raw->counter(), 2);
  // Storage content restored too: the next message lands at index 2.
  env2.dispatch(make_packet(ilp::svc::null_service));
  EXPECT_EQ(raw->counter(), 3);
}

TEST(ExecEnv, RestoreSkipsUndeployedModules) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<testing::sink_module>());
  env.dispatch(make_packet(ilp::svc::null_service));
  const bytes snap = env.checkpoint();

  fake_node node2;
  exec_env env2(node2);  // nothing deployed
  EXPECT_NO_THROW(env2.restore(snap));
}

TEST(ExecEnv, ConfigReachesModuleContext) {
  // Configuration is standardized per service (§5); modules read it via
  // their context.
  class config_probe final : public service_module {
   public:
    ilp::service_id id() const override { return 50; }
    std::string_view name() const override { return "config-probe"; }
    module_result on_packet(service_context& ctx, const packet&) override {
      seen = ctx.config("mode", "default");
      return module_result::deliver();
    }
    std::string seen;
  };

  fake_node node;
  exec_env env(node);
  auto probe = std::make_unique<config_probe>();
  auto* raw = probe.get();
  env.deploy(std::move(probe));

  env.dispatch(make_packet(50));
  EXPECT_EQ(raw->seen, "default");
  env.set_config(50, "mode", "strict");
  env.dispatch(make_packet(50));
  EXPECT_EQ(raw->seen, "strict");
}

// ---- failure containment and transient retry (DESIGN.md §10) -----------

// Fails with transient_error the first `failures` calls, then succeeds.
class flaky_module final : public service_module {
 public:
  explicit flaky_module(int failures) : failures_(failures) {}
  ilp::service_id id() const override { return 70; }
  std::string_view name() const override { return "test-flaky"; }

  module_result on_packet(service_context&, const packet&) override {
    ++calls;
    if (calls <= failures_) throw transient_error("backend warming up");
    return module_result::deliver();
  }

  int calls = 0;

 private:
  int failures_;
};

// Always throws a non-transient error.
class broken_module final : public service_module {
 public:
  ilp::service_id id() const override { return 71; }
  std::string_view name() const override { return "test-broken"; }
  module_result on_packet(service_context&, const packet&) override {
    throw std::runtime_error("unrecoverable");
  }
};

TEST(ExecEnv, TransientErrorRetriedToSuccess) {
  fake_node node;
  exec_env env(node);
  auto flaky = std::make_unique<flaky_module>(2);
  auto* raw = flaky.get();
  env.deploy(std::move(flaky));

  const module_result r = env.dispatch(make_packet(70));
  EXPECT_EQ(r.verdict.kind, decision::verdict::deliver_local);
  EXPECT_EQ(raw->calls, 3);  // 2 failures + the success
  EXPECT_EQ(env.retries_attempted(), 2u);
  EXPECT_EQ(env.retries_exhausted(), 0u);
}

TEST(ExecEnv, TransientRetriesExhaustedDrops) {
  fake_node node;
  exec_env env(node);
  auto flaky = std::make_unique<flaky_module>(100);  // never recovers
  auto* raw = flaky.get();
  env.deploy(std::move(flaky));
  env.set_transient_retry_limit(3);

  const module_result r = env.dispatch(make_packet(70));
  EXPECT_EQ(r.verdict.kind, decision::verdict::drop);
  EXPECT_EQ(raw->calls, 4);  // initial attempt + 3 retries
  EXPECT_EQ(env.retries_attempted(), 3u);
  EXPECT_EQ(env.retries_exhausted(), 1u);
}

TEST(ExecEnv, NonTransientErrorContainedAsDrop) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<broken_module>());

  // A throwing module must not take the node down — the packet drops and
  // the environment keeps dispatching.
  const module_result r = env.dispatch(make_packet(71));
  EXPECT_EQ(r.verdict.kind, decision::verdict::drop);
  EXPECT_EQ(env.module_errors(), 1u);
  EXPECT_EQ(env.retries_attempted(), 0u);  // no retry for non-transient

  env.deploy(std::make_unique<testing::sink_module>());
  const module_result ok = env.dispatch(make_packet(ilp::svc::null_service));
  EXPECT_EQ(ok.verdict.kind, decision::verdict::deliver_local);
}

TEST(ExecEnv, ModuleSendsGoThroughNode) {
  fake_node node;
  exec_env env(node);
  env.deploy(std::make_unique<testing::echo_control_module>(60));

  packet p = make_packet(60);
  p.header.flags = ilp::kFlagControl;
  env.dispatch(p);
  ASSERT_EQ(node.sent.size(), 1u);
  EXPECT_EQ(node.sent[0].to, p.l3_src);
  EXPECT_EQ(node.sent[0].payload, to_bytes("data"));
}

}  // namespace
}  // namespace interedge::core
