// The three slow-path transports must be behaviorally identical; the
// parameterized suite runs the same scenarios over each.
#include "core/channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace interedge::core {
namespace {

slowpath_response echo_handler(slowpath_request req) {
  slowpath_response resp;
  resp.token = req.token;
  resp.verdict = decision::forward_to(req.l3_src + 1);
  resp.cache_inserts.emplace_back(cache_key{req.l3_src, 1, 2}, decision::deliver());
  outbound o;
  o.to = 42;
  o.header.service = 7;
  o.payload = req.payload;
  resp.sends.push_back(std::move(o));
  return resp;
}

enum class channel_kind { inline_call, ring, ipc };

std::unique_ptr<slowpath_channel> make_channel(channel_kind kind, slowpath_handler handler) {
  switch (kind) {
    case channel_kind::inline_call:
      return std::make_unique<inline_channel>(std::move(handler));
    case channel_kind::ring:
      return std::make_unique<ring_channel>(std::move(handler));
    case channel_kind::ipc:
      return std::make_unique<ipc_channel>(std::move(handler));
  }
  return nullptr;
}

slowpath_response poll_blocking(slowpath_channel& ch) {
  for (int spins = 0; spins < 1000000; ++spins) {
    if (auto r = ch.poll()) return std::move(*r);
    std::this_thread::yield();
  }
  ADD_FAILURE() << "channel never produced a response";
  return {};
}

class ChannelSuite : public ::testing::TestWithParam<channel_kind> {};

TEST_P(ChannelSuite, RoundTripPreservesEverything) {
  auto ch = make_channel(GetParam(), echo_handler);
  slowpath_request req;
  req.token = 77;
  req.l3_src = 5;
  req.header_bytes = to_bytes("hdr");
  req.payload = to_bytes("payload-data");
  ASSERT_TRUE(ch->submit(req));

  const slowpath_response resp = poll_blocking(*ch);
  EXPECT_EQ(resp.token, 77u);
  EXPECT_EQ(resp.verdict, decision::forward_to(6));
  ASSERT_EQ(resp.cache_inserts.size(), 1u);
  EXPECT_EQ(resp.cache_inserts[0].first, (cache_key{5, 1, 2}));
  ASSERT_EQ(resp.sends.size(), 1u);
  EXPECT_EQ(resp.sends[0].to, 42u);
  EXPECT_EQ(resp.sends[0].header.service, 7u);
  EXPECT_EQ(resp.sends[0].payload, to_bytes("payload-data"));
}

TEST_P(ChannelSuite, ManyOutstandingRequestsAllComplete) {
  auto ch = make_channel(GetParam(), echo_handler);
  constexpr int kCount = 200;
  int submitted = 0;
  std::set<std::uint64_t> seen;
  while (static_cast<int>(seen.size()) < kCount) {
    while (submitted < kCount) {
      slowpath_request req;
      req.token = static_cast<std::uint64_t>(submitted);
      req.l3_src = 1;
      if (!ch->submit(std::move(req))) break;  // bounded channel full
      ++submitted;
    }
    if (auto r = ch->poll()) {
      EXPECT_TRUE(seen.insert(r->token).second) << "duplicate token";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kCount));
}

TEST_P(ChannelSuite, EmptyPayloadAndFields) {
  auto ch = make_channel(GetParam(), [](slowpath_request req) {
    slowpath_response r;
    r.token = req.token;
    r.verdict = decision::drop_packet();
    return r;
  });
  slowpath_request req;
  req.token = 1;
  ASSERT_TRUE(ch->submit(req));
  const slowpath_response resp = poll_blocking(*ch);
  EXPECT_EQ(resp.verdict.kind, decision::verdict::drop);
  EXPECT_TRUE(resp.cache_inserts.empty());
  EXPECT_TRUE(resp.sends.empty());
}

TEST_P(ChannelSuite, LargePayloadSurvivesTransport) {
  auto ch = make_channel(GetParam(), echo_handler);
  slowpath_request req;
  req.token = 9;
  req.payload = bytes(64 * 1024, 0xcd);
  ASSERT_TRUE(ch->submit(req));
  const slowpath_response resp = poll_blocking(*ch);
  ASSERT_EQ(resp.sends.size(), 1u);
  EXPECT_EQ(resp.sends[0].payload.size(), 64u * 1024);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ChannelSuite,
                         ::testing::Values(channel_kind::inline_call, channel_kind::ring,
                                           channel_kind::ipc),
                         [](const auto& info) {
                           switch (info.param) {
                             case channel_kind::inline_call: return "Inline";
                             case channel_kind::ring: return "Ring";
                             case channel_kind::ipc: return "Ipc";
                           }
                           return "?";
                         });

TEST(RequestCodec, RoundTrip) {
  slowpath_request req;
  req.token = 0xabcdef;
  req.l3_src = 17;
  req.header_bytes = to_bytes("encoded-header");
  req.payload = to_bytes("data");
  const slowpath_request decoded = slowpath_request::decode(req.encode());
  EXPECT_EQ(decoded.token, req.token);
  EXPECT_EQ(decoded.l3_src, req.l3_src);
  EXPECT_EQ(decoded.header_bytes, req.header_bytes);
  EXPECT_EQ(decoded.payload, req.payload);
}

TEST(ResponseCodec, RoundTripAllVerdicts) {
  for (auto kind : {decision::verdict::forward, decision::verdict::deliver_local,
                    decision::verdict::drop}) {
    slowpath_response resp;
    resp.token = 3;
    resp.verdict.kind = kind;
    if (kind == decision::verdict::forward) resp.verdict.next_hops = {1, 2, 3};
    const slowpath_response decoded = slowpath_response::decode(resp.encode());
    EXPECT_EQ(decoded.verdict, resp.verdict);
  }
}

TEST(RequestCodec, DeadlineRoundTrips) {
  slowpath_request req;
  req.token = 1;
  req.deadline_ns = 123456789;
  EXPECT_EQ(slowpath_request::decode(req.encode()).deadline_ns, 123456789u);
}

TEST(DecisionCodec, TtlRoundTrips) {
  using namespace std::chrono_literals;
  slowpath_response resp;
  resp.token = 1;
  decision d = decision::forward_to(9);
  d.ttl = 50ms;
  resp.cache_inserts.emplace_back(cache_key{1, 2, 3}, d);
  const slowpath_response decoded = slowpath_response::decode(resp.encode());
  ASSERT_EQ(decoded.cache_inserts.size(), 1u);
  EXPECT_EQ(decoded.cache_inserts[0].second.ttl, 50ms);
  EXPECT_EQ(decoded.cache_inserts[0].second, d);
}

TEST(SlowpathHub, ExpiresOverdueRequestsWithoutInvokingHandler) {
  manual_clock clk;
  int handled = 0;
  slowpath_hub hub(
      [&handled](slowpath_request req) {
        ++handled;
        slowpath_response r;
        r.token = req.token;
        r.verdict = decision::deliver();
        return r;
      },
      /*shards=*/1);
  hub.set_deadline_clock(&clk);

  clk.advance(std::chrono::milliseconds(100));
  slowpath_request overdue;
  overdue.token = slowpath_hub::token_seed(0) + 1;
  overdue.deadline_ns = 1;  // long past
  ASSERT_TRUE(hub.endpoint(0).submit(overdue));

  slowpath_request fresh;
  fresh.token = slowpath_hub::token_seed(0) + 2;
  fresh.deadline_ns = static_cast<std::uint64_t>(
      (clk.now() + std::chrono::milliseconds(10)).time_since_epoch().count());
  ASSERT_TRUE(hub.endpoint(0).submit(fresh));

  EXPECT_EQ(hub.pump(), 2u);
  EXPECT_EQ(handled, 1);  // only the fresh one reached the handler
  EXPECT_EQ(hub.expired(), 1u);

  // Both tokens come back: the expired one as a synthesized drop, so the
  // submitting shard's in-flight window never leaks.
  std::set<std::uint64_t> tokens;
  decision::verdict expired_verdict{};
  while (auto r = hub.endpoint(0).poll()) {
    if (r->token == overdue.token) expired_verdict = r->verdict.kind;
    tokens.insert(r->token);
  }
  EXPECT_EQ(tokens.size(), 2u);
  EXPECT_EQ(expired_verdict, decision::verdict::drop);
}

TEST(SlowpathHub, NoClockMeansNoExpiry) {
  int handled = 0;
  slowpath_hub hub(
      [&handled](slowpath_request req) {
        ++handled;
        slowpath_response r;
        r.token = req.token;
        return r;
      },
      /*shards=*/1);
  slowpath_request req;
  req.token = slowpath_hub::token_seed(0) + 1;
  req.deadline_ns = 1;
  ASSERT_TRUE(hub.endpoint(0).submit(req));
  hub.pump();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(hub.expired(), 0u);
}

TEST(RingChannel, BoundedDepthRejectsWhenFull) {
  // A handler that blocks until released lets us fill the request ring.
  std::atomic<bool> release{false};
  ring_channel ch(
      [&release](slowpath_request req) {
        while (!release.load()) std::this_thread::yield();
        slowpath_response r;
        r.token = req.token;
        return r;
      },
      /*depth=*/4);

  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    slowpath_request req;
    req.token = static_cast<std::uint64_t>(i);
    if (!ch.submit(std::move(req))) break;
    ++accepted;
  }
  EXPECT_LT(accepted, 100);
  EXPECT_GE(accepted, 4);
  release.store(true);
  int drained = 0;
  while (drained < accepted) {
    if (ch.poll()) ++drained;
  }
}

}  // namespace
}  // namespace interedge::core
