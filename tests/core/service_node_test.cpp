// End-to-end service-node tests over the simulator: hosts (raw pipe
// managers) exchange packets through an SN running test service modules.
#include "core/service_node.h"

#include <gtest/gtest.h>

#include "core/test_modules.h"
#include "simnet/simulation.h"

namespace interedge::core {
namespace {

using sim::node_id;
using sim::simulation;

struct sim_host {
  node_id node = 0;
  std::unique_ptr<ilp::pipe_manager> mgr;
  std::vector<std::pair<ilp::ilp_header, bytes>> received;
};

std::unique_ptr<sim_host> make_host(simulation& net) {
  auto h = std::make_unique<sim_host>();
  h->node = net.add_node(nullptr);
  h->mgr = std::make_unique<ilp::pipe_manager>(
      h->node,
      [&net, node = h->node](peer_id peer, bytes d) {
        net.send(node, static_cast<node_id>(peer), std::move(d));
      },
      [raw = h.get()](peer_id, const ilp::ilp_header& hdr, bytes payload) {
        raw->received.emplace_back(hdr, std::move(payload));
      });
  net.set_handler(h->node, [raw = h.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return h;
}

std::unique_ptr<service_node> make_sn(simulation& net, const router* route,
                                      std::uint16_t edomain = 1) {
  const node_id node = net.add_node(nullptr);
  auto sn = std::make_unique<service_node>(
      sn_config{.id = node, .edomain = edomain}, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  return sn;
}

ilp::ilp_header delivery_header(edge_addr dest, ilp::connection_id conn = 1) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::dest_addr, dest);
  return h;
}

TEST(ServiceNode, HostToHostThroughSn) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("hi bob"));
  net.run();

  ASSERT_EQ(bob->received.size(), 1u);
  EXPECT_EQ(to_string(bob->received[0].second), "hi bob");
  EXPECT_EQ(bob->received[0].first.connection, 1u);
  EXPECT_EQ(sn->datapath_stats().slow_path, 1u);
}

TEST(ServiceNode, SecondPacketUsesFastPath) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("one"));
  net.run();
  alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("two"));
  net.run();

  EXPECT_EQ(bob->received.size(), 2u);
  EXPECT_EQ(sn->datapath_stats().slow_path, 1u);
  EXPECT_EQ(sn->datapath_stats().fast_path, 1u);
  EXPECT_EQ(sn->cache().stats().hits, 1u);
}

TEST(ServiceNode, ChainOfTwoSns) {
  // client -> SN1 -> SN2 -> server: the typical communication path (§3.2).
  simulation net;
  testing::identity_router route;
  auto client = make_host(net);
  auto server = make_host(net);
  auto sn1 = make_sn(net, nullptr);  // routes via static table below
  auto sn2 = make_sn(net, &route);

  // SN1 forwards everything toward SN2 (its router resolves all
  // destinations to SN2).
  class static_router final : public core::router {
   public:
    explicit static_router(peer_id hop) : hop_(hop) {}
    std::optional<peer_id> next_hop(edge_addr) const override { return hop_; }

   private:
    peer_id hop_;
  };
  static_router to_sn2(sn2->node_id());
  sn1 = make_sn(net, &to_sn2);
  sn1->env().deploy(std::make_unique<testing::forwarder_module>());
  sn2->env().deploy(std::make_unique<testing::forwarder_module>());

  client->mgr->send(sn1->node_id(), delivery_header(server->node), to_bytes("via two SNs"));
  net.run();

  ASSERT_EQ(server->received.size(), 1u);
  EXPECT_EQ(to_string(server->received[0].second), "via two SNs");
  EXPECT_EQ(sn1->datapath_stats().forwarded, 1u);
  EXPECT_EQ(sn2->datapath_stats().forwarded, 1u);
}

TEST(ServiceNode, UnroutableDestinationDropped) {
  simulation net;
  auto alice = make_host(net);
  auto sn = make_sn(net, nullptr);  // no router at all
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  alice->mgr->send(sn->node_id(), delivery_header(12345), to_bytes("lost"));
  net.run();
  EXPECT_EQ(sn->datapath_stats().dropped, 1u);
}

TEST(ServiceNode, ControlRoundTrip) {
  simulation net;
  auto alice = make_host(net);
  auto sn = make_sn(net, nullptr);
  sn->env().deploy(std::make_unique<testing::echo_control_module>(ilp::svc::pubsub));

  ilp::ilp_header control;
  control.service = ilp::svc::pubsub;
  control.connection = 42;
  control.flags = ilp::kFlagControl;
  alice->mgr->send(sn->node_id(), control, to_bytes("subscribe weather"));
  net.run();

  ASSERT_EQ(alice->received.size(), 1u);
  EXPECT_EQ(to_string(alice->received[0].second), "subscribe weather");
  EXPECT_EQ(alice->received[0].first.connection, 42u);
}

TEST(ServiceNode, KeyRotationKeepsDatapathAlive) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("before"));
  net.run();
  sn->rotate_keys();
  alice->mgr->rotate_all();
  bob->mgr->rotate_all();
  alice->mgr->send(sn->node_id(), delivery_header(bob->node, 2), to_bytes("after"));
  net.run();

  ASSERT_EQ(bob->received.size(), 2u);
  EXPECT_EQ(to_string(bob->received[1].second), "after");
}

TEST(ServiceNode, CheckpointRestoreAcrossReplacement) {
  // "for stateful services, one can use ... standby-replication" (§3.3):
  // checkpoint an SN, fail it, restore the state into a replacement.
  simulation net;
  auto alice = make_host(net);
  auto sn = make_sn(net, nullptr);
  sn->env().deploy(std::make_unique<testing::sink_module>());

  ilp::ilp_header h;
  h.service = ilp::svc::null_service;
  h.connection = 1;
  alice->mgr->send(sn->node_id(), h, to_bytes("message-0"));
  net.run();
  const bytes snap = sn->checkpoint();

  auto replacement = make_sn(net, nullptr);
  auto sink = std::make_unique<testing::sink_module>();
  auto* raw = sink.get();
  replacement->env().deploy(std::move(sink));
  replacement->restore(snap);
  EXPECT_EQ(raw->counter(), 1);
}

TEST(ServiceNode, PeeringPipeEstablishment) {
  simulation net;
  auto sn1 = make_sn(net, nullptr);
  auto sn2 = make_sn(net, nullptr);
  sn1->peer_with(sn2->node_id());
  net.run();
  EXPECT_TRUE(sn1->pipes().has_pipe(sn2->node_id()));
  EXPECT_TRUE(sn2->pipes().has_pipe(sn1->node_id()));
}

}  // namespace
}  // namespace interedge::core
