// Multi-core SN datapath tests (DESIGN.md §9): flow steering, shard
// affinity, invalidation fan-out, ring-full backpressure and the inline
// (workers == 0) equivalence, all over the simulator.
//
// The simulator is single-threaded but the parallel SN is not: net.run()
// delivers and steers, sn.wait_idle() lets the worker shards finish and
// queues their forwards, and the next net.run() delivers those. settle()
// alternates the two until the exchange quiesces.
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <span>
#include <thread>

#include <gtest/gtest.h>

#include "common/buf_pool.h"
#include "core/decision_cache.h"
#include "core/service_node.h"
#include "core/test_modules.h"
#include "simnet/simulation.h"

namespace interedge::core {
namespace {

using sim::node_id;
using sim::simulation;

struct sim_host {
  node_id node = 0;
  std::unique_ptr<ilp::pipe_manager> mgr;
  std::vector<std::pair<ilp::ilp_header, bytes>> received;
};

std::unique_ptr<sim_host> make_host(simulation& net) {
  auto h = std::make_unique<sim_host>();
  h->node = net.add_node(nullptr);
  h->mgr = std::make_unique<ilp::pipe_manager>(
      h->node,
      [&net, node = h->node](peer_id peer, bytes d) {
        net.send(node, static_cast<node_id>(peer), std::move(d));
      },
      [raw = h.get()](peer_id, const ilp::ilp_header& hdr, bytes payload) {
        raw->received.emplace_back(hdr, std::move(payload));
      });
  net.set_handler(h->node, [raw = h.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return h;
}

std::unique_ptr<service_node> make_sn(simulation& net, const router* route, std::size_t workers,
                                      std::size_t ring_depth = 1024) {
  const node_id node = net.add_node(nullptr);
  sn_config cfg;
  cfg.id = node;
  cfg.edomain = 1;
  cfg.workers = workers;
  cfg.shard_ring_depth = ring_depth;
  auto sn = std::make_unique<service_node>(
      cfg, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  return sn;
}

ilp::ilp_header delivery_header(edge_addr dest, ilp::connection_id conn = 1) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::dest_addr, dest);
  return h;
}

void settle(simulation& net, service_node& sn) {
  for (int round = 0; round < 8; ++round) {
    net.run();
    EXPECT_TRUE(sn.wait_idle(std::chrono::milliseconds(10000)));
  }
  net.run();
}

std::uint64_t steered_total(service_node& sn) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sn.worker_count(); ++i) {
    total += sn.metrics().get_counter("sn.steer.pkts", {{"shard", std::to_string(i)}}).value();
  }
  return total;
}

std::uint64_t ingress_drops_total(service_node& sn) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sn.worker_count(); ++i) {
    total +=
        sn.metrics().get_counter("sn.shard.ingress_drops", {{"shard", std::to_string(i)}}).value();
  }
  return total;
}

// Parallel mode delivers exactly the packets the inline SN would — no
// losses, no duplicates — and every data packet flows through a shard.
TEST(ShardedDatapath, ParallelDeliversSameSetAsInline) {
  constexpr int kFlows = 8;
  constexpr int kPerFlow = 25;

  auto run_mode = [&](std::size_t workers) {
    simulation net;
    testing::identity_router route;
    auto alice = make_host(net);
    auto bob = make_host(net);
    auto sn = make_sn(net, &route, workers);
    sn->env().deploy(std::make_unique<testing::forwarder_module>());

    for (int c = 1; c <= kFlows; ++c) {
      for (int p = 0; p < kPerFlow; ++p) {
        alice->mgr->send(sn->node_id(), delivery_header(bob->node, c),
                         to_bytes("c" + std::to_string(c) + "p" + std::to_string(p)));
      }
    }
    settle(net, *sn);

    std::multiset<std::string> payloads;
    for (auto& [hdr, payload] : bob->received) payloads.insert(to_string(payload));

    if (workers > 0) {
      std::uint64_t received = 0, forwarded = 0, slow = 0, fast = 0;
      for (std::size_t i = 0; i < sn->worker_count(); ++i) {
        received += sn->shard_terminus_stats(i).received;
        forwarded += sn->shard_terminus_stats(i).forwarded;
        slow += sn->shard_terminus_stats(i).slow_path;
        fast += sn->shard_terminus_stats(i).fast_path;
      }
      EXPECT_EQ(received, static_cast<std::uint64_t>(kFlows * kPerFlow));
      EXPECT_EQ(forwarded, static_cast<std::uint64_t>(kFlows * kPerFlow));
      EXPECT_EQ(fast + slow, static_cast<std::uint64_t>(kFlows * kPerFlow));
      EXPECT_GE(slow, static_cast<std::uint64_t>(kFlows));  // one miss per flow minimum
      EXPECT_EQ(steered_total(*sn), static_cast<std::uint64_t>(kFlows * kPerFlow));
      EXPECT_EQ(ingress_drops_total(*sn), 0u);
    }
    return payloads;
  };

  const auto inline_set = run_mode(0);
  const auto parallel_set = run_mode(4);
  EXPECT_EQ(inline_set.size(), static_cast<std::size_t>(kFlows * kPerFlow));
  EXPECT_EQ(parallel_set, inline_set);
}

// Every packet of one flow lands on the shard the steerer names — private
// caches stay consistent because a flow never splits across shards.
TEST(ShardedDatapath, FlowAffinityPinsFlowToOneShard) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 4);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  constexpr int kPackets = 40;
  for (int p = 0; p < kPackets; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, 9), to_bytes("x"));
  }
  settle(net, *sn);

  ASSERT_EQ(bob->received.size(), static_cast<std::size_t>(kPackets));
  ASSERT_NE(sn->steerer(), nullptr);
  const std::size_t expected =
      sn->steerer()->shard_of(cache_key{alice->node, ilp::svc::delivery, 9});
  for (std::size_t i = 0; i < sn->worker_count(); ++i) {
    if (i == expected) {
      EXPECT_EQ(sn->shard_terminus_stats(i).received, static_cast<std::uint64_t>(kPackets));
      EXPECT_EQ(sn->shard_cache(i).size(), 1u);
    } else {
      EXPECT_EQ(sn->shard_terminus_stats(i).received, 0u);
      EXPECT_EQ(sn->shard_cache(i).size(), 0u);
    }
  }
}

// Steering is a pure function of (seed, key): a restarted SN with the same
// cache_hash_seed maps every flow to the same shard, and distinct flows
// spread across all shards.
TEST(ShardedDatapath, SteeringDeterministicAcrossRestarts) {
  flow_steerer first(0xfeedbeef, 4);
  flow_steerer restarted(0xfeedbeef, 4);
  std::set<std::size_t> used;
  bool reseeded_differs = false;
  flow_steerer reseeded(0x5eed, 4);
  for (std::uint64_t n = 0; n < 256; ++n) {
    const cache_key k{n * 7919 + 1, static_cast<ilp::service_id>(n % 5), n};
    const std::size_t s = first.shard_of(k);
    EXPECT_EQ(s, restarted.shard_of(k));
    EXPECT_LT(s, 4u);
    used.insert(s);
    if (reseeded.shard_of(k) != s) reseeded_differs = true;
  }
  EXPECT_EQ(used.size(), 4u);      // 256 flows reach every shard
  EXPECT_TRUE(reseeded_differs);   // the mapping is keyed, not positional
}

// A service invalidation published on the control thread empties every
// shard's private cache, and traffic repopulates them afterwards.
TEST(ShardedDatapath, ServiceInvalidationReachesEveryShard) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 4);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  constexpr int kFlows = 8;
  for (int c = 1; c <= kFlows; ++c) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, c), to_bytes("warm"));
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, c), to_bytes("warm"));
  }
  settle(net, *sn);

  std::size_t resident = 0;
  for (std::size_t i = 0; i < sn->worker_count(); ++i) resident += sn->shard_cache(i).size();
  ASSERT_EQ(resident, static_cast<std::size_t>(kFlows));

  sn->invalidate_service(ilp::svc::delivery);
  ASSERT_TRUE(sn->wait_idle(std::chrono::milliseconds(10000)));

  std::uint64_t invalidated = 0;
  for (std::size_t i = 0; i < sn->worker_count(); ++i) {
    EXPECT_EQ(sn->shard_cache(i).size(), 0u);
    invalidated += sn->shard_cache_stats(i).invalidations;
  }
  EXPECT_EQ(invalidated, static_cast<std::uint64_t>(kFlows));

  // The fast path re-forms: the next packet misses, redecides, reinstalls.
  alice->mgr->send(sn->node_id(), delivery_header(bob->node, 3), to_bytes("again"));
  settle(net, *sn);
  EXPECT_EQ(bob->received.size(), static_cast<std::size_t>(2 * kFlows + 1));
  resident = 0;
  for (std::size_t i = 0; i < sn->worker_count(); ++i) resident += sn->shard_cache(i).size();
  EXPECT_EQ(resident, 1u);
}

// Targeted connection invalidation only drops that flow's entry.
TEST(ShardedDatapath, ConnectionInvalidationIsTargeted) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 2);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  alice->mgr->send(sn->node_id(), delivery_header(bob->node, 1), to_bytes("a"));
  alice->mgr->send(sn->node_id(), delivery_header(bob->node, 2), to_bytes("b"));
  settle(net, *sn);

  sn->invalidate_connection(ilp::svc::delivery, 1);
  ASSERT_TRUE(sn->wait_idle(std::chrono::milliseconds(10000)));

  std::size_t resident = 0;
  for (std::size_t i = 0; i < sn->worker_count(); ++i) resident += sn->shard_cache(i).size();
  EXPECT_EQ(resident, 1u);
  const std::size_t survivor =
      sn->steerer()->shard_of(cache_key{alice->node, ilp::svc::delivery, 2});
  EXPECT_TRUE(sn->shard_cache(survivor).contains(cache_key{alice->node, ilp::svc::delivery, 2}));
}

// A full ingress ring is counted backpressure, never corruption: every
// packet is either steered (and forwarded) or counted as dropped.
TEST(ShardedDatapath, IngressRingFullDropsAreCounted) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 1, /*ring_depth=*/2);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  constexpr int kPackets = 300;
  const std::string big(1024, 'x');  // slow worker-side open vs the cheap peek
  for (int p = 0; p < kPackets; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes(big));
  }
  settle(net, *sn);

  const std::uint64_t steered = steered_total(*sn);
  const std::uint64_t drops = ingress_drops_total(*sn);
  EXPECT_EQ(steered + drops, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(bob->received.size(), static_cast<std::size_t>(steered));
  EXPECT_GT(steered, 0u);
  EXPECT_GT(drops, 0u);  // capacity-2 ring against a 300-packet burst
}

// ISSUE 8: the worker-side egress spill is bounded. With the control
// thread's drain paused, a burst against a tiny egress ring fills the ring
// (depth 4 rounds to 8 slots, 7 usable), then the spill deque up to
// egress_spill_max, and every forward past that is dropped and counted —
// never buffered without bound. Unpausing drains exactly the retained
// forwards; the drop counter does not move again.
TEST(ShardedDatapath, EgressSpillBoundDropsAndRecovers) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);

  const node_id node = net.add_node(nullptr);
  sn_config cfg;
  cfg.id = node;
  cfg.edomain = 1;
  cfg.workers = 1;
  cfg.shard_ring_depth = 1024;  // ingress swallows the whole burst
  cfg.egress_ring_depth = 4;    // -> 7 usable slots
  cfg.egress_spill_max = 4;
  auto sn = std::make_unique<service_node>(
      cfg, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      &route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  constexpr int kPackets = 64;
  constexpr std::uint64_t kRetained = 7 + 4;  // ring + spill
  constexpr std::uint64_t kDropped = kPackets - kRetained;

  sn->pause_egress_drain(true);
  for (int p = 0; p < kPackets; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("burst"));
  }

  // wait_idle cannot return while the spill is pinned nonzero, so pump the
  // control side by hand (net.run delivers + runs the slow-path open,
  // sn->poll pumps the hub but skips the paused egress drain) until the
  // worker has pushed every forward into the bounded egress.
  const counter& spill_drops =
      sn->shard_metrics(0).get_counter("sn.shard.egress_spill_drops");
  for (int spin = 0; spin < 5000 && spill_drops.value() < kDropped; ++spin) {
    net.run();
    sn->poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(spill_drops.value(), kDropped);
  EXPECT_TRUE(bob->received.empty());  // nothing leaked past the pause

  sn->pause_egress_drain(false);
  settle(net, *sn);

  // Exactly the ring + spill contents came out; the drops are final.
  EXPECT_EQ(bob->received.size(), static_cast<std::size_t>(kRetained));
  EXPECT_EQ(spill_drops.value(), kDropped);
  // Every forward was still attempted (the terminus counted all of them);
  // the bound acted at the egress ring, not upstream.
  EXPECT_EQ(sn->shard_terminus_stats(0).forwarded, static_cast<std::uint64_t>(kPackets));
}

// Key rotation replicates the fresh receive contexts to every shard over
// the FIFO ingress rings: no packet races ahead of its keys.
TEST(ShardedDatapath, KeyRotationKeepsParallelDatapathAlive) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 2);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  for (int p = 0; p < 5; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("before"));
  }
  settle(net, *sn);
  // Rotation is a local ratchet on each end: the hosts rotate alongside
  // the SN, and the SN's fresh receive contexts fan out to the shards.
  sn->rotate_keys();
  alice->mgr->rotate_all();
  bob->mgr->rotate_all();
  settle(net, *sn);
  for (int p = 0; p < 5; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("after"));
  }
  settle(net, *sn);

  EXPECT_EQ(bob->received.size(), 10u);
  for (std::size_t i = 0; i < sn->worker_count(); ++i) {
    EXPECT_EQ(sn->shard_metrics(i).get_counter("ilp.rx.rejected").value(), 0u);
    EXPECT_EQ(sn->shard_metrics(i).get_counter("sn.shard.no_replica").value(), 0u);
  }
}

// The merged metrics view covers the control registry plus every shard
// registry, so one exposition shows the whole node.
TEST(ShardedDatapath, MergedMetricsCoverShardRegistries) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 2);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  // Two waves with a settle between: the first wave installs the cache
  // entries, the second hits them (a single burst can be entirely steered
  // before any slow-path response lands, making every packet a miss).
  constexpr int kPackets = 20;
  for (int p = 0; p < kPackets / 2; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, 1 + p % 4), to_bytes("m"));
  }
  settle(net, *sn);
  for (int p = 0; p < kPackets / 2; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, 1 + p % 4), to_bytes("m"));
  }
  settle(net, *sn);

  metrics_registry merged;
  sn->merge_metrics_into(merged);
  EXPECT_GT(merged.get_counter("sn.cache.inserts").value(), 0u);
  EXPECT_GT(merged.get_counter("sn.cache.hits").value(), 0u);
  EXPECT_EQ(steered_total(*sn), static_cast<std::uint64_t>(kPackets));

  const std::string prom = sn->export_prometheus();
  EXPECT_NE(prom.find("steer"), std::string::npos);
  // Snapshot twice: the second call produces rate deltas without throwing
  // and without double-counting the merged registries.
  sn->stats_snapshot();
  const std::string snap = sn->stats_snapshot();
  EXPECT_FALSE(snap.empty());
}

// workers == 0 is the unchanged inline SN: no threads, no steerer, and the
// parallel-mode service entry points are safe no-ops.
TEST(ShardedDatapath, WorkersZeroStaysInline) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 0);
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  EXPECT_EQ(sn->worker_count(), 0u);
  EXPECT_EQ(sn->steerer(), nullptr);

  for (int p = 0; p < 3; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node), to_bytes("inline"));
  }
  net.run();
  EXPECT_EQ(sn->poll(), 0u);
  EXPECT_TRUE(sn->wait_idle(std::chrono::milliseconds(100)));

  EXPECT_EQ(bob->received.size(), 3u);
  EXPECT_EQ(sn->datapath_stats().slow_path, 1u);
  EXPECT_EQ(sn->datapath_stats().fast_path, 2u);
  EXPECT_EQ(sn->cache().stats().hits, 2u);
}

// ---- ISSUE 6: zero-copy views ingress --------------------------------
//
// Feeds the SN through on_datagram_views: simulator datagrams are copied
// once into pool slabs at the edge, then slab references travel through
// steer_views, the shard SPSC rings and the in-place worker decrypt. The
// delivered packet set must match the owned-bytes ingress exactly, and
// every slab must be back in the pool once the exchange quiesces.
TEST(ShardedDatapath, ViewsIngressMatchesBytesIngress) {
  constexpr int kFlows = 6;
  constexpr int kPerFlow = 30;

  auto run_mode = [&](std::size_t workers, bool views) {
    simulation net;
    testing::identity_router route;
    auto alice = make_host(net);
    auto bob = make_host(net);

    // Declared before the SN so slabs outlive any view the SN still holds.
    buf::pool_config pcfg;
    pcfg.slab_size = 2048;
    pcfg.slab_count = 512;
    buf::buf_pool pool(pcfg);

    auto sn = make_sn(net, &route, workers);
    sn->env().deploy(std::make_unique<testing::forwarder_module>());

    std::uint64_t shed = 0;
    if (views) {
      // Re-point the sim handler at the views entry: one slab copy at the
      // edge (standing in for the NIC DMA), zero copies after.
      net.set_handler(sn->node_id(), [&pool, &shed, raw = sn.get()](sim::node_id from,
                                                                    const bytes& data) {
        buf::slab_ref slab = pool.try_alloc();
        if (!slab || data.size() > slab.size()) {
          ++shed;  // counted drop, like the real transport under exhaustion
          return;
        }
        std::memcpy(slab.data(), data.data(), data.size());
        std::pair<peer_id, buf::pkt_view> one{
            static_cast<peer_id>(from), buf::pkt_view(std::move(slab), 0, data.size())};
        raw->on_datagram_views(std::span(&one, 1));
      });
    }

    for (int c = 1; c <= kFlows; ++c) {
      for (int p = 0; p < kPerFlow; ++p) {
        alice->mgr->send(sn->node_id(), delivery_header(bob->node, c),
                         to_bytes("c" + std::to_string(c) + "p" + std::to_string(p)));
      }
    }
    settle(net, *sn);
    EXPECT_EQ(shed, 0u);

    if (views) {
      // Quiesced: every slab reference the datapath took has been dropped
      // — nothing pinned in rings, scratch batches or the terminus.
      const auto ps = pool.stats();
      EXPECT_EQ(ps.outstanding, 0u);
      EXPECT_EQ(ps.allocs, ps.frees);
      EXPECT_GE(ps.allocs, static_cast<std::uint64_t>(kFlows * kPerFlow));
    }
    if (workers > 0) {
      EXPECT_GE(steered_total(*sn), static_cast<std::uint64_t>(kFlows * kPerFlow));
      EXPECT_EQ(ingress_drops_total(*sn), 0u);
    }

    std::multiset<std::string> payloads;
    for (auto& [hdr, payload] : bob->received) payloads.insert(to_string(payload));
    return payloads;
  };

  const auto bytes_parallel = run_mode(4, /*views=*/false);
  const auto views_parallel = run_mode(4, /*views=*/true);
  const auto views_inline = run_mode(0, /*views=*/true);
  EXPECT_EQ(bytes_parallel.size(), static_cast<std::size_t>(kFlows * kPerFlow));
  EXPECT_EQ(views_parallel, bytes_parallel);
  EXPECT_EQ(views_inline, bytes_parallel);
}

// The invalidation bus against live worker threads: lookups and inserts on
// shard-private caches race erase_service/erase_connection publishes. Run
// under tsan (ci_sanitizers.sh) this must be clean — the caches are never
// shared, only the SPSC command rings cross threads.
TEST(ShardedDatapath, ConcurrentInvalidationIsRaceFree) {
  constexpr std::size_t kShards = 2;
  cache_invalidation_bus bus(kShards, 64);
  std::vector<std::unique_ptr<decision_cache>> caches;
  for (std::size_t i = 0; i < kShards; ++i) {
    caches.push_back(std::make_unique<decision_cache>(256, 42));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < kShards; ++i) {
    workers.emplace_back([&, i] {
      decision_cache& cache = *caches[i];
      std::uint64_t conn = 0;
      while (!stop.load(std::memory_order_acquire)) {
        bus.drain(i, cache);
        const cache_key k{i + 1, static_cast<ilp::service_id>(conn % 3), conn % 128};
        if (!cache.lookup(k)) cache.insert(k, decision::forward_to(9));
        ++conn;
      }
      bus.drain(i, cache);
    });
  }

  for (int round = 0; round < 2000; ++round) {
    bus.publish(cache_command{cache_op::erase_service,
                              static_cast<ilp::service_id>(round % 3), 0, 0});
    if (round % 5 == 0) {
      bus.publish(cache_command{cache_op::erase_connection,
                                static_cast<ilp::service_id>(round % 3),
                                static_cast<ilp::connection_id>(round % 128), 0});
    }
  }
  while (!bus.quiesced()) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_TRUE(bus.quiesced());
  EXPECT_EQ(bus.published(), 2000u + 400u);
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(bus.applied(i), bus.published());
    // Post-join the caches are plain single-threaded objects again.
    EXPECT_LE(caches[i]->size(), caches[i]->capacity());
  }
}

}  // namespace
}  // namespace interedge::core
