// Minimal service modules used by core-layer tests.
#pragma once

#include <string>

#include "core/router.h"
#include "core/service_module.h"

namespace interedge::core::testing {

// Forwards by destination-address metadata, installing a decision-cache
// entry so later packets take the fast path.
class forwarder_module final : public service_module {
 public:
  explicit forwarder_module(ilp::service_id id = ilp::svc::delivery) : id_(id) {}
  ilp::service_id id() const override { return id_; }
  std::string_view name() const override { return "test-forwarder"; }

  module_result on_packet(service_context& ctx, const packet& pkt) override {
    ++packets_seen;
    const auto dest = pkt.header.meta_u64(ilp::meta_key::dest_addr);
    if (!dest) return module_result::drop();
    const auto hop = ctx.next_hop(*dest);
    if (!hop) return module_result::drop();
    module_result r = module_result::forward(*hop);
    r.cache_inserts.emplace_back(cache_key{pkt.l3_src, pkt.header.service, pkt.header.connection},
                                 decision::forward_to(*hop));
    return r;
  }

  int packets_seen = 0;

 private:
  ilp::service_id id_;
};

// Consumes every packet and records payloads in its off-path storage;
// checkpoint/restore round-trips a counter through the module-state blob.
class sink_module final : public service_module {
 public:
  ilp::service_id id() const override { return ilp::svc::null_service; }
  std::string_view name() const override { return "test-sink"; }

  module_result on_packet(service_context& ctx, const packet& pkt) override {
    ctx.storage().put("msg/" + std::to_string(counter_++), pkt.payload);
    return module_result::deliver();
  }

  bytes checkpoint(service_context&) override {
    return to_bytes(std::to_string(counter_));
  }
  void restore(service_context&, const_byte_span state) override {
    counter_ = std::stoi(to_string(state));
  }

  int counter() const { return counter_; }

 private:
  int counter_ = 0;
};

// Replies to control packets (echoes the payload back to the sender).
class echo_control_module final : public service_module {
 public:
  explicit echo_control_module(ilp::service_id id) : id_(id) {}
  ilp::service_id id() const override { return id_; }
  std::string_view name() const override { return "test-echo-control"; }

  module_result on_packet(service_context& ctx, const packet& pkt) override {
    if (pkt.header.flags & ilp::kFlagControl) {
      ilp::ilp_header reply;
      reply.service = id_;
      reply.connection = pkt.header.connection;
      reply.flags = ilp::kFlagControl;
      ctx.send(pkt.l3_src, reply, pkt.payload);
    }
    return module_result::deliver();
  }

 private:
  ilp::service_id id_;
};

// Identity router: destination addresses ARE adjacent peer ids (the common
// arrangement in unit tests; the edomain layer provides real routing).
class identity_router final : public router {
 public:
  std::optional<peer_id> next_hop(edge_addr dest) const override { return dest; }
};

}  // namespace interedge::core::testing
