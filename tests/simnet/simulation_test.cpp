#include "simnet/simulation.h"

#include <gtest/gtest.h>

namespace interedge::sim {
namespace {

using namespace std::chrono_literals;

TEST(Simulation, DeliversDatagramAfterLatency) {
  simulation net;
  bytes received;
  time_point arrival{};
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([&](node_id from, const bytes& p) {
    EXPECT_EQ(from, 0u);
    received = p;
    arrival = net.now();
  });
  net.set_link(a, b, {.latency = 1ms});

  EXPECT_TRUE(net.send(a, b, to_bytes("hello")));
  net.run();
  EXPECT_EQ(to_string(received), "hello");
  EXPECT_EQ(arrival.time_since_epoch(), 1ms);
}

TEST(Simulation, EventsExecuteInTimeOrder) {
  simulation net;
  std::vector<int> order;
  net.after(3ms, [&] { order.push_back(3); });
  net.after(1ms, [&] { order.push_back(1); });
  net.after(2ms, [&] { order.push_back(2); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeEventsExecuteInScheduleOrder) {
  simulation net;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.after(1ms, [&order, i] { order.push_back(i); });
  }
  net.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, MtuDropsOversizedDatagram) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) { FAIL() << "must not deliver"; });
  net.set_link(a, b, {.mtu = 100});
  EXPECT_FALSE(net.send(a, b, bytes(101, 0)));
  net.run();
  EXPECT_EQ(net.datagrams_dropped(), 1u);
}

TEST(Simulation, LossRateDropsDeterministically) {
  simulation net_a(7), net_b(7);
  auto run_one = [](simulation& net) {
    const node_id a = net.add_node(nullptr);
    int delivered = 0;
    const node_id b = net.add_node([&delivered](node_id, const bytes&) { ++delivered; });
    net.set_link(a, b, {.loss_rate = 0.5});
    for (int i = 0; i < 1000; ++i) net.send(a, b, bytes{1});
    net.run();
    return delivered;
  };
  const int d1 = run_one(net_a);
  const int d2 = run_one(net_b);
  EXPECT_EQ(d1, d2);  // same seed, same outcome
  EXPECT_GT(d1, 350);
  EXPECT_LT(d1, 650);
}

TEST(Simulation, BandwidthSerializesBackToBack) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  std::vector<time_point> arrivals;
  const node_id b = net.add_node([&](node_id, const bytes&) { arrivals.push_back(net.now()); });
  // 8 Mbps -> a 1000-byte datagram takes 1 ms to serialize.
  net.set_link(a, b, {.latency = 0ns, .bandwidth_bps = 8000000});
  net.send(a, b, bytes(1000, 0));
  net.send(a, b, bytes(1000, 0));
  net.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].time_since_epoch(), 1ms);
  EXPECT_EQ(arrivals[1].time_since_epoch(), 2ms);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  simulation net;
  int fired = 0;
  net.after(1ms, [&] { ++fired; });
  net.after(10ms, [&] { ++fired; });
  net.run_until(time_point(5ms));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(net.now().time_since_epoch(), 5ms);
  net.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, TimersCanScheduleMoreWork) {
  simulation net;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) net.after(1ms, recurse);
  };
  net.after(1ms, recurse);
  net.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(net.now().time_since_epoch(), 5ms);
}

TEST(Simulation, TapObservesDeliveries) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) {});
  int tapped = 0;
  net.set_tap([&](node_id from, node_id to, const bytes&) {
    EXPECT_EQ(from, a);
    EXPECT_EQ(to, b);
    ++tapped;
  });
  net.send(a, b, bytes{1});
  net.run();
  EXPECT_EQ(tapped, 1);
}

TEST(Simulation, UnknownDestinationThrows) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  EXPECT_THROW(net.send(a, 99, bytes{1}), std::out_of_range);
}

TEST(Simulation, CountersTrackTraffic) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) {});
  net.send(a, b, bytes(10, 0));
  net.send(a, b, bytes(20, 0));
  net.run();
  EXPECT_EQ(net.datagrams_sent(), 2u);
  EXPECT_EQ(net.datagrams_delivered(), 2u);
  EXPECT_EQ(net.bytes_sent(), 30u);
}

TEST(Simulation, DefaultLinkAppliesToUnconfiguredPairs) {
  simulation net;
  net.set_default_link({.latency = 7ms});
  const node_id a = net.add_node(nullptr);
  time_point arrival{};
  const node_id b = net.add_node([&](node_id, const bytes&) { arrival = net.now(); });
  net.send(a, b, bytes{1});
  net.run();
  EXPECT_EQ(arrival.time_since_epoch(), 7ms);
}

}  // namespace
}  // namespace interedge::sim
