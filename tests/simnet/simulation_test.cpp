#include "simnet/simulation.h"

#include <gtest/gtest.h>

namespace interedge::sim {
namespace {

using namespace std::chrono_literals;

TEST(Simulation, DeliversDatagramAfterLatency) {
  simulation net;
  bytes received;
  time_point arrival{};
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([&](node_id from, const bytes& p) {
    EXPECT_EQ(from, 0u);
    received = p;
    arrival = net.now();
  });
  net.set_link(a, b, {.latency = 1ms});

  EXPECT_TRUE(net.send(a, b, to_bytes("hello")));
  net.run();
  EXPECT_EQ(to_string(received), "hello");
  EXPECT_EQ(arrival.time_since_epoch(), 1ms);
}

TEST(Simulation, EventsExecuteInTimeOrder) {
  simulation net;
  std::vector<int> order;
  net.after(3ms, [&] { order.push_back(3); });
  net.after(1ms, [&] { order.push_back(1); });
  net.after(2ms, [&] { order.push_back(2); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SameTimeEventsExecuteInScheduleOrder) {
  simulation net;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    net.after(1ms, [&order, i] { order.push_back(i); });
  }
  net.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, MtuDropsOversizedDatagram) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) { FAIL() << "must not deliver"; });
  net.set_link(a, b, {.mtu = 100});
  EXPECT_FALSE(net.send(a, b, bytes(101, 0)));
  net.run();
  EXPECT_EQ(net.datagrams_dropped(), 1u);
}

TEST(Simulation, LossRateDropsDeterministically) {
  simulation net_a(7), net_b(7);
  auto run_one = [](simulation& net) {
    const node_id a = net.add_node(nullptr);
    int delivered = 0;
    const node_id b = net.add_node([&delivered](node_id, const bytes&) { ++delivered; });
    net.set_link(a, b, {.loss_rate = 0.5});
    for (int i = 0; i < 1000; ++i) net.send(a, b, bytes{1});
    net.run();
    return delivered;
  };
  const int d1 = run_one(net_a);
  const int d2 = run_one(net_b);
  EXPECT_EQ(d1, d2);  // same seed, same outcome
  EXPECT_GT(d1, 350);
  EXPECT_LT(d1, 650);
}

TEST(Simulation, BandwidthSerializesBackToBack) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  std::vector<time_point> arrivals;
  const node_id b = net.add_node([&](node_id, const bytes&) { arrivals.push_back(net.now()); });
  // 8 Mbps -> a 1000-byte datagram takes 1 ms to serialize.
  net.set_link(a, b, {.latency = 0ns, .bandwidth_bps = 8000000});
  net.send(a, b, bytes(1000, 0));
  net.send(a, b, bytes(1000, 0));
  net.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].time_since_epoch(), 1ms);
  EXPECT_EQ(arrivals[1].time_since_epoch(), 2ms);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  simulation net;
  int fired = 0;
  net.after(1ms, [&] { ++fired; });
  net.after(10ms, [&] { ++fired; });
  net.run_until(time_point(5ms));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(net.now().time_since_epoch(), 5ms);
  net.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, TimersCanScheduleMoreWork) {
  simulation net;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) net.after(1ms, recurse);
  };
  net.after(1ms, recurse);
  net.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(net.now().time_since_epoch(), 5ms);
}

TEST(Simulation, TapObservesDeliveries) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) {});
  int tapped = 0;
  net.set_tap([&](node_id from, node_id to, const bytes&) {
    EXPECT_EQ(from, a);
    EXPECT_EQ(to, b);
    ++tapped;
  });
  net.send(a, b, bytes{1});
  net.run();
  EXPECT_EQ(tapped, 1);
}

TEST(Simulation, UnknownDestinationThrows) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  EXPECT_THROW(net.send(a, 99, bytes{1}), std::out_of_range);
}

TEST(Simulation, CountersTrackTraffic) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  const node_id b = net.add_node([](node_id, const bytes&) {});
  net.send(a, b, bytes(10, 0));
  net.send(a, b, bytes(20, 0));
  net.run();
  EXPECT_EQ(net.datagrams_sent(), 2u);
  EXPECT_EQ(net.datagrams_delivered(), 2u);
  EXPECT_EQ(net.bytes_sent(), 30u);
}

TEST(Simulation, DuplicateRateDeliversTwiceDeterministically) {
  auto run_one = [](std::uint64_t seed) {
    simulation net(seed);
    const node_id a = net.add_node(nullptr);
    int delivered = 0;
    const node_id b = net.add_node([&delivered](node_id, const bytes&) { ++delivered; });
    net.set_link(a, b, {.duplicate_rate = 0.5});
    for (int i = 0; i < 1000; ++i) net.send(a, b, bytes{1});
    net.run();
    return std::make_pair(delivered, net.datagrams_duplicated());
  };
  const auto [d1, dup1] = run_one(7);
  const auto [d2, dup2] = run_one(7);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(dup1, dup2);
  EXPECT_EQ(static_cast<std::uint64_t>(d1), 1000u + dup1);
  EXPECT_GT(dup1, 350u);
  EXPECT_LT(dup1, 650u);
}

TEST(Simulation, ReorderRateLetsLaterSendsOvertake) {
  simulation net(3);
  const node_id a = net.add_node(nullptr);
  std::vector<std::uint8_t> order;
  const node_id b =
      net.add_node([&](node_id, const bytes& p) { order.push_back(p[0]); });
  net.set_link(a, b, {.latency = 1ms, .reorder_rate = 1.0, .reorder_delay = 500us});
  // First datagram is always held back 500us; the second (sent 100us later,
  // also held back) still arrives after it — but a third sent 400us later
  // with reorder_rate off would overtake. Simplest check: everything still
  // arrives, reordered counter reflects the draws.
  net.send(a, b, bytes{1});
  net.after(100us, [&] { net.send(a, b, bytes{2}); });
  net.run();
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(net.datagrams_reordered(), 2u);
}

TEST(Simulation, ReorderingIsObservableAcrossMixedTraffic) {
  // Held-back datagram vs. a later clean send: the later one overtakes.
  simulation net(11);
  const node_id a = net.add_node(nullptr);
  std::vector<std::uint8_t> order;
  const node_id b =
      net.add_node([&](node_id, const bytes& p) { order.push_back(p[0]); });
  net.set_link(a, b, {.latency = 1ms, .reorder_rate = 1.0, .reorder_delay = 500us});
  net.send(a, b, bytes{1});  // arrives at 1.5ms
  net.after(200us, [&] {
    net.set_link(a, b, {.latency = 1ms});  // reordering off for the second
    net.send(a, b, bytes{2});              // arrives at 1.2ms
  });
  net.run();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{2, 1}));
}

TEST(Simulation, CrashedNodeDropsSendsAndInFlight) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  int delivered = 0;
  const node_id b = net.add_node([&](node_id, const bytes&) { ++delivered; });
  net.set_link(a, b, {.latency = 1ms});

  // In-flight toward a node that crashes before arrival: dropped at delivery.
  net.send(a, b, bytes{1});
  net.after(500us, [&] { net.crash_node(b); });
  // Send from a crashed node: dropped at send time.
  net.after(600us, [&] { EXPECT_FALSE(net.send(b, a, bytes{2})); });
  // Send toward a crashed node: dropped at send time.
  net.after(700us, [&] { EXPECT_FALSE(net.send(a, b, bytes{3})); });
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_dropped_faults(), 3u);

  net.restart_node(b);
  EXPECT_TRUE(net.node_up(b));
  EXPECT_TRUE(net.send(a, b, bytes{4}));
  net.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Simulation, PartitionBlocksBothDirectionsUntilHeal) {
  simulation net;
  int delivered = 0;
  const node_id a = net.add_node([&](node_id, const bytes&) { ++delivered; });
  const node_id b = net.add_node([&](node_id, const bytes&) { ++delivered; });
  net.partition(a, b);
  EXPECT_TRUE(net.partitioned(a, b));
  EXPECT_TRUE(net.partitioned(b, a));  // normalized pair
  EXPECT_FALSE(net.send(a, b, bytes{1}));
  EXPECT_FALSE(net.send(b, a, bytes{2}));
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_dropped_faults(), 2u);

  net.heal(a, b);
  EXPECT_FALSE(net.partitioned(a, b));
  EXPECT_TRUE(net.send(a, b, bytes{3}));
  net.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Simulation, PartitionDropsInFlightAtDeliveryTime) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  int delivered = 0;
  const node_id b = net.add_node([&](node_id, const bytes&) { ++delivered; });
  net.set_link(a, b, {.latency = 1ms});
  net.send(a, b, bytes{1});
  net.after(500us, [&] { net.partition(a, b); });
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.datagrams_dropped_faults(), 1u);
}

TEST(Simulation, ScheduledFaultsFireOnTheTimeline) {
  simulation net;
  const node_id a = net.add_node(nullptr);
  int delivered = 0;
  const node_id b = net.add_node([&](node_id, const bytes&) { ++delivered; });
  const fault_event schedule[] = {
      {2ms, fault_kind::crash, b, kInvalidNode, 0.0},
      {4ms, fault_kind::restart, b, kInvalidNode, 0.0},
  };
  net.schedule_faults(schedule);
  net.after(1ms, [&] { EXPECT_TRUE(net.send(a, b, bytes{1})); });
  net.after(3ms, [&] { EXPECT_FALSE(net.send(a, b, bytes{2})); });
  net.after(5ms, [&] { EXPECT_TRUE(net.send(a, b, bytes{3})); });
  net.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.faults_applied(), 2u);
}

TEST(Simulation, ParsesFaultScheduleText) {
  const auto schedule = simulation::parse_fault_schedule(
      "# warm-up, then chaos\n"
      "\n"
      "10 crash 2\n"
      "20 restart 2\n"
      "30 partition 0 1\n"
      "40 heal 0 1\n"
      "50 loss 0 2 0.25\n");
  ASSERT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule[0].at, 10ms);
  EXPECT_EQ(schedule[0].kind, fault_kind::crash);
  EXPECT_EQ(schedule[0].a, 2u);
  EXPECT_EQ(schedule[2].kind, fault_kind::partition);
  EXPECT_EQ(schedule[2].a, 0u);
  EXPECT_EQ(schedule[2].b, 1u);
  EXPECT_EQ(schedule[4].kind, fault_kind::loss);
  EXPECT_DOUBLE_EQ(schedule[4].value, 0.25);
}

TEST(Simulation, FaultScheduleParserRejectsMalformedLines) {
  EXPECT_THROW(simulation::parse_fault_schedule("10 explode 1\n"), std::invalid_argument);
  EXPECT_THROW(simulation::parse_fault_schedule("10 crash\n"), std::invalid_argument);
  EXPECT_THROW(simulation::parse_fault_schedule("banana crash 1\n"), std::invalid_argument);
  EXPECT_THROW(simulation::parse_fault_schedule("10 partition 1\n"), std::invalid_argument);
  EXPECT_THROW(simulation::parse_fault_schedule("10 loss 0 1\n"), std::invalid_argument);
}

TEST(Simulation, CheckedFaultParseReportsLineNumbers) {
  const auto parsed = simulation::parse_fault_schedule_checked(
      "# comment counts toward numbering\n"
      "10 crash 2\n"
      "20 explode 1\n"
      "\n"
      "30 loss 0 1 1.5\n"
      "40 heal 0 1\n"
      "50 crash 3 junk\n");
  EXPECT_FALSE(parsed.ok());
  // Collecting mode: the clean lines still come back, in order (the
  // trailing-garbage line is malformed, not "crash 3 with extras").
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].kind, fault_kind::crash);
  EXPECT_EQ(parsed.events[1].kind, fault_kind::heal);
  ASSERT_EQ(parsed.errors.size(), 3u);
  EXPECT_EQ(parsed.errors[0].line, 3u);
  EXPECT_NE(parsed.errors[0].message.find("unknown verb"), std::string::npos);
  EXPECT_EQ(parsed.errors[1].line, 5u);
  EXPECT_NE(parsed.errors[1].message.find("outside [0, 1]"), std::string::npos);
  EXPECT_EQ(parsed.errors[2].line, 7u);
  EXPECT_NE(parsed.errors[2].message.find("trailing garbage"), std::string::npos);
}

TEST(Simulation, CheckedFaultParseStrictReturnsNoEventsOnError) {
  const auto strict = simulation::parse_fault_schedule_checked(
      "10 crash 2\n"
      "20 explode 1\n",
      /*strict=*/true);
  EXPECT_FALSE(strict.ok());
  EXPECT_TRUE(strict.events.empty());
  ASSERT_EQ(strict.errors.size(), 1u);
  EXPECT_EQ(strict.errors[0].line, 2u);

  const auto clean = simulation::parse_fault_schedule_checked(
      "10 crash 2\n"
      "20 restart 2\n",
      /*strict=*/true);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.events.size(), 2u);
}

TEST(Simulation, CheckedFaultParseFlagsBadTimesAndOperands) {
  const auto parsed = simulation::parse_fault_schedule_checked(
      "-5 crash 1\n"
      "oops crash 1\n"
      "10 latency 0 1 -3\n"
      "10 partition 1\n");
  EXPECT_TRUE(parsed.events.empty());
  ASSERT_EQ(parsed.errors.size(), 4u);
  EXPECT_NE(parsed.errors[0].message.find("negative time"), std::string::npos);
  EXPECT_NE(parsed.errors[1].message.find("expected"), std::string::npos);
  EXPECT_NE(parsed.errors[2].message.find("negative latency"), std::string::npos);
  EXPECT_NE(parsed.errors[3].message.find("malformed operand"), std::string::npos);
}

TEST(Simulation, ThrowingFaultParseNamesEveryBadLine) {
  try {
    simulation::parse_fault_schedule(
        "10 crash 2\n"
        "20 explode 1\n"
        "30 loss 0 1 2.0\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(Simulation, LossFaultAdjustsLinkBothWays) {
  simulation net(5);
  const node_id a = net.add_node([](node_id, const bytes&) {});
  const node_id b = net.add_node([](node_id, const bytes&) {});
  const fault_event schedule[] = {{0ms, fault_kind::loss, a, b, 1.0}};
  net.schedule_faults(schedule);
  net.run();  // apply the fault
  EXPECT_FALSE(net.send(a, b, bytes{1}));
  EXPECT_FALSE(net.send(b, a, bytes{2}));
}

TEST(Simulation, DefaultLinkAppliesToUnconfiguredPairs) {
  simulation net;
  net.set_default_link({.latency = 7ms});
  const node_id a = net.add_node(nullptr);
  time_point arrival{};
  const node_id b = net.add_node([&](node_id, const bytes&) { arrival = net.now(); });
  net.send(a, b, bytes{1});
  net.run();
  EXPECT_EQ(arrival.time_since_epoch(), 7ms);
}

}  // namespace
}  // namespace interedge::sim
