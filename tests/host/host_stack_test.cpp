#include "host/host_stack.h"

#include <gtest/gtest.h>

#include "core/test_modules.h"
#include "deploy/deployment.h"

namespace interedge::host {
namespace {

using deploy::deployment;
using deploy::deployment_config;

struct fixture {
  fixture(bool allow_direct = true)
      : d(deployment_config{.hosts_allow_direct = allow_direct}) {
    dom = d.add_edomain();
    sn = d.add_sn(dom);
    alice = &d.add_host(dom);
    bob = &d.add_host(dom);
    d.interconnect();
    d.deploy_service_simple([] {
      return std::make_unique<core::testing::forwarder_module>();
    });
    d.sn(sn).env().deploy(
        std::make_unique<core::testing::echo_control_module>(ilp::svc::pubsub));
  }
  deployment d;
  deploy::edomain_id dom{};
  deploy::peer_id sn{};
  host_stack* alice = nullptr;
  host_stack* bob = nullptr;
};

TEST(HostStack, ConnectionCarriesServiceAndMetadata) {
  fixture f(false);
  std::vector<ilp::ilp_header> headers;
  f.bob->set_service_handler(ilp::svc::delivery,
                             [&](const ilp::ilp_header& h, bytes) { headers.push_back(h); });

  auto conn = f.alice->open(f.bob->addr(), ilp::svc::delivery);
  conn.set_option(ilp::meta_key::bundle_options, 0b101);
  conn.set_option_str(ilp::meta_key::payer, "enterprise-42");
  conn.send(to_bytes("x"));
  conn.send(to_bytes("y"));
  f.d.run();

  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].service, ilp::svc::delivery);
  EXPECT_EQ(headers[0].connection, headers[1].connection);
  EXPECT_EQ(headers[0].meta_u64(ilp::meta_key::bundle_options), 0b101u);
  EXPECT_EQ(headers[0].meta_str(ilp::meta_key::payer), "enterprise-42");
  EXPECT_EQ(headers[0].meta_u64(ilp::meta_key::src_addr), f.alice->addr());
  EXPECT_EQ(headers[0].meta_u64(ilp::meta_key::dest_addr), f.bob->addr());
  EXPECT_TRUE(headers[0].flags & ilp::kFlagFromHost);
}

TEST(HostStack, DistinctConnectionsGetDistinctIds) {
  fixture f;
  auto c1 = f.alice->open(f.bob->addr(), ilp::svc::delivery);
  auto c2 = f.alice->open(f.bob->addr(), ilp::svc::delivery);
  EXPECT_NE(c1.id(), c2.id());
}

TEST(HostStack, ControlReachesFirstHopSnAndReturns) {
  fixture f;
  std::vector<bytes> replies;
  f.alice->set_control_handler(ilp::svc::pubsub,
                               [&](const ilp::ilp_header&, bytes p) { replies.push_back(p); });
  f.alice->send_control(ilp::svc::pubsub, "subscribe", to_bytes("topic=x"));
  f.d.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(to_string(replies[0]), "topic=x");
}

TEST(HostStack, DirectPathUsedWhenSharingSn) {
  fixture f(true);
  int got = 0;
  f.bob->set_service_handler(ilp::svc::delivery,
                             [&](const ilp::ilp_header&, bytes) { ++got; });
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("direct"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.alice->direct_sends(), 1u);
}

TEST(HostStack, DirectPathDisabledRoutesViaSn) {
  fixture f(false);
  int got = 0;
  f.bob->set_service_handler(ilp::svc::delivery,
                             [&](const ilp::ilp_header&, bytes) { ++got; });
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("via sn"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.alice->direct_sends(), 0u);
  EXPECT_EQ(f.d.sn(f.sn).datapath_stats().received, 1u);
}

TEST(HostStack, ViaOverrideSelectsSpecificSn) {
  // "The host will use whichever first-hop SN is appropriate for a given
  // connection" — e.g. the SN run by whoever pays for the service.
  fixture f(true);
  const auto sn2 = f.d.add_sn(f.dom);
  f.d.sn(sn2).env().deploy(std::make_unique<core::testing::forwarder_module>());
  int got = 0;
  f.bob->set_service_handler(ilp::svc::delivery,
                             [&](const ilp::ilp_header&, bytes) { ++got; });

  auto conn = f.alice->open(f.bob->addr(), ilp::svc::delivery, sn2);
  conn.send(to_bytes("via sn2"));
  f.d.run();
  EXPECT_EQ(got, 1);
  // The chosen SN handles the packet first, then relays through bob's
  // first-hop SN (§5: "the return path would be the reverse, with the
  // cached content going from the SN paid for by the application provider
  // to the SN paid for by the enterprise and then to the client").
  EXPECT_EQ(f.d.sn(sn2).datapath_stats().received, 1u);
  EXPECT_EQ(f.d.sn(f.sn).datapath_stats().received, 1u);
}

TEST(HostStack, DefaultHandlerCatchesUnregisteredServices) {
  fixture f;
  int fallback_hits = 0;
  f.bob->set_default_handler([&](const ilp::ilp_header&, bytes) { ++fallback_hits; });
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("m"));
  f.d.run();
  EXPECT_EQ(fallback_hits, 1);
}

TEST(HostStack, FallbackSwitching) {
  host_config cfg;
  cfg.addr = 1;
  cfg.first_hop_sn = 10;
  cfg.fallback_sns = {11, 12};
  manual_clock clk;
  host_stack h(cfg, clk, [](ilp::peer_id, bytes) {}, [](nanoseconds, std::function<void()>) {},
               nullptr);
  EXPECT_EQ(h.first_hop_sn(), 10u);
  EXPECT_TRUE(h.switch_to_fallback());
  EXPECT_EQ(h.first_hop_sn(), 11u);
  EXPECT_TRUE(h.switch_to_fallback());
  EXPECT_EQ(h.first_hop_sn(), 12u);
  EXPECT_FALSE(h.switch_to_fallback());
}

TEST(HostStack, CountersTrackTraffic) {
  fixture f;
  f.bob->set_default_handler([](const ilp::ilp_header&, bytes) {});
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("1"));
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("2"));
  f.d.run();
  EXPECT_EQ(f.alice->packets_sent(), 2u);
  EXPECT_EQ(f.bob->packets_received(), 2u);
}

}  // namespace
}  // namespace interedge::host
