#include "ilp/header.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/serial.h"

namespace interedge::ilp {
namespace {

TEST(IlpHeader, EncodeDecodeRoundTrip) {
  ilp_header h;
  h.service = svc::pubsub;
  h.connection = 0xdeadbeefcafef00dull;
  h.flags = kFlagFromHost;
  h.set_meta_u64(meta_key::dest_addr, 42);
  h.set_meta_str(meta_key::control_op, "subscribe");
  h.set_meta(meta_key::service_data, to_bytes("topic=weather"));

  const ilp_header decoded = ilp_header::decode(h.encode());
  EXPECT_EQ(decoded, h);
}

TEST(IlpHeader, EmptyMetadata) {
  ilp_header h;
  h.service = svc::null_service;
  h.connection = 1;
  const ilp_header decoded = ilp_header::decode(h.encode());
  EXPECT_EQ(decoded, h);
  EXPECT_TRUE(decoded.metadata.empty());
}

TEST(IlpHeader, TypedAccessors) {
  ilp_header h;
  h.set_meta_u64(meta_key::dest_addr, 77);
  h.set_meta_str(meta_key::control_op, "join");
  EXPECT_EQ(h.meta_u64(meta_key::dest_addr), 77u);
  EXPECT_EQ(h.meta_str(meta_key::control_op), "join");
  EXPECT_FALSE(h.meta_u64(meta_key::src_addr).has_value());
  EXPECT_FALSE(h.meta(meta_key::payer).has_value());
}

TEST(IlpHeader, MalformedU64MetaReturnsNullopt) {
  ilp_header h;
  h.set_meta(meta_key::dest_addr, to_bytes("abc"));  // wrong width
  EXPECT_FALSE(h.meta_u64(meta_key::dest_addr).has_value());
}

TEST(IlpHeader, TruncatedInputThrows) {
  ilp_header h;
  h.service = 5;
  h.set_meta_str(meta_key::service_data, "x");
  bytes encoded = h.encode();
  encoded.resize(encoded.size() - 1);
  EXPECT_THROW(ilp_header::decode(encoded), serial_error);
}

TEST(IlpHeader, TrailingGarbageThrows) {
  ilp_header h;
  bytes encoded = h.encode();
  encoded.push_back(0xff);
  EXPECT_THROW(ilp_header::decode(encoded), serial_error);
}

TEST(IlpHeader, ArbitraryMetadataSizeSupported) {
  // "we place no limits on the length ... of a packet's ILP header"
  ilp_header h;
  h.service = svc::delivery;
  bytes big(60000);
  rng r(3);
  r.fill(big);
  h.set_meta(meta_key::service_data, big);
  const ilp_header decoded = ilp_header::decode(h.encode());
  EXPECT_EQ(decoded.meta(meta_key::service_data)->size(), big.size());
  EXPECT_EQ(decoded, h);
}

TEST(IlpHeader, ServicePrivateKeysPreserved) {
  ilp_header h;
  h.metadata[0x1234] = to_bytes("private");
  const ilp_header decoded = ilp_header::decode(h.encode());
  EXPECT_EQ(decoded.metadata.at(0x1234), to_bytes("private"));
}

// Trace-context carriage (ISSUE 5): the context is ordinary sealed
// metadata — it round-trips through encode/decode, absent means untraced,
// and an unknown context version reads as untraced rather than erroring.
TEST(IlpHeader, TraceContextRoundTripsThroughSealedMetadata) {
  ilp_header h;
  h.service = svc::delivery;
  EXPECT_FALSE(h.trace_ctx().has_value());  // common path: no ctx at all

  trace::trace_context ctx;
  ctx.trace_id = 0xfeedbeef;
  ctx.parent_span = 0x1234;
  ctx.hop_count = 2;
  ctx.flags = trace::kTraceCtxSampled;
  h.set_trace(ctx);
  const ilp_header decoded = ilp_header::decode(h.encode());
  const auto back = decoded.trace_ctx();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ctx);
}

TEST(IlpHeader, UnknownTraceContextVersionReadsAsUntraced) {
  ilp_header h;
  bytes wire = trace::trace_context{}.encode();
  wire[0] = trace::kTraceCtxVersion + 1;  // future layout
  h.set_meta(meta_key::trace_ctx, wire);
  const ilp_header decoded = ilp_header::decode(h.encode());
  // The header itself still round-trips — only the context is ignored.
  EXPECT_FALSE(decoded.trace_ctx().has_value());
  EXPECT_TRUE(decoded.meta(meta_key::trace_ctx).has_value());
}

// Property: random headers round-trip.
TEST(IlpHeader, RandomizedRoundTrip) {
  rng random(99);
  for (int i = 0; i < 100; ++i) {
    ilp_header h;
    h.service = static_cast<service_id>(random.next());
    h.connection = random.next();
    h.flags = static_cast<std::uint16_t>(random.next());
    const int n_meta = static_cast<int>(random.below(6));
    for (int m = 0; m < n_meta; ++m) {
      bytes v(random.below(64));
      random.fill(v);
      h.metadata[static_cast<std::uint16_t>(random.next())] = v;
    }
    EXPECT_EQ(ilp_header::decode(h.encode()), h);
  }
}

}  // namespace
}  // namespace interedge::ilp
