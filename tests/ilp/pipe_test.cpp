#include "ilp/pipe.h"

#include <gtest/gtest.h>

namespace interedge::ilp {
namespace {

struct pipe_pair {
  pipe initiator;
  pipe responder;
};

pipe_pair make_pair() {
  const bytes secret(32, 0x5a);
  return {pipe(secret, /*local_spi=*/100, /*remote_spi=*/200, /*initiator=*/true),
          pipe(secret, /*local_spi=*/200, /*remote_spi=*/100, /*initiator=*/false)};
}

ilp_header sample_header() {
  ilp_header h;
  h.service = svc::delivery;
  h.connection = 777;
  h.set_meta_u64(meta_key::dest_addr, 42);
  return h;
}

TEST(Pipe, SealOpenRoundTrip) {
  auto [a, b] = make_pair();
  const bytes wire = a.seal(sample_header(), to_bytes("payload"));
  ASSERT_EQ(static_cast<msg_kind>(wire[0]), msg_kind::data);
  const auto opened = b.open(const_byte_span(wire).subspan(1));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->first, sample_header());
  EXPECT_EQ(to_string(opened->second), "payload");
}

TEST(Pipe, BothDirectionsIndependent) {
  auto [a, b] = make_pair();
  const bytes wire_ab = a.seal(sample_header(), to_bytes("a->b"));
  const bytes wire_ba = b.seal(sample_header(), to_bytes("b->a"));
  EXPECT_TRUE(b.open(const_byte_span(wire_ab).subspan(1)).has_value());
  EXPECT_TRUE(a.open(const_byte_span(wire_ba).subspan(1)).has_value());
  // Cross direction must fail (different directional keys).
  EXPECT_FALSE(a.open(const_byte_span(wire_ab).subspan(1)).has_value());
}

TEST(Pipe, PayloadNotEncryptedHeaderIs) {
  auto [a, b] = make_pair();
  (void)b;
  const bytes payload = to_bytes("cleartext-payload-xyzzy");
  const bytes wire = a.seal(sample_header(), payload);
  // Payload appears verbatim in the wire image (endpoint-encrypted in real
  // deployments; the pipe does not touch it).
  const std::string wire_str(wire.begin(), wire.end());
  EXPECT_NE(wire_str.find("cleartext-payload-xyzzy"), std::string::npos);
  // The header's metadata must NOT appear in clear.
  ilp_header h = sample_header();
  h.set_meta_str(meta_key::control_op, "secret-operation-name");
  const bytes wire2 = a.seal(h, payload);
  const std::string wire2_str(wire2.begin(), wire2.end());
  EXPECT_EQ(wire2_str.find("secret-operation-name"), std::string::npos);
}

TEST(Pipe, HeaderPayloadSpliceDetected) {
  auto [a, b] = make_pair();
  const bytes wire1 = a.seal(sample_header(), to_bytes("short"));
  // Graft a longer payload onto wire1's sealed header.
  bytes spliced(wire1.begin(), wire1.end());
  spliced.insert(spliced.end(), 10, 'X');
  EXPECT_FALSE(b.open(const_byte_span(spliced).subspan(1)).has_value());
  EXPECT_EQ(b.stats().rejected, 1u);
}

TEST(Pipe, TamperedHeaderRejected) {
  auto [a, b] = make_pair();
  bytes wire = a.seal(sample_header(), to_bytes("p"));
  wire[3] ^= 0x01;  // inside the sealed header region
  EXPECT_FALSE(b.open(const_byte_span(wire).subspan(1)).has_value());
}

TEST(Pipe, OutOfOrderDelivery) {
  auto [a, b] = make_pair();
  std::vector<bytes> wires;
  for (int i = 0; i < 5; ++i) {
    ilp_header h = sample_header();
    h.connection = static_cast<connection_id>(i);
    wires.push_back(a.seal(h, to_bytes("m" + std::to_string(i))));
  }
  // Deliver in reverse.
  for (int i = 4; i >= 0; --i) {
    const auto opened = b.open(const_byte_span(wires[i]).subspan(1));
    ASSERT_TRUE(opened.has_value()) << i;
    EXPECT_EQ(opened->first.connection, static_cast<connection_id>(i));
  }
}

TEST(Pipe, RekeyKeepsPipeUsable) {
  auto [a, b] = make_pair();
  const bytes before = a.seal(sample_header(), to_bytes("before"));
  a.rotate_tx();
  b.rotate_rx();
  const bytes after = a.seal(sample_header(), to_bytes("after"));
  // Both epochs decrypt during the transition window.
  EXPECT_TRUE(b.open(const_byte_span(before).subspan(1)).has_value());
  EXPECT_TRUE(b.open(const_byte_span(after).subspan(1)).has_value());
  EXPECT_EQ(a.stats().rekeys, 1u);
  EXPECT_EQ(a.tx_epoch(), 1u);
}

TEST(Pipe, EmptyPayload) {
  auto [a, b] = make_pair();
  const auto opened = b.open(const_byte_span(a.seal(sample_header(), {})).subspan(1));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->second.empty());
}

TEST(Pipe, GarbageInputRejectedNotThrown) {
  auto [a, b] = make_pair();
  (void)a;
  EXPECT_FALSE(b.open(to_bytes("complete garbage")).has_value());
  EXPECT_FALSE(b.open({}).has_value());
}

TEST(Pipe, SealIntoMatchesSeal) {
  auto [a, a2] = make_pair();
  pipe b(bytes(32, 0x5a), 100, 200, true);  // same keys/sequence as `a`
  (void)a2;
  const bytes wire = a.seal(sample_header(), to_bytes("payload"));
  bytes wire2;
  b.seal_into(sample_header(), to_bytes("payload"), wire2);
  EXPECT_EQ(wire2, wire);
}

TEST(Pipe, DecryptBatchRoundTrip) {
  auto [a, b] = make_pair();
  std::vector<bytes> wires;
  std::vector<const_byte_span> bodies;
  for (int i = 0; i < 6; ++i) {
    ilp_header h = sample_header();
    h.connection = static_cast<connection_id>(i);
    wires.push_back(a.seal(h, to_bytes("m" + std::to_string(i))));
  }
  for (const bytes& w : wires) bodies.push_back(const_byte_span(w).subspan(1));

  std::vector<std::optional<opened_packet>> out;
  EXPECT_EQ(b.decrypt_batch(bodies, out), 6u);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(out[i].has_value()) << i;
    EXPECT_EQ(out[i]->header.connection, static_cast<connection_id>(i));
    EXPECT_EQ(to_string(out[i]->payload), "m" + std::to_string(i));
  }
  EXPECT_EQ(b.stats().opened, 6u);
}

TEST(Pipe, DecryptBatchSkipsBadPacket) {
  auto [a, b] = make_pair();
  std::vector<bytes> wires;
  for (int i = 0; i < 3; ++i) {
    wires.push_back(a.seal(sample_header(), to_bytes("ok")));
  }
  wires[1][4] ^= 0x01;  // corrupt the middle packet's sealed header
  std::vector<const_byte_span> bodies;
  for (const bytes& w : wires) bodies.push_back(const_byte_span(w).subspan(1));

  std::vector<std::optional<opened_packet>> out;
  EXPECT_EQ(b.decrypt_batch(bodies, out), 2u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].has_value());
  EXPECT_FALSE(out[1].has_value());
  EXPECT_TRUE(out[2].has_value());
  EXPECT_EQ(b.stats().rejected, 1u);
}

TEST(Pipe, StatsCountSealedAndOpened) {
  auto [a, b] = make_pair();
  for (int i = 0; i < 3; ++i) {
    const bytes w = a.seal(sample_header(), {});
    b.open(const_byte_span(w).subspan(1));
  }
  EXPECT_EQ(a.stats().sealed, 3u);
  EXPECT_EQ(b.stats().opened, 3u);
}

}  // namespace
}  // namespace interedge::ilp
