// Pipe manager tests run two managers over the deterministic simulator.
#include "ilp/pipe_manager.h"

#include <gtest/gtest.h>

#include "simnet/simulation.h"

namespace interedge::ilp {
namespace {

using sim::node_id;
using sim::simulation;

struct element {
  node_id node = 0;
  std::unique_ptr<pipe_manager> mgr;
  std::vector<std::pair<ilp_header, bytes>> received;
};

// Wires a pipe_manager to a simulator node.
std::unique_ptr<element> make_element(simulation& net) {
  auto e = std::make_unique<element>();
  e->node = net.add_node(nullptr);
  e->mgr = std::make_unique<pipe_manager>(
      e->node,
      [&net, node = e->node](peer_id peer, bytes datagram) {
        net.send(node, static_cast<node_id>(peer), std::move(datagram));
      },
      [raw = e.get()](peer_id, const ilp_header& h, bytes payload) {
        raw->received.emplace_back(h, std::move(payload));
      });
  net.set_handler(e->node, [raw = e.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return e;
}

ilp_header header_for(connection_id conn) {
  ilp_header h;
  h.service = svc::null_service;
  h.connection = conn;
  return h;
}

TEST(PipeManager, EstablishesOnFirstSend) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  a->mgr->send(b->node, header_for(1), to_bytes("hello"));
  EXPECT_EQ(a->mgr->pending_handshakes(), 1u);
  net.run();

  EXPECT_TRUE(a->mgr->has_pipe(b->node));
  EXPECT_TRUE(b->mgr->has_pipe(a->node));
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(to_string(b->received[0].second), "hello");
  EXPECT_EQ(a->mgr->pending_handshakes(), 0u);
}

TEST(PipeManager, QueuedPacketsFlushInOrder) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  for (int i = 0; i < 5; ++i) {
    a->mgr->send(b->node, header_for(static_cast<connection_id>(i)), to_bytes("m"));
  }
  net.run();
  ASSERT_EQ(b->received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b->received[i].first.connection, static_cast<connection_id>(i));
  }
}

TEST(PipeManager, BidirectionalTraffic) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  a->mgr->send(b->node, header_for(1), to_bytes("ping"));
  net.run();
  b->mgr->send(a->node, header_for(2), to_bytes("pong"));
  net.run();

  ASSERT_EQ(a->received.size(), 1u);
  EXPECT_EQ(to_string(a->received[0].second), "pong");
  // One handshake total (the reverse direction reuses the same pipe).
  EXPECT_EQ(a->mgr->pipe_count(), 1u);
  EXPECT_EQ(b->mgr->pipe_count(), 1u);
}

TEST(PipeManager, SimultaneousOpenConvergesToOnePipe) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  // Both sides send before any handshake completes.
  a->mgr->send(b->node, header_for(1), to_bytes("from-a"));
  b->mgr->send(a->node, header_for(2), to_bytes("from-b"));
  net.run();

  EXPECT_EQ(a->mgr->pipe_count(), 1u);
  EXPECT_EQ(b->mgr->pipe_count(), 1u);
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(to_string(b->received[0].second), "from-a");
  ASSERT_EQ(a->received.size(), 1u);
  EXPECT_EQ(to_string(a->received[0].second), "from-b");
}

TEST(PipeManager, ExplicitConnectEstablishesIdlePipe) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();
  EXPECT_TRUE(a->mgr->has_pipe(b->node));
  EXPECT_TRUE(b->mgr->has_pipe(a->node));
  EXPECT_TRUE(b->received.empty());
}

TEST(PipeManager, ManyPeersManyPipes) {
  simulation net;
  auto hub = make_element(net);
  std::vector<std::unique_ptr<element>> spokes;
  for (int i = 0; i < 20; ++i) spokes.push_back(make_element(net));

  for (auto& s : spokes) {
    hub->mgr->send(s->node, header_for(9), to_bytes("fanout"));
  }
  net.run();
  EXPECT_EQ(hub->mgr->pipe_count(), 20u);
  for (auto& s : spokes) {
    ASSERT_EQ(s->received.size(), 1u);
  }
}

TEST(PipeManager, RotateAllKeepsTrafficFlowing) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->send(b->node, header_for(1), to_bytes("pre"));
  net.run();

  a->mgr->rotate_all();
  b->mgr->rotate_all();
  a->mgr->send(b->node, header_for(2), to_bytes("post"));
  net.run();

  ASSERT_EQ(b->received.size(), 2u);
  EXPECT_EQ(to_string(b->received[1].second), "post");
}

TEST(PipeManager, DataBeforePipeIsDropped) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  // Craft a data message without a pipe: kind=3 plus garbage.
  bytes fake{static_cast<std::uint8_t>(msg_kind::data), 1, 2, 3};
  net.send(a->node, b->node, fake);
  net.run();
  EXPECT_TRUE(b->received.empty());
}

TEST(PipeManager, MalformedHandshakeIgnored) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  bytes bad_init{static_cast<std::uint8_t>(msg_kind::handshake_init), 0x01};
  net.send(a->node, b->node, bad_init);
  net.run();
  EXPECT_EQ(b->mgr->pipe_count(), 0u);
}

TEST(PipeManager, LossyHandshakeRetriesViaResend) {
  // Packets (including handshakes) can be lost; a later send retries the
  // handshake because the first one never completed. This test drops ALL
  // packets initially, then heals the link.
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  net.set_link(a->node, b->node, {.loss_rate = 1.0});

  a->mgr->send(b->node, header_for(1), to_bytes("lost"));
  net.run();
  EXPECT_FALSE(a->mgr->has_pipe(b->node));

  net.set_link(a->node, b->node, {.loss_rate = 0.0});
  // The pending handshake is still outstanding; a fresh connect() is a
  // no-op but sending again queues more data. Re-issue the handshake by
  // simulating the host-level retry.
  a->mgr->send(b->node, header_for(2), to_bytes("queued"));
  EXPECT_EQ(a->mgr->pending_handshakes(), 1u);
  // No response will ever come for the lost init; upper layers re-connect.
  // (Timer-driven retry lives in the host stack, tested there.)
}

// ---- pipe liveness (DESIGN.md §10) --------------------------------------

using namespace std::chrono_literals;

// Drives the managers' liveness off the simulator clock: pre-schedules a
// tick per interval up to `until`, then runs to that point. Pre-scheduling
// (rather than self-rescheduling events) keeps the queue drainable, so
// tests can keep using net.run() afterwards.
void drive_liveness(simulation& net, std::initializer_list<element*> elems,
                    nanoseconds interval, nanoseconds until) {
  for (element* e : elems) {
    e->mgr->enable_liveness(net.sim_clock(), {.keepalive_interval = interval});
  }
  for (auto t = net.now() + interval; t <= time_point(until); t += interval) {
    for (element* e : elems) {
      net.at(t, [e] { e->mgr->liveness_tick(); });
    }
  }
  net.run_until(time_point(until));
}

TEST(PipeLiveness, ProbesAckedAndRttTracked) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  net.set_link_symmetric(a->node, b->node, {.latency = 1ms});
  a->mgr->connect(b->node);
  net.run();

  drive_liveness(net, {a.get(), b.get()}, 10ms, 100ms);

  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_GE(st->probes_sent, 5u);
  EXPECT_GE(st->acks_received, 4u);
  EXPECT_EQ(st->missed, 0u);
  EXPECT_FALSE(st->down);
  // RTT EWMA converges to the 2ms round trip.
  EXPECT_NEAR(static_cast<double>(st->rtt_ns), 2e6, 5e5);
  // Keepalives are invisible to the data plane.
  EXPECT_TRUE(a->received.empty());
  EXPECT_TRUE(b->received.empty());
}

TEST(PipeLiveness, MissBudgetDeclaresPartitionedPeerDown) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();

  std::vector<std::pair<peer_id, bool>> transitions;
  a->mgr->set_peer_status_hook(
      [&](peer_id peer, bool up) { transitions.emplace_back(peer, up); });

  net.partition(a->node, b->node);
  drive_liveness(net, {a.get()}, 10ms, 60ms);

  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->down);
  EXPECT_EQ(st->times_down, 1u);
  EXPECT_GE(st->missed, 3u);  // the default miss budget
  EXPECT_FALSE(a->mgr->has_pipe(b->node));
  ASSERT_GE(transitions.size(), 1u);
  EXPECT_EQ(transitions[0], std::make_pair(peer_id{b->node}, false));
  // Detection within the budget: 3 missed 10ms probes ≈ 40ms of partition.
  EXPECT_LE(net.now().time_since_epoch(), 60ms);
}

TEST(PipeLiveness, ReconnectsAfterHealWithFreshKeys) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();
  const std::uint64_t handshakes_before = a->mgr->handshakes_completed();

  std::vector<bool> transitions;
  a->mgr->set_peer_status_hook([&](peer_id, bool up) { transitions.push_back(up); });

  net.partition(a->node, b->node);
  net.after(200ms, [&] { net.heal(a->node, b->node); });
  drive_liveness(net, {a.get(), b.get()}, 10ms, 1000ms);

  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_FALSE(st->down);
  EXPECT_GE(st->reconnect_attempts, 1u);
  EXPECT_TRUE(a->mgr->has_pipe(b->node));
  // The recovery ran a fresh handshake — the forced rekey.
  EXPECT_GT(a->mgr->handshakes_completed(), handshakes_before);
  // down, then up again.
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_FALSE(transitions.front());
  EXPECT_TRUE(transitions.back());

  // Traffic flows on the re-established pipe.
  a->mgr->send(b->node, header_for(5), to_bytes("post-heal"));
  net.run();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(to_string(b->received[0].second), "post-heal");
}

TEST(PipeLiveness, BackoffGrowsWhilePeerStaysDown) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();

  net.partition(a->node, b->node);
  drive_liveness(net, {a.get()}, 10ms, 2000ms);

  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->down);
  EXPECT_GE(st->reconnect_attempts, 2u);
  // Exponential backoff: attempts over 2s are far fewer than the ~196
  // tick opportunities after detection.
  EXPECT_LE(st->reconnect_attempts, 16u);
}

TEST(PipeLiveness, DataTrafficSuppressesFalsePositives) {
  // A peer that answers data (so its rx path works) must not be declared
  // down just because ticks outpace acks: authenticated data resets the
  // miss count. Model an asymmetric delay where acks straggle.
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  net.set_link(a->node, b->node, {.latency = 1ms});
  net.set_link(b->node, a->node, {.latency = 25ms});  // acks straggle
  a->mgr->connect(b->node);
  net.run();

  a->mgr->enable_liveness(net.sim_clock(), {.keepalive_interval = 10ms, .miss_budget = 3});
  // b sends data to a every 5 ms, keeping the pipe visibly alive at a.
  std::function<void()> chatter = [&] {
    b->mgr->send(a->node, header_for(1), to_bytes("d"));
    net.after(5ms, chatter);
  };
  net.after(5ms, chatter);
  std::function<void()> tick = [&] {
    a->mgr->liveness_tick();
    net.after(10ms, tick);
  };
  net.after(10ms, tick);
  net.run_until(time_point(200ms));

  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_FALSE(st->down);
  EXPECT_EQ(st->times_down, 0u);
}

TEST(PipeLiveness, ProbeOnWireIsOpaque) {
  // Keepalives are sealed like data: a tap must never see plaintext probe
  // metadata (the sequence number lives in an encrypted header).
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();

  std::vector<bytes> wire;
  net.set_tap([&](node_id, node_id, const bytes& d) { wire.push_back(d); });
  a->mgr->enable_liveness(net.sim_clock(), {.keepalive_interval = 10ms});
  a->mgr->liveness_tick();
  net.run();

  ASSERT_GE(wire.size(), 2u);  // probe + ack
  EXPECT_EQ(wire[0][0], static_cast<std::uint8_t>(msg_kind::keepalive));
  EXPECT_EQ(wire[1][0], static_cast<std::uint8_t>(msg_kind::keepalive_ack));
  // Beyond the kind byte the messages are ciphertext — no fixed plaintext
  // marker survives on the wire (PSP-encrypted header + empty payload).
  const liveness_stats* st = a->mgr->liveness_for(b->node);
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->acks_received, 1u);
}

}  // namespace
}  // namespace interedge::ilp
