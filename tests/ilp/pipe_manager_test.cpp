// Pipe manager tests run two managers over the deterministic simulator.
#include "ilp/pipe_manager.h"

#include <gtest/gtest.h>

#include "simnet/simulation.h"

namespace interedge::ilp {
namespace {

using sim::node_id;
using sim::simulation;

struct element {
  node_id node = 0;
  std::unique_ptr<pipe_manager> mgr;
  std::vector<std::pair<ilp_header, bytes>> received;
};

// Wires a pipe_manager to a simulator node.
std::unique_ptr<element> make_element(simulation& net) {
  auto e = std::make_unique<element>();
  e->node = net.add_node(nullptr);
  e->mgr = std::make_unique<pipe_manager>(
      e->node,
      [&net, node = e->node](peer_id peer, bytes datagram) {
        net.send(node, static_cast<node_id>(peer), std::move(datagram));
      },
      [raw = e.get()](peer_id, const ilp_header& h, bytes payload) {
        raw->received.emplace_back(h, std::move(payload));
      });
  net.set_handler(e->node, [raw = e.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return e;
}

ilp_header header_for(connection_id conn) {
  ilp_header h;
  h.service = svc::null_service;
  h.connection = conn;
  return h;
}

TEST(PipeManager, EstablishesOnFirstSend) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  a->mgr->send(b->node, header_for(1), to_bytes("hello"));
  EXPECT_EQ(a->mgr->pending_handshakes(), 1u);
  net.run();

  EXPECT_TRUE(a->mgr->has_pipe(b->node));
  EXPECT_TRUE(b->mgr->has_pipe(a->node));
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(to_string(b->received[0].second), "hello");
  EXPECT_EQ(a->mgr->pending_handshakes(), 0u);
}

TEST(PipeManager, QueuedPacketsFlushInOrder) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  for (int i = 0; i < 5; ++i) {
    a->mgr->send(b->node, header_for(static_cast<connection_id>(i)), to_bytes("m"));
  }
  net.run();
  ASSERT_EQ(b->received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b->received[i].first.connection, static_cast<connection_id>(i));
  }
}

TEST(PipeManager, BidirectionalTraffic) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  a->mgr->send(b->node, header_for(1), to_bytes("ping"));
  net.run();
  b->mgr->send(a->node, header_for(2), to_bytes("pong"));
  net.run();

  ASSERT_EQ(a->received.size(), 1u);
  EXPECT_EQ(to_string(a->received[0].second), "pong");
  // One handshake total (the reverse direction reuses the same pipe).
  EXPECT_EQ(a->mgr->pipe_count(), 1u);
  EXPECT_EQ(b->mgr->pipe_count(), 1u);
}

TEST(PipeManager, SimultaneousOpenConvergesToOnePipe) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);

  // Both sides send before any handshake completes.
  a->mgr->send(b->node, header_for(1), to_bytes("from-a"));
  b->mgr->send(a->node, header_for(2), to_bytes("from-b"));
  net.run();

  EXPECT_EQ(a->mgr->pipe_count(), 1u);
  EXPECT_EQ(b->mgr->pipe_count(), 1u);
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(to_string(b->received[0].second), "from-a");
  ASSERT_EQ(a->received.size(), 1u);
  EXPECT_EQ(to_string(a->received[0].second), "from-b");
}

TEST(PipeManager, ExplicitConnectEstablishesIdlePipe) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->connect(b->node);
  net.run();
  EXPECT_TRUE(a->mgr->has_pipe(b->node));
  EXPECT_TRUE(b->mgr->has_pipe(a->node));
  EXPECT_TRUE(b->received.empty());
}

TEST(PipeManager, ManyPeersManyPipes) {
  simulation net;
  auto hub = make_element(net);
  std::vector<std::unique_ptr<element>> spokes;
  for (int i = 0; i < 20; ++i) spokes.push_back(make_element(net));

  for (auto& s : spokes) {
    hub->mgr->send(s->node, header_for(9), to_bytes("fanout"));
  }
  net.run();
  EXPECT_EQ(hub->mgr->pipe_count(), 20u);
  for (auto& s : spokes) {
    ASSERT_EQ(s->received.size(), 1u);
  }
}

TEST(PipeManager, RotateAllKeepsTrafficFlowing) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  a->mgr->send(b->node, header_for(1), to_bytes("pre"));
  net.run();

  a->mgr->rotate_all();
  b->mgr->rotate_all();
  a->mgr->send(b->node, header_for(2), to_bytes("post"));
  net.run();

  ASSERT_EQ(b->received.size(), 2u);
  EXPECT_EQ(to_string(b->received[1].second), "post");
}

TEST(PipeManager, DataBeforePipeIsDropped) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  // Craft a data message without a pipe: kind=3 plus garbage.
  bytes fake{static_cast<std::uint8_t>(msg_kind::data), 1, 2, 3};
  net.send(a->node, b->node, fake);
  net.run();
  EXPECT_TRUE(b->received.empty());
}

TEST(PipeManager, MalformedHandshakeIgnored) {
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  bytes bad_init{static_cast<std::uint8_t>(msg_kind::handshake_init), 0x01};
  net.send(a->node, b->node, bad_init);
  net.run();
  EXPECT_EQ(b->mgr->pipe_count(), 0u);
}

TEST(PipeManager, LossyHandshakeRetriesViaResend) {
  // Packets (including handshakes) can be lost; a later send retries the
  // handshake because the first one never completed. This test drops ALL
  // packets initially, then heals the link.
  simulation net;
  auto a = make_element(net);
  auto b = make_element(net);
  net.set_link(a->node, b->node, {.loss_rate = 1.0});

  a->mgr->send(b->node, header_for(1), to_bytes("lost"));
  net.run();
  EXPECT_FALSE(a->mgr->has_pipe(b->node));

  net.set_link(a->node, b->node, {.loss_rate = 0.0});
  // The pending handshake is still outstanding; a fresh connect() is a
  // no-op but sending again queues more data. Re-issue the handshake by
  // simulating the host-level retry.
  a->mgr->send(b->node, header_for(2), to_bytes("queued"));
  EXPECT_EQ(a->mgr->pending_handshakes(), 1u);
  // No response will ever come for the lost init; upper layers re-connect.
  // (Timer-driven retry lives in the host stack, tested there.)
}

}  // namespace
}  // namespace interedge::ilp
