#include "tunnel/tunnel.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace interedge::tunnel {
namespace {

using namespace std::chrono_literals;

crypto::x25519_keypair keys(std::uint8_t fill) {
  crypto::x25519_key seed;
  seed.fill(fill);
  return crypto::x25519_keypair_from_seed(seed);
}

struct endpoint_pair {
  endpoint_pair()
      : a(keys(1), keys(2).public_key), b(keys(2), keys(1).public_key) {}
  tunnel_endpoint a;
  tunnel_endpoint b;
  bool handshake() {
    const bytes init = a.create_initiation();
    const auto resp = b.consume_initiation(init);
    if (!resp) return false;
    return a.consume_response(*resp);
  }
};

TEST(Tunnel, HandshakeMessageSizesMatchWireguard) {
  endpoint_pair p;
  const bytes init = p.a.create_initiation();
  EXPECT_EQ(init.size(), kInitiationSize);  // 148 bytes
  const auto resp = p.b.consume_initiation(init);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->size(), kResponseSize);  // 92 bytes
}

TEST(Tunnel, HandshakeEstablishesBothEnds) {
  endpoint_pair p;
  EXPECT_FALSE(p.a.established());
  ASSERT_TRUE(p.handshake());
  EXPECT_TRUE(p.a.established());
  EXPECT_TRUE(p.b.established());
}

TEST(Tunnel, TransportRoundTripBothDirections) {
  endpoint_pair p;
  ASSERT_TRUE(p.handshake());
  const auto from_a = p.b.open(p.a.seal(to_bytes("a->b data")));
  ASSERT_TRUE(from_a.has_value());
  EXPECT_EQ(to_string(*from_a), "a->b data");
  const auto from_b = p.a.open(p.b.seal(to_bytes("b->a data")));
  ASSERT_TRUE(from_b.has_value());
  EXPECT_EQ(to_string(*from_b), "b->a data");
}

TEST(Tunnel, WrongPeerInitiationRejected) {
  // c is configured to peer with d, not with b: b must reject c's
  // initiation because the sealed static key does not match.
  tunnel_endpoint c(keys(3), keys(4).public_key);
  tunnel_endpoint b(keys(2), keys(1).public_key);
  const bytes init = c.create_initiation();
  EXPECT_FALSE(b.consume_initiation(init).has_value());
  EXPECT_EQ(b.stats().rejected, 1u);
}

TEST(Tunnel, TamperedInitiationRejected) {
  endpoint_pair p;
  bytes init = p.a.create_initiation();
  init[50] ^= 1;  // inside the sealed static key
  EXPECT_FALSE(p.b.consume_initiation(init).has_value());
}

TEST(Tunnel, TamperedTransportRejected) {
  endpoint_pair p;
  ASSERT_TRUE(p.handshake());
  bytes sealed = p.a.seal(to_bytes("x"));
  sealed.back() ^= 1;
  EXPECT_FALSE(p.b.open(sealed).has_value());
}

TEST(Tunnel, RekeyChangesTransportKeys) {
  endpoint_pair p;
  ASSERT_TRUE(p.handshake());
  const bytes old_packet = p.a.seal(to_bytes("old"));
  ASSERT_TRUE(p.handshake());  // rekey
  // A packet sealed under the old keys no longer opens.
  EXPECT_FALSE(p.b.open(old_packet).has_value());
  // New keys work.
  EXPECT_TRUE(p.b.open(p.a.seal(to_bytes("new"))).has_value());
}

TEST(Tunnel, OutOfOrderTransportPackets) {
  endpoint_pair p;
  ASSERT_TRUE(p.handshake());
  const bytes w1 = p.a.seal(to_bytes("1"));
  const bytes w2 = p.a.seal(to_bytes("2"));
  EXPECT_EQ(to_string(*p.b.open(w2)), "2");
  EXPECT_EQ(to_string(*p.b.open(w1)), "1");
}

TEST(TunnelPair, RekeyReportsWireBytes) {
  tunnel_pair pair(10, 11);
  const std::size_t wire = pair.rekey();
  EXPECT_EQ(wire, kInitiationSize + kResponseSize);  // 240 bytes per rekey
  EXPECT_TRUE(pair.verify_transport());
}

TEST(TunnelFleet, StaggeredRotation) {
  tunnel_fleet fleet(100, 3min, 7);
  EXPECT_EQ(fleet.size(), 100u);
  // Over one full interval, every tunnel rotates exactly once.
  std::size_t total = 0;
  for (int step = 0; step <= 18; ++step) {  // t = 0..180s inclusive
    total += fleet.rotate_due(time_point(step * 10s));
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(fleet.total_rekeys(), 100u);
  EXPECT_EQ(fleet.total_handshake_bytes(), 100u * (kInitiationSize + kResponseSize));
}

TEST(TunnelFleet, SecondIntervalRotatesAgain) {
  tunnel_fleet fleet(50, 1min, 3);
  fleet.rotate_due(time_point(1min));
  EXPECT_EQ(fleet.total_rekeys(), 50u);
  fleet.rotate_due(time_point(2min));
  EXPECT_EQ(fleet.total_rekeys(), 100u);
}

TEST(TunnelFleet, NoEarlyRotation) {
  tunnel_fleet fleet(10, 1h, 3);
  // Deadlines are staggered within the first hour; at t=0, almost nothing
  // should be due (only tunnels whose stagger landed at exactly 0).
  const std::size_t due = fleet.rotate_due(time_point(0ns));
  EXPECT_LE(due, 1u);
}

}  // namespace
}  // namespace interedge::tunnel
