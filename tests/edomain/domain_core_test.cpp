#include "edomain/domain_core.h"

#include <gtest/gtest.h>

namespace interedge::edomain {
namespace {

crypto::x25519_key any_owner() {
  crypto::x25519_key k;
  k.fill(0x42);
  return k;
}

class DomainCoreFixture : public ::testing::Test {
 protected:
  DomainCoreFixture() : core_a(1, global), core_b(2, global) {
    global.create_group("g", any_owner());
  }
  lookup::lookup_service global;
  domain_core core_a;
  domain_core core_b;
};

TEST_F(DomainCoreFixture, SnRegistry) {
  core_a.add_sn(10);
  core_a.add_sn(11);
  EXPECT_EQ(core_a.sns().size(), 2u);
}

TEST_F(DomainCoreFixture, FirstJoinNotifiesLookup) {
  core_a.group_join("g", 10);
  const auto rec = global.find_group("g");
  EXPECT_EQ(rec->member_edomains, (std::set<edomain_id>{1}));
}

TEST_F(DomainCoreFixture, SecondLocalJoinDoesNotDuplicate) {
  core_a.group_join("g", 10);
  core_a.group_join("g", 11);
  EXPECT_EQ(global.find_group("g")->member_edomains.size(), 1u);
  EXPECT_EQ(core_a.member_sns("g").size(), 2u);
}

TEST_F(DomainCoreFixture, LastLeaveWithdrawsFromLookup) {
  core_a.group_join("g", 10);
  core_a.group_join("g", 10);  // two members behind the same SN
  core_a.group_leave("g", 10);
  EXPECT_TRUE(core_a.has_local_members("g"));
  core_a.group_leave("g", 10);
  EXPECT_FALSE(core_a.has_local_members("g"));
  EXPECT_TRUE(global.find_group("g")->member_edomains.empty());
}

TEST_F(DomainCoreFixture, LeaveWithoutJoinIsSafe) {
  EXPECT_NO_THROW(core_a.group_leave("g", 10));
  EXPECT_NO_THROW(core_a.group_leave("missing", 10));
}

TEST_F(DomainCoreFixture, RegisterSenderSeesLocalAndRemote) {
  core_a.group_join("g", 10);  // local member on SN 10
  core_b.group_join("g", 20);  // remote member in edomain 2

  const auto info = core_a.register_sender("g", 11);
  EXPECT_EQ(info.local_member_sns, (std::vector<peer_id>{10}));
  EXPECT_EQ(info.remote_member_edomains, (std::vector<edomain_id>{2}));
}

TEST_F(DomainCoreFixture, SenderViewTracksRemoteChanges) {
  core_a.register_sender("g", 11);
  EXPECT_TRUE(core_a.remote_member_edomains("g").empty());
  core_b.group_join("g", 20);
  EXPECT_EQ(core_a.remote_member_edomains("g"), (std::vector<edomain_id>{2}));
  core_b.group_leave("g", 20);
  EXPECT_TRUE(core_a.remote_member_edomains("g").empty());
}

TEST_F(DomainCoreFixture, OwnEdomainExcludedFromRemoteView) {
  core_a.group_join("g", 10);
  core_a.register_sender("g", 11);
  EXPECT_TRUE(core_a.remote_member_edomains("g").empty());
}

TEST_F(DomainCoreFixture, MemberWatchFiresOnSnTransitions) {
  std::vector<std::pair<peer_id, bool>> events;
  core_a.watch_members("g", 99, [&](const std::string&, peer_id sn, bool added) {
    events.emplace_back(sn, added);
  });
  core_a.group_join("g", 10);
  core_a.group_join("g", 10);  // same SN: no new event
  core_a.group_join("g", 11);
  core_a.group_leave("g", 10);
  core_a.group_leave("g", 10);  // SN 10 now empty: removal event
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], std::make_pair(peer_id{10}, true));
  EXPECT_EQ(events[1], std::make_pair(peer_id{11}, true));
  EXPECT_EQ(events[2], std::make_pair(peer_id{10}, false));

  core_a.unwatch_members("g", 99);
  core_a.group_leave("g", 11);
  EXPECT_EQ(events.size(), 3u);
}

TEST_F(DomainCoreFixture, GatewayMap) {
  core_a.set_gateway(2, 10, 20);
  const auto gw = core_a.gateway_to(2);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(gw->first, 10u);
  EXPECT_EQ(gw->second, 20u);
  EXPECT_FALSE(core_a.gateway_to(9).has_value());
  EXPECT_EQ(core_a.peered_edomains(), (std::vector<edomain_id>{2}));
}

TEST_F(DomainCoreFixture, DeregisterLastSenderRemovesWatch) {
  core_a.register_sender("g", 11);
  core_a.deregister_sender("g", 11);
  core_b.group_join("g", 20);
  // No watch anymore: the cached remote view stays empty.
  EXPECT_TRUE(core_a.remote_member_edomains("g").empty());
}

}  // namespace
}  // namespace interedge::edomain
