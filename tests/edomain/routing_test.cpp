// Unit tests for the per-SN router (§3.2 forwarding rules), independent of
// the full deployment machinery.
#include "edomain/routing.h"

#include <gtest/gtest.h>

namespace interedge::edomain {
namespace {

crypto::x25519_key no_key() { return crypto::x25519_key{}; }

struct router_fixture {
  router_fixture() : core_west(1, global), core_east(2, global) {
    // West: SNs 10 (gateway) and 11; east: SN 20 (gateway).
    core_west.add_sn(10);
    core_west.add_sn(11);
    core_east.add_sn(20);
    core_west.set_gateway(2, 10, 20);
    core_east.set_gateway(1, 20, 10);

    register_host(100, 10, 1);  // host 100 behind SN 10, west
    register_host(101, 11, 1);  // host 101 behind SN 11, west
    register_host(200, 20, 2);  // host 200 behind SN 20, east
  }

  void register_host(lookup::edge_addr addr, peer_id sn, edomain_id dom) {
    lookup::host_record rec;
    rec.addr = addr;
    rec.owner_public = no_key();
    rec.service_nodes = {sn};
    rec.edomain = dom;
    global.register_host(rec);
  }

  lookup::lookup_service global;
  domain_core core_west;
  domain_core core_east;
};

TEST(SnRouter, DeliversToAttachedHost) {
  router_fixture f;
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_EQ(at_sn10.next_hop(100), 100u);  // host behind me: hand it over
}

TEST(SnRouter, IntraEdomainGoesToHostsSn) {
  router_fixture f;
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_EQ(at_sn10.next_hop(101), 11u);  // same edomain, other SN
}

TEST(SnRouter, InterEdomainViaLocalGateway) {
  router_fixture f;
  sn_router at_sn11(11, f.core_west, f.global);
  EXPECT_EQ(at_sn11.next_hop(200), 10u);  // non-gateway relays to local gateway
}

TEST(SnRouter, GatewayCrossesToRemoteGateway) {
  router_fixture f;
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_EQ(at_sn10.next_hop(200), 20u);  // I am the gateway: take the pipe
}

TEST(SnRouter, DirectInterdomainGoesStraightToRemoteSn) {
  router_fixture f;
  sn_router at_sn11(11, f.core_west, f.global, /*direct_interdomain=*/true);
  EXPECT_EQ(at_sn11.next_hop(200), 20u);
}

TEST(SnRouter, UnknownDestinationIsUnroutable) {
  router_fixture f;
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_FALSE(at_sn10.next_hop(999).has_value());
}

TEST(SnRouter, MissingGatewayIsUnroutable) {
  router_fixture f;
  // A third edomain nobody peered with.
  domain_core core_far(3, f.global);
  core_far.add_sn(30);
  f.register_host(300, 30, 3);
  sn_router at_sn11(11, f.core_west, f.global);
  EXPECT_FALSE(at_sn11.next_hop(300).has_value());
  // ...unless direct inter-domain pipes are allowed.
  sn_router direct(11, f.core_west, f.global, true);
  EXPECT_EQ(direct.next_hop(300), 30u);
}

TEST(SnRouter, HostWithEmptySnListUnroutable) {
  router_fixture f;
  lookup::host_record rec;
  rec.addr = 500;
  rec.edomain = 1;
  f.global.register_host(rec);  // no service_nodes
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_FALSE(at_sn10.next_hop(500).has_value());
}

TEST(SnRouter, FallbackSnsCountAsAttachment) {
  router_fixture f;
  lookup::host_record rec;
  rec.addr = 600;
  rec.service_nodes = {10, 11};  // primary 10, fallback 11
  rec.edomain = 1;
  f.global.register_host(rec);
  sn_router at_sn11(11, f.core_west, f.global);
  // The fallback SN can deliver directly too.
  EXPECT_EQ(at_sn11.next_hop(600), 600u);
  sn_router at_sn10(10, f.core_west, f.global);
  EXPECT_EQ(at_sn10.next_hop(600), 600u);
}

}  // namespace
}  // namespace interedge::edomain
