#include "edomain/pricing.h"

#include <gtest/gtest.h>

#include "edomain/peering.h"

namespace interedge::edomain {
namespace {

rate_card simple_card(money per_gb = 100) {
  rate_card card;
  card.set_rate(ilp::svc::delivery, "us-west", {{0, per_gb}});
  return card;
}

TEST(RateCard, FlatRate) {
  const rate_card card = simple_card(100);
  EXPECT_EQ(card.price(ilp::svc::delivery, "us-west", 10), 1000);
  EXPECT_EQ(card.price(ilp::svc::delivery, "us-west", 0), 0);
}

TEST(RateCard, UnofferedCombinationsReturnNullopt) {
  const rate_card card = simple_card();
  EXPECT_FALSE(card.price(ilp::svc::delivery, "eu-central", 10).has_value());
  EXPECT_FALSE(card.price(ilp::svc::pubsub, "us-west", 10).has_value());
  EXPECT_TRUE(card.offers(ilp::svc::delivery, "us-west"));
  EXPECT_FALSE(card.offers(ilp::svc::delivery, "eu-central"));
}

TEST(RateCard, TieredVolumeDiscount) {
  rate_card card;
  // First 10 GB at 100, next 90 GB at 50, beyond at 20.
  card.set_rate(ilp::svc::delivery, "r", {{10, 100}, {100, 50}, {0, 20}});
  EXPECT_EQ(card.price(ilp::svc::delivery, "r", 5), 500);
  EXPECT_EQ(card.price(ilp::svc::delivery, "r", 10), 1000);
  EXPECT_EQ(card.price(ilp::svc::delivery, "r", 20), 1000 + 10 * 50);
  EXPECT_EQ(card.price(ilp::svc::delivery, "r", 100), 1000 + 90 * 50);
  EXPECT_EQ(card.price(ilp::svc::delivery, "r", 150), 1000 + 90 * 50 + 50 * 20);
}

TEST(RateCard, RegionsForService) {
  rate_card card;
  card.set_rate(1, "a", {{0, 1}});
  card.set_rate(1, "b", {{0, 1}});
  EXPECT_EQ(card.regions_for(1), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(card.regions_for(2).empty());
}

TEST(Iesp, CompliantQuoteIgnoresCustomer) {
  const iesp provider("edge-co", simple_card(100));
  EXPECT_EQ(provider.quote("alice", ilp::svc::delivery, "us-west", 10),
            provider.quote("bob", ilp::svc::delivery, "us-west", 10));
}

// A non-compliant provider that charges a disfavored customer more.
class discriminating_iesp final : public iesp {
 public:
  discriminating_iesp() : iesp("shady-co", simple_card(100)) {}
  std::optional<money> quote(const std::string& customer, ilp::service_id service,
                             const std::string& region, std::uint64_t volume) const override {
    auto base = iesp::quote(customer, service, region, volume);
    if (base && customer == "disfavored") return *base * 2;
    return base;
  }
};

TEST(NeutralityAuditor, PassesCompliantProvider) {
  const iesp provider("edge-co", simple_card());
  neutrality_auditor auditor;
  const auto violations =
      auditor.audit(provider, {{ilp::svc::delivery, "us-west", 10}, {ilp::svc::delivery, "us-west", 1000}},
                    {"alice", "bob", "carol"});
  EXPECT_TRUE(violations.empty());
}

TEST(NeutralityAuditor, CatchesDiscrimination) {
  const discriminating_iesp provider;
  neutrality_auditor auditor;
  const auto violations = auditor.audit(provider, {{ilp::svc::delivery, "us-west", 10}},
                                        {"alice", "disfavored"});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].price_a, 1000);
  EXPECT_EQ(violations[0].price_b, 2000);
  EXPECT_EQ(violations[0].customer_b, "disfavored");
}

TEST(NeutralityAuditor, SelectiveDenialIsAlsoDiscrimination) {
  class denier final : public iesp {
   public:
    denier() : iesp("denier", simple_card()) {}
    std::optional<money> quote(const std::string& customer, ilp::service_id s,
                               const std::string& r, std::uint64_t v) const override {
      if (customer == "blocked") return std::nullopt;  // denies service
      return iesp::quote(customer, s, r, v);
    }
  };
  neutrality_auditor auditor;
  const auto violations =
      auditor.audit(denier(), {{ilp::svc::delivery, "us-west", 10}}, {"alice", "blocked"});
  EXPECT_EQ(violations.size(), 1u);
}

TEST(Broker, StitchesCheapestCoverage) {
  marketplace market;
  // Global provider: covers both regions, expensive.
  rate_card global_card;
  global_card.set_rate(ilp::svc::delivery, "us", {{0, 100}});
  global_card.set_rate(ilp::svc::delivery, "eu", {{0, 100}});
  market.add(std::make_shared<iesp>("global", global_card));
  // Two regional providers, cheaper at home.
  rate_card us_card;
  us_card.set_rate(ilp::svc::delivery, "us", {{0, 60}});
  market.add(std::make_shared<iesp>("us-local", us_card));
  rate_card eu_card;
  eu_card.set_rate(ilp::svc::delivery, "eu", {{0, 70}});
  market.add(std::make_shared<iesp>("eu-local", eu_card));

  broker b(market);
  const auto plan = b.stitch("customer", ilp::svc::delivery, {{"us", 10}, {"eu", 10}});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->total, 600 + 700);
  ASSERT_EQ(plan->assignments.size(), 2u);
  // "collections of smaller IESPs compete with the global ones": the
  // stitched plan beats the single global quote (100*20 = 2000).
  EXPECT_LT(plan->total, 2000);
}

TEST(Broker, UncoverableRegionFailsWholePlan) {
  marketplace market;
  rate_card us_card;
  us_card.set_rate(ilp::svc::delivery, "us", {{0, 60}});
  market.add(std::make_shared<iesp>("us-local", us_card));
  broker b(market);
  EXPECT_FALSE(b.stitch("c", ilp::svc::delivery, {{"us", 1}, {"antarctica", 1}}).has_value());
}

TEST(Broker, PlanNeverWorseThanAnySingleProvider) {
  // Property: for any provider that covers all regions, the broker's plan
  // total is <= that provider's total.
  marketplace market;
  for (int p = 0; p < 5; ++p) {
    rate_card card;
    card.set_rate(ilp::svc::delivery, "r1", {{0, 50 + p * 13}});
    card.set_rate(ilp::svc::delivery, "r2", {{0, 90 - p * 7}});
    market.add(std::make_shared<iesp>("p" + std::to_string(p), card));
  }
  broker b(market);
  const std::map<std::string, std::uint64_t> demand{{"r1", 7}, {"r2", 11}};
  const auto plan = b.stitch("c", ilp::svc::delivery, demand);
  ASSERT_TRUE(plan.has_value());
  for (const auto& provider : market.providers()) {
    money single = 0;
    bool covers_all = true;
    for (const auto& [region, volume] : demand) {
      const auto q = provider->quote("c", ilp::svc::delivery, region, volume);
      if (!q) {
        covers_all = false;
        break;
      }
      single += *q;
    }
    if (covers_all) {
      EXPECT_LE(plan->total, single) << provider->name();
    }
  }
}

TEST(Marketplace, FindByName) {
  marketplace market;
  market.add(std::make_shared<iesp>("a", rate_card{}));
  EXPECT_NE(market.find("a"), nullptr);
  EXPECT_EQ(market.find("b"), nullptr);
}

TEST(SettlementLedger, TrafficRecordedSettlementZero) {
  settlement_ledger ledger;
  ledger.record_transfer(1, 2, 1000);
  ledger.record_transfer(1, 2, 500);
  ledger.record_transfer(2, 1, 10);
  EXPECT_EQ(ledger.traffic(1, 2), 1500u);
  EXPECT_EQ(ledger.traffic(2, 1), 10u);
  EXPECT_EQ(ledger.total_traffic(), 1510u);
  // "no money changes hands" — regardless of (a)symmetry of traffic.
  EXPECT_EQ(ledger.settlement_due(1, 2), 0);
  EXPECT_EQ(ledger.settlement_due(2, 1), 0);
  EXPECT_EQ(ledger.active_pairs().size(), 2u);
}

}  // namespace
}  // namespace interedge::edomain
