// SLO health plane end to end (ISSUE 7) over the deterministic simulator:
// an injected latency fault must trip the fast-window burn-rate page on the
// edomain plane, the page must freeze an SN's black-box flight recorder
// into a postmortem that contains the triggering spans, a stalled worker
// shard must be flagged by the SN watchdog, and plane rollups must survive
// restart/duplicate churn without double-counting — all replayable from a
// seeded fault schedule. This binary is also a sanitizer CI target
// (tools/ci_sanitizers.sh, ctest -R slo_health_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "core/service_node.h"
#include "core/test_modules.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "edomain/observability.h"
#include "simnet/simulation.h"

namespace interedge {
namespace {

using namespace std::chrono_literals;
using core::peer_id;
using edomain::edomain_id;

deploy::deployment_config tracing_config(std::uint64_t seed = 1) {
  deploy::deployment_config cfg;
  cfg.seed = seed;
  cfg.trace_sample_shift = 0;  // trace every send
  cfg.host_path_span_capacity = 512;
  cfg.sn_path_span_capacity = 4096;
  cfg.hosts_allow_direct = false;
  return cfg;
}

// Same 3-hop, 2-edomain shape as path_trace_test: alice -> sn_a -> gw1 ->
// gw2 -> bob.
struct three_hop_fixture {
  deploy::deployment net;
  edomain_id dom1, dom2;
  peer_id gw1, sn_a, gw2;
  host::host_stack* alice;
  host::host_stack* bob;
  int delivered = 0;

  explicit three_hop_fixture(deploy::deployment_config cfg = tracing_config()) : net(cfg) {
    dom1 = net.add_edomain();
    gw1 = net.add_sn(dom1);
    sn_a = net.add_sn(dom1);
    dom2 = net.add_edomain();
    gw2 = net.add_sn(dom2);
    alice = &net.add_host(dom1, sn_a);
    bob = &net.add_host(dom2, gw2);
    net.interconnect();
    deploy::deploy_standard_services(net);
    bob->set_default_handler([this](const ilp::ilp_header&, bytes) { ++delivered; });
  }
};

// Simulation-scale burn windows: a page confirms over 10ms AND 20ms.
slo::burn_windows sim_windows() {
  slo::burn_windows w;
  w.fast_short = 10ms;
  w.fast_long = 20ms;
  w.page_burn = 14.4;
  w.slow_short = 40ms;
  w.slow_long = 80ms;
  w.warn_burn = 3.0;
  w.clear_after = 2;
  return w;
}

// One seeded run of the latency-fault scenario. Healthy sends cross in
// ~2.1ms; at 30ms the sn_a<->gw1 link degrades to 20ms one-way, pushing
// end-to-end totals far over the 10ms SLO threshold; the fast burn windows
// fill with out-of-budget completions and the monitor pages.
struct fault_run {
  std::vector<slo::slo_alert> alerts;
  std::string alert_digest;
  std::string blackbox_dump;
  bool blackbox_frozen = false;
  std::uint32_t frozen_by = 0;
  int delivered = 0;
};

fault_run run_latency_fault(std::uint64_t seed) {
  three_hop_fixture f(tracing_config(seed));
  edomain::observability_plane& plane = f.net.core_of(f.dom1).observability();

  timeseries_store::config series;
  series.window = 5ms;
  series.windows = 64;
  plane.enable_health(series, sim_windows());
  slo::slo_target t;
  t.name = "delivery-p99";
  t.service = "delivery";
  t.latency_series = render_metric_key("edomain.path.total_ns", {{"service", "delivery"}});
  t.threshold_ns = 10'000'000;  // 10ms end-to-end budget
  t.error_budget = 0.01;
  plane.add_slo(t);

  fault_run out;
  plane.set_alert_hook([&f, &out](const slo::slo_alert& a) {
    out.alerts.push_back(a);
    if (a.state == slo::slo_state::page) {
      // The pager's first move: freeze the suspect SN's black box so the
      // spans that tripped the burn are preserved as a postmortem.
      f.net.sn(f.sn_a).blackbox()->trigger(kTrigSloPage, a.at_ns);
    }
  });

  // SNs push merged metrics + drained spans into the plane on their own
  // scheduler ticks (the drain also feeds each SN's flight recorder).
  for (const peer_id id : {f.gw1, f.sn_a}) {
    f.net.sn(id).start_observability_push(
        2ms,
        [&plane, id](const metrics_registry& merged, std::span<const trace::path_span> spans) {
          plane.ingest(id, merged, spans);
        },
        /*max_pushes=*/60);
  }

  // Traffic: one send every 2ms for the whole run.
  for (int ms = 0; ms < 90; ms += 2) {
    f.net.net().at(time_point(std::chrono::milliseconds(ms)), [&f] {
      f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("slo"));
    });
  }

  // Control tick: fold host-side span ends into the plane (completing the
  // end-to-end latency series) and evaluate the SLOs every 5ms.
  for (int ms = 5; ms <= 115; ms += 5) {
    f.net.net().at(time_point(std::chrono::milliseconds(ms)), [&f, &plane] {
      std::vector<trace::path_span> ends;
      f.alice->drain_path_spans(ends);
      f.bob->drain_path_spans(ends);
      plane.traces().ingest(std::span<const trace::path_span>(ends));
      plane.health_tick(f.net.net().now());
    });
  }

  // The seeded fault schedule: at 30ms the host-side SN's uplink degrades.
  const std::vector<sim::fault_event> schedule = {
      {.at = 30ms,
       .kind = sim::fault_kind::latency,
       .a = static_cast<sim::node_id>(f.sn_a),
       .b = static_cast<sim::node_id>(f.gw1),
       .value = 20.0},
  };
  f.net.net().schedule_faults(schedule);
  f.net.net().run_until(time_point(120ms));

  out.delivered = f.delivered;
  out.blackbox_frozen = f.net.sn(f.sn_a).blackbox()->frozen();
  out.frozen_by = f.net.sn(f.sn_a).blackbox()->frozen_by();
  out.blackbox_dump = f.net.sn(f.sn_a).dump_blackbox_json();

  std::ostringstream os;
  for (const slo::slo_alert& a : out.alerts) {
    os << a.slo << ':' << static_cast<int>(a.state) << ':' << static_cast<int>(a.prev) << ':'
       << a.at_ns << '\n';
  }
  out.alert_digest = os.str();
  return out;
}

TEST(SloHealth, LatencyFaultTripsFastBurnPageAndFreezesBlackbox) {
  const fault_run r = run_latency_fault(1234);

  // Traffic flowed in both phases.
  EXPECT_GT(r.delivered, 20);

  // The injected latency fault tripped the multi-window page.
  const slo::slo_alert* page = nullptr;
  for (const slo::slo_alert& a : r.alerts) {
    if (a.state == slo::slo_state::page) page = &a;
  }
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->slo, "delivery-p99");
  EXPECT_EQ(page->service, "delivery");
  EXPECT_GE(page->burn_fast, 14.4);
  // The page postdates the fault injection at 30ms.
  EXPECT_GE(page->at_ns, 30'000'000u);

  // The page froze the SN's black box into a postmortem that carries the
  // lead-up spans and names its trigger.
  EXPECT_TRUE(r.blackbox_frozen);
  EXPECT_EQ(r.frozen_by, kTrigSloPage);
  EXPECT_NE(r.blackbox_dump.find("\"frozen\":true"), std::string::npos);
  EXPECT_NE(r.blackbox_dump.find("\"trigger\":\"slo_page\""), std::string::npos);
  EXPECT_NE(r.blackbox_dump.find("\"kind\":\"span\""), std::string::npos);

  // Replay: same seed, same schedule => byte-identical alert sequence.
  const fault_run replay = run_latency_fault(1234);
  EXPECT_EQ(replay.alert_digest, r.alert_digest);
  EXPECT_EQ(replay.delivered, r.delivered);
  EXPECT_EQ(replay.blackbox_frozen, r.blackbox_frozen);
}

TEST(SloHealth, PlaneExposesSloStateAndAlertsJson) {
  const fault_run r = run_latency_fault(7);
  ASSERT_FALSE(r.alerts.empty());

  // A fresh fixture just for exposition shape: enable health, page it via
  // the same scenario, then check the merged Prometheus text.
  three_hop_fixture f(tracing_config(7));
  edomain::observability_plane& plane = f.net.core_of(f.dom1).observability();
  timeseries_store::config series;
  series.window = 5ms;
  plane.enable_health(series, sim_windows());
  slo::slo_target t;
  t.name = "delivery-p99";
  t.service = "delivery";
  t.latency_series = render_metric_key("edomain.path.total_ns", {{"service", "delivery"}});
  t.threshold_ns = 10'000'000;
  plane.add_slo(t);
  // No traffic: the SLO sits at ok and still exposes its state gauge.
  plane.health_tick(f.net.net().now());
  const std::string prom = plane.export_prometheus();
  EXPECT_NE(prom.find("slo_state"), std::string::npos);
  const std::string alerts_json = plane.export_alerts_json();
  EXPECT_NE(alerts_json.find("\"slos\""), std::string::npos);
}

// ---- watchdog: stalled worker shard -----------------------------------

using sim::node_id;
using sim::simulation;

struct sim_host {
  node_id node = 0;
  std::unique_ptr<ilp::pipe_manager> mgr;
  int received = 0;
};

std::unique_ptr<sim_host> make_host(simulation& net) {
  auto h = std::make_unique<sim_host>();
  h->node = net.add_node(nullptr);
  h->mgr = std::make_unique<ilp::pipe_manager>(
      h->node,
      [&net, node = h->node](peer_id peer, bytes d) {
        net.send(node, static_cast<node_id>(peer), std::move(d));
      },
      [raw = h.get()](peer_id, const ilp::ilp_header&, bytes) { ++raw->received; });
  net.set_handler(h->node, [raw = h.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return h;
}

std::unique_ptr<core::service_node> make_sn(simulation& net, const core::router* route,
                                            std::size_t workers) {
  const node_id node = net.add_node(nullptr);
  core::sn_config cfg;
  cfg.id = node;
  cfg.edomain = 1;
  cfg.workers = workers;
  auto sn = std::make_unique<core::service_node>(
      cfg, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  return sn;
}

ilp::ilp_header delivery_header(ilp::edge_addr dest, ilp::connection_id conn) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::dest_addr, dest);
  return h;
}

TEST(SloHealth, WatchdogFlagsInjectedShardStallAndRecovers) {
  simulation net;
  core::testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);
  auto sn = make_sn(net, &route, 2);
  sn->env().deploy(std::make_unique<core::testing::forwarder_module>());

  // Steer deterministically at a connection that lands on shard 0.
  ASSERT_NE(sn->steerer(), nullptr);
  ilp::connection_id conn = 1;
  while (sn->steerer()->shard_of(core::cache_key{alice->node, ilp::svc::delivery, conn}) != 0) {
    ++conn;
  }

  std::string dump;
  core::service_node::health_config hc;
  hc.interval = 1ms;
  hc.watchdog_grace = 2;
  hc.blackbox_sink = [&dump](const std::string& j) { dump = j; };

  // Stall shard 0: its worker spins without advancing its heartbeat or
  // consuming the ring — the live-lock shape the watchdog must catch.
  sn->inject_worker_stall(0, true);
  sn->start_health_plane(hc, /*max_ticks=*/10);
  for (int p = 0; p < 8; ++p) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, conn), to_bytes("stall"));
  }
  net.run();  // deliveries push into the stalled ring; 10 health ticks run

  EXPECT_GE(sn->watchdog_stalls(), 1u);
  EXPECT_EQ(
      sn->metrics().get_gauge("sn.shard.stalled", {{"shard", "0"}}).value(), 1);
  EXPECT_GE(sn->metrics().get_counter("sn.watchdog.stall_events", {{"shard", "0"}}).value(), 1u);
  // The stall tripped the black box; the sink got the postmortem.
  ASSERT_NE(sn->blackbox(), nullptr);
  EXPECT_TRUE(sn->blackbox()->frozen());
  EXPECT_EQ(sn->blackbox()->frozen_by(), kTrigWatchdog);
  EXPECT_NE(dump.find("\"trigger\":\"watchdog\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"watchdog\""), std::string::npos);

  // Recovery: clear the stall, let the shard drain, and the next health
  // window un-flags it.
  sn->inject_worker_stall(0, false);
  ASSERT_TRUE(sn->wait_idle(std::chrono::milliseconds(10000)));
  sn->blackbox()->rearm();
  // The recovery ticks are sim events: a whole max_ticks run executes in
  // microseconds of real time. If keepalives re-filled the ring and the
  // worker OS thread is starved by parallel test load for just that long,
  // every tick sees "pending, heartbeat unchanged" and the flag survives
  // the round — so retry bounded rounds instead of asserting on one.
  bool cleared = false;
  for (int round = 0; round < 50 && !cleared; ++round) {
    sn->start_health_plane(hc, /*max_ticks=*/5);
    net.run();
    cleared =
        sn->metrics().get_gauge("sn.shard.stalled", {{"shard", "0"}}).value() == 0;
    if (!cleared) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cleared);
  EXPECT_EQ(bob->received, 8);
}

// ---- profiling plane (ISSUE 10): postmortems carry hot stacks ---------

// CPU burner the sampler can attribute; static so the .symtab fallback is
// also exercised through the SN-level path.
__attribute__((noinline)) static std::uint64_t slo_health_profile_spin(int ms) {
  volatile std::uint64_t acc = 1;
  timespec start{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start);
  for (;;) {
    for (int i = 0; i < 4096; ++i) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    if ((now.tv_sec - start.tv_sec) * 1000 + (now.tv_nsec - start.tv_nsec) / 1000000 >= ms) break;
  }
  return acc;
}

TEST(SloHealth, FrozenPostmortemEmbedsHotStacksWhenProfilerArmed) {
  simulation net;
  core::testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);

  const node_id node = net.add_node(nullptr);
  core::sn_config cfg;
  cfg.id = node;
  cfg.edomain = 1;
  cfg.blackbox_capacity = 256;
  cfg.profiler_hz = 997;
  cfg.profiler_force_timer = true;  // deterministic backend under any CI
  auto sn = std::make_unique<core::service_node>(
      cfg, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      &route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  sn->env().deploy(std::make_unique<core::testing::forwarder_module>());
  ASSERT_NE(sn->profiler(), nullptr);
  ASSERT_TRUE(sn->profiler()->armed());

  // Give the sampler something to catch on the control thread, plus real
  // datapath traffic, then fold it into a published snapshot the way a
  // health tick would.
  const ilp::connection_id conn = 1;
  for (int i = 0; i < 4; ++i) {
    alice->mgr->send(sn->node_id(), delivery_header(bob->node, conn), to_bytes("prof"));
  }
  net.run();
  slo_health_profile_spin(150);
  sn->profile_refresh();

  // Freeze by hand (same path a watchdog or burn-rate page takes): the
  // postmortem must carry a NON-empty hot-stack table.
  ASSERT_NE(sn->blackbox(), nullptr);
  sn->blackbox()->trigger(kTrigManual, 1);
  const std::string dump = sn->dump_blackbox_json();
  EXPECT_TRUE(sn->blackbox()->frozen());
  ASSERT_NE(dump.find("\"hot_stacks\":["), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"hot_stacks\":[{"), std::string::npos) << dump.substr(0, 400);
  EXPECT_NE(dump.find("\"count\":"), std::string::npos);
  EXPECT_EQ(bob->received, 4);

  // Profiler metrics landed in the registry via the same refresh.
  EXPECT_GT(sn->metrics().get_gauge("sn.profile.samples").value(), 0);
}

TEST(SloHealth, PostmortemHotStacksEmptyWhenProfilerOff) {
  simulation net;
  core::testing::identity_router route;
  auto sn = make_sn(net, &route, 0);
  ASSERT_EQ(sn->profiler(), nullptr);
  ASSERT_NE(sn->blackbox(), nullptr);
  sn->blackbox()->trigger(kTrigManual, 1);
  const std::string dump = sn->dump_blackbox_json();
  // The key is always present so postmortem consumers need no probing —
  // an empty table when the profiling plane is off.
  EXPECT_NE(dump.find("\"hot_stacks\":[]"), std::string::npos) << dump.substr(0, 400);
}

// ---- churn: restarts and duplicate pushes must not double-count -------

TEST(SloHealth, PlaneRollupsSurviveChurnWithoutDoubleCounting) {
  three_hop_fixture f;
  edomain::observability_plane& plane = f.net.core_of(f.dom1).observability();
  timeseries_store::config series;
  series.window = 5ms;
  plane.enable_health(series, sim_windows());

  constexpr int kSends = 6;
  for (int i = 0; i < kSends; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("churn"));
  }
  f.net.run();
  ASSERT_EQ(f.delivered, kSends);

  // Drain sn_a once, then push the SAME batch twice — an SN re-draining
  // after a restart or a duplicated push mid-window.
  std::vector<trace::path_span> spans;
  f.net.sn(f.sn_a).drain_path_spans(spans);
  metrics_registry snap;
  f.net.sn(f.sn_a).merge_metrics_into(snap);
  plane.ingest(f.sn_a, snap, spans);
  const auto first = plane.rollup(ilp::svc::delivery, f.sn_a);
  plane.ingest(f.sn_a, snap, spans);
  const auto second = plane.rollup(ilp::svc::delivery, f.sn_a);
  EXPECT_EQ(first.spans, second.spans);
  EXPECT_GE(first.spans, static_cast<std::uint64_t>(kSends));
  EXPECT_GT(plane.traces().duplicates_ignored(), 0u);

  // Host ends complete wave 1's traces (the first sighting of the latency
  // histogram is the window store's baseline tick).
  std::vector<trace::path_span> ends;
  f.alice->drain_path_spans(ends);
  f.bob->drain_path_spans(ends);
  plane.traces().ingest(std::span<const trace::path_span>(ends));
  const time_point t0 = f.net.net().now();
  plane.health_tick(t0);

  // Wave 2 lands inside a later window; replaying wave 1's ends alongside
  // it is idempotent, so the window holds exactly wave 2's samples.
  constexpr int kWave2 = 4;
  for (int i = 0; i < kWave2; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("wave2"));
  }
  f.net.run();
  ASSERT_EQ(f.delivered, kSends + kWave2);
  std::vector<trace::path_span> wave2;
  f.net.sn(f.sn_a).drain_path_spans(wave2);
  f.alice->drain_path_spans(wave2);
  f.bob->drain_path_spans(wave2);
  plane.traces().ingest(std::span<const trace::path_span>(wave2));
  plane.traces().ingest(std::span<const trace::path_span>(ends));  // churn replay
  plane.health_tick(t0 + 10ms);
  const std::string key =
      render_metric_key("edomain.path.total_ns", {{"service", "delivery"}});
  ASSERT_NE(plane.series(), nullptr);
  EXPECT_EQ(plane.series()->hist_count(key, 10ms), static_cast<std::uint64_t>(kWave2));

  // A node restart wipes its cumulative counters: the window store clamps
  // the collapsed delta to the fresh value instead of going negative.
  metrics_registry before;
  before.get_counter("churn.restart.pkts").add(1000);
  plane.ingest(/*node=*/999, before, {});
  plane.health_tick(t0 + 20ms);
  metrics_registry after;  // restarted: counter collapsed to 3
  after.get_counter("churn.restart.pkts").add(3);
  plane.ingest(/*node=*/999, after, {});
  plane.health_tick(t0 + 25ms);
  EXPECT_GE(plane.series()->counter_resets(), 1u);
  EXPECT_LE(plane.series()->delta("churn.restart.pkts", 5ms), 3u);
}

}  // namespace
}  // namespace interedge
