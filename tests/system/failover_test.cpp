// Fault-tolerant SN lifecycle, end to end over the deterministic simulator
// (DESIGN.md §10): checkpointed failover to a standby, keepalive-driven
// partition detection and reconnection, shedding under slow-path
// saturation, and scripted-fault determinism. This binary is also the
// sanitizer CI's fault-matrix target (tools/ci_sanitizers.sh).
#include <gtest/gtest.h>

#include "core/service_node.h"
#include "core/test_modules.h"
#include "simnet/simulation.h"

namespace interedge::core {
namespace {

using namespace std::chrono_literals;
using sim::node_id;
using sim::simulation;

struct sim_host {
  node_id node = 0;
  std::unique_ptr<ilp::pipe_manager> mgr;
  std::vector<std::pair<ilp::ilp_header, bytes>> received;
};

std::unique_ptr<sim_host> make_host(simulation& net) {
  auto h = std::make_unique<sim_host>();
  h->node = net.add_node(nullptr);
  h->mgr = std::make_unique<ilp::pipe_manager>(
      h->node,
      [&net, node = h->node](peer_id peer, bytes d) {
        net.send(node, static_cast<node_id>(peer), std::move(d));
      },
      [raw = h.get()](peer_id, const ilp::ilp_header& hdr, bytes payload) {
        raw->received.emplace_back(hdr, std::move(payload));
      });
  net.set_handler(h->node, [raw = h.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return h;
}

// Builds an SN on a fresh simulator node, or — when `takeover` names an
// existing node — on that node (the standby assuming a crashed primary's
// network identity; callers restart_node + set_handler).
std::unique_ptr<service_node> make_sn(simulation& net, const router* route, sn_config config,
                                      node_id takeover = sim::kInvalidNode) {
  const node_id node = takeover != sim::kInvalidNode ? takeover : net.add_node(nullptr);
  config.id = node;
  auto sn = std::make_unique<service_node>(
      config, net.sim_clock(),
      [&net, node](peer_id to, bytes d) { net.send(node, static_cast<node_id>(to), std::move(d)); },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  return sn;
}

ilp::ilp_header delivery_header(edge_addr dest, ilp::connection_id conn = 1) {
  ilp::ilp_header h;
  h.service = ilp::svc::delivery;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::dest_addr, dest);
  return h;
}

ilp::ilp_header sink_header(ilp::connection_id conn) {
  ilp::ilp_header h;
  h.service = ilp::svc::null_service;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  return h;
}

// Pre-schedules liveness ticks for a host's pipe manager (the simulator
// equivalent of a timer loop; pre-scheduling keeps the queue drainable).
void schedule_host_liveness(simulation& net, sim_host& h, nanoseconds interval,
                            nanoseconds until) {
  for (auto t = net.now() + interval; t <= time_point(until); t += interval) {
    net.at(t, [mgr = h.mgr.get()] { mgr->liveness_tick(); });
  }
}

// The acceptance scenario: a primary SN crashes mid-traffic; a standby
// restores the latest checkpoint, assumes the primary's network identity,
// and traffic resumes over re-established pipes with zero slow-path hangs.
TEST(Failover, StandbyRestoresCheckpointAndResumesTraffic) {
  simulation net;
  testing::identity_router route;
  auto alice = make_host(net);
  auto bob = make_host(net);

  auto primary = make_sn(net, &route, sn_config{});
  primary->env().deploy(std::make_unique<testing::forwarder_module>());
  auto primary_sink = std::make_unique<testing::sink_module>();
  auto* primary_sink_raw = primary_sink.get();
  primary->env().deploy(std::move(primary_sink));
  const node_id sn_node = static_cast<node_id>(primary->node_id());

  // Checkpoints flow to the failover store every 10 ms.
  bytes latest_checkpoint;
  int checkpoints_taken = 0;
  primary->start_checkpointing(10ms, [&](bytes snap) {
    latest_checkpoint = std::move(snap);
    ++checkpoints_taken;
  });

  alice->mgr->enable_liveness(net.sim_clock(),
                              {.keepalive_interval = 10ms, .miss_budget = 3});
  schedule_host_liveness(net, *alice, 10ms, 600ms);

  // Phase 1: warm traffic through the primary — forwarded deliveries to
  // bob plus stateful sink packets.
  for (int i = 0; i < 5; ++i) {
    alice->mgr->send(sn_node, delivery_header(bob->node, 1), to_bytes("pre"));
    alice->mgr->send(sn_node, sink_header(7), to_bytes("state"));
  }
  net.run_until(time_point(50ms));
  EXPECT_EQ(bob->received.size(), 5u);
  EXPECT_EQ(primary_sink_raw->counter(), 5);
  ASSERT_GE(checkpoints_taken, 1);
  ASSERT_FALSE(latest_checkpoint.empty());
  primary->stop_checkpointing();

  // Phase 2: crash the primary mid-traffic (packets in flight are lost).
  net.at(time_point(55ms), [&] {
    alice->mgr->send(sn_node, delivery_header(bob->node, 1), to_bytes("in-flight"));
    net.crash_node(sn_node);
  });
  net.run_until(time_point(100ms));
  EXPECT_GT(net.datagrams_dropped_faults(), 0u);
  const ilp::liveness_stats* st = alice->mgr->liveness_for(sn_node);
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(st->down);  // detected within the miss budget

  // Phase 3: the standby restores the latest checkpoint and takes over the
  // primary's network identity (IP takeover).
  auto standby = make_sn(net, &route, sn_config{}, sn_node);
  standby->env().deploy(std::make_unique<testing::forwarder_module>());
  auto standby_sink = std::make_unique<testing::sink_module>();
  auto* standby_sink_raw = standby_sink.get();
  standby->env().deploy(std::move(standby_sink));
  standby->restore_full(latest_checkpoint);
  net.restart_node(sn_node);

  // Module state survived the crash...
  EXPECT_EQ(standby_sink_raw->counter(), 5);
  // ...and the decision cache came back warm.
  EXPECT_GT(standby->cache().size(), 0u);

  // Phase 4: alice's keepalives reconnect (fresh handshake = forced rekey)
  // and traffic resumes on the re-established pipe.
  net.run_until(time_point(400ms));
  ASSERT_FALSE(alice->mgr->liveness_for(sn_node)->down);
  EXPECT_GE(alice->mgr->liveness_for(sn_node)->reconnect_attempts, 1u);

  for (int i = 0; i < 3; ++i) {
    alice->mgr->send(sn_node, delivery_header(bob->node, 1), to_bytes("post"));
    alice->mgr->send(sn_node, sink_header(7), to_bytes("more-state"));
  }
  net.run_until(time_point(600ms));
  net.run();  // drain any straggling deliveries

  EXPECT_EQ(bob->received.size(), 8u);  // 5 pre-crash + 3 post-failover
  EXPECT_EQ(standby_sink_raw->counter(), 8);  // continued from the checkpoint
  // Zero slow-path hangs: nothing stuck in flight on the standby.
  EXPECT_FALSE(standby->terminus().busy());
  EXPECT_EQ(standby->terminus().in_flight(), 0u);
  // The warm cache served the pre-crash flow without a module round trip.
  EXPECT_GT(standby->datapath_stats().fast_path, 0u);
}

TEST(Failover, SnKeepalivesSurvivePartitionAndReconnect) {
  // Two SNs peered over a long-lived pipe; the link partitions and heals.
  // The SN-side keepalive config (driven off its own scheduler) detects the
  // partition within the miss budget and reconnects with backoff.
  simulation net;
  testing::identity_router route;
  auto a = make_sn(net, &route,
                   sn_config{.keepalive_interval = 10ms, .keepalive_miss_budget = 3});
  auto b = make_sn(net, &route, sn_config{});
  const node_id an = static_cast<node_id>(a->node_id());
  const node_id bn = static_cast<node_id>(b->node_id());

  std::vector<bool> transitions;
  a->pipes().set_peer_status_hook([&](peer_id, bool up) { transitions.push_back(up); });

  a->peer_with(b->node_id());
  net.run_until(time_point(5ms));
  ASSERT_TRUE(a->pipes().has_pipe(b->node_id()));

  net.at(time_point(20ms), [&] { net.partition(an, bn); });
  net.at(time_point(200ms), [&] { net.heal(an, bn); });
  net.run_until(time_point(800ms));

  const ilp::liveness_stats* st = a->pipes().liveness_for(b->node_id());
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->times_down, 1u);
  EXPECT_FALSE(st->down);
  EXPECT_GE(st->reconnect_attempts, 1u);
  EXPECT_TRUE(a->pipes().has_pipe(b->node_id()));
  // Hook saw the initial establish (up), the partition (down), and the
  // reconnect (up) — in that order.
  EXPECT_EQ(transitions, (std::vector<bool>{true, false, true}));

  // Stop the recurring tick so the event queue drains.
  a->stop_liveness();
  net.run();
}

TEST(Failover, SaturatedSlowPathShedsInsteadOfBlocking) {
  // Parallel-mode SN with a tiny in-flight budget: a burst of distinct
  // cold flows lands in the shard rings before the control thread pumps
  // the slow path once, so the shards must shed (counted) instead of
  // blocking — and every packet is still accounted for.
  simulation net;
  testing::identity_router route;
  auto server = make_host(net);
  auto sn = make_sn(net, &route,
                    sn_config{.workers = 2, .slowpath_high_water = 4, .shed_ttl = 5ms});
  sn->env().deploy(std::make_unique<testing::forwarder_module>());

  // A client whose pipe manager writes sealed datagrams into an outbox
  // instead of the simulator, so the whole flood can be handed to the SN
  // as ONE ingress batch.
  const node_id client_node = net.add_node(nullptr);
  std::vector<bytes> outbox;
  ilp::pipe_manager client(
      client_node, [&outbox](peer_id, bytes d) { outbox.push_back(std::move(d)); },
      [](peer_id, const ilp::ilp_header&, bytes) {});
  net.set_handler(client_node,
                  [&client](node_id from, const bytes& data) { client.on_datagram(from, data); });

  // Handshake: shuttle the client's init by hand; the SN's response flows
  // back over the simulator and flushes the queued first packet.
  client.send(sn->node_id(), delivery_header(server->node, 0), to_bytes("warm"));
  ASSERT_EQ(outbox.size(), 1u);
  sn->on_datagram(client_node, outbox[0]);
  outbox.clear();
  net.run();
  ASSERT_TRUE(client.has_pipe(sn->node_id()));

  constexpr int kFlood = 400;
  for (int i = 1; i <= kFlood; ++i) {
    client.send(sn->node_id(), delivery_header(server->node, i), to_bytes("x"));
  }
  std::vector<std::pair<peer_id, bytes>> burst;
  for (bytes& d : outbox) burst.emplace_back(client_node, std::move(d));
  ASSERT_GE(burst.size(), static_cast<std::size_t>(kFlood));
  sn->on_datagrams(std::span(burst));
  ASSERT_TRUE(sn->wait_idle());
  net.run();  // forwarded packets reach the server through the simulator

  metrics_registry merged;
  sn->merge_metrics_into(merged);
  const auto total_of = [&merged](const char* name) {
    double total = 0;
    for (const auto& s : merged.samples()) {
      if (s.name == name) total += s.value;
    }
    return static_cast<std::uint64_t>(total);
  };
  const std::uint64_t forwarded = total_of("sn.tx.forwarded");
  const std::uint64_t dropped = total_of("sn.drop.pkts");
  const std::uint64_t shed = total_of("sn.slowpath.shed");
  // Conservation: every packet of the burst either forwarded or
  // shed-dropped; nothing wedged or lost.
  EXPECT_EQ(forwarded + dropped, burst.size());
  EXPECT_EQ(shed, dropped);  // fail-closed sheds are the only drops here
  // The in-flight budget was tiny and the flood cold: shedding kicked in.
  EXPECT_GT(shed, 0u);
  // Zero hangs: every packet a shard received came out one way or another.
  std::uint64_t received = 0, resolved = 0;
  for (std::size_t s = 0; s < sn->worker_count(); ++s) {
    const auto& st = sn->shard_terminus_stats(s);
    received += st.received;
    resolved += st.fast_path + st.slow_path + st.shed;
  }
  EXPECT_EQ(received, burst.size());
  EXPECT_EQ(resolved, received);
}

TEST(Failover, ScriptedFaultScheduleReplaysDeterministically) {
  // The same seed + the same fault script must produce the identical run —
  // counters and all — which is what makes fault regressions bisectable.
  const std::string script =
      "# partition the SN away from the client, then heal\n"
      "30 partition 0 2\n"
      "120 heal 0 2\n"
      "200 crash 1\n"
      "260 restart 1\n";
  auto run_one = [&script]() {
    simulation net(42);
    testing::identity_router route;
    auto client = make_host(net);
    auto server = make_host(net);
    auto sn = make_sn(net, &route, sn_config{});
    sn->env().deploy(std::make_unique<testing::forwarder_module>());
    net.set_default_link({.latency = 500us, .loss_rate = 0.05, .duplicate_rate = 0.02,
                          .reorder_rate = 0.02});
    net.schedule_faults(simulation::parse_fault_schedule(script));

    client->mgr->enable_liveness(net.sim_clock(), {.keepalive_interval = 10ms});
    for (auto t = 10ms; t <= 400ms; t += 10ms) {
      net.at(time_point(t), [mgr = client->mgr.get()] { mgr->liveness_tick(); });
    }
    for (auto t = 5ms; t <= 400ms; t += 5ms) {
      net.at(time_point(t), [&net, c = client.get(), s = server.get(), raw = sn.get()] {
        c->mgr->send(raw->node_id(), delivery_header(s->node, 1), to_bytes("tick"));
      });
    }
    net.run();
    return std::tuple(net.datagrams_delivered(), net.datagrams_dropped(),
                      net.datagrams_dropped_faults(), net.datagrams_duplicated(),
                      net.datagrams_reordered(), server->received.size(),
                      sn->datapath_stats().fast_path, sn->datapath_stats().slow_path);
  };
  EXPECT_EQ(run_one(), run_one());
}

}  // namespace
}  // namespace interedge::core
