// End-to-end ILP path tracing (ISSUE 5) over the deterministic simulator:
// a 3-hop, 2-edomain topology (alice -> sn_a -> gw1 -> gw2 -> bob) whose
// traces must reassemble complete with per-hop stage breakdowns and
// queue/wire-time attribution; the edomain observability plane's rollups
// and exposition; mid-path failover annotating (not dangling) traces; and
// trace integrity under duplication, reordering and partition-heal fault
// schedules. This binary is also a sanitizer CI target
// (tools/ci_sanitizers.sh, ctest -R path_trace_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_collector.h"
#include "core/service_node.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "edomain/observability.h"

namespace interedge {
namespace {

using namespace std::chrono_literals;
using core::peer_id;
using edomain::edomain_id;

deploy::deployment_config tracing_config() {
  deploy::deployment_config cfg;
  // Sample every send: a handful of deterministic packets must all trace.
  cfg.trace_sample_shift = 0;
  cfg.host_path_span_capacity = 512;
  cfg.sn_path_span_capacity = 4096;
  // Force the SN path — host-direct pipes would bypass the hops under test.
  cfg.hosts_allow_direct = false;
  return cfg;
}

// dom1 {gw1 (gateway), sn_a (alice's first hop)} + dom2 {gw2 (gateway,
// bob's first hop)}: cross-domain traffic relays alice -> sn_a -> gw1 ->
// gw2 -> bob — three SN hops between the two host ends.
struct three_hop_fixture {
  deploy::deployment net;
  edomain_id dom1, dom2;
  peer_id gw1, sn_a, gw2;
  host::host_stack* alice;
  host::host_stack* bob;
  int delivered = 0;

  explicit three_hop_fixture(deploy::deployment_config cfg = tracing_config()) : net(cfg) {
    dom1 = net.add_edomain();
    gw1 = net.add_sn(dom1);  // first SN = the edomain's gateway
    sn_a = net.add_sn(dom1);
    dom2 = net.add_edomain();
    gw2 = net.add_sn(dom2);
    alice = &net.add_host(dom1, sn_a);
    bob = &net.add_host(dom2, gw2);
    net.interconnect();
    deploy::deploy_standard_services(net);
    bob->set_default_handler([this](const ilp::ilp_header&, bytes) { ++delivered; });
  }

  // Drains every recorder (three SNs, both host stacks) into `out`.
  std::size_t collect_spans(std::vector<trace::path_span>& out) {
    const std::size_t before = out.size();
    for (const peer_id id : {gw1, sn_a, gw2}) net.sn(id).drain_path_spans(out);
    alice->drain_path_spans(out);
    bob->drain_path_spans(out);
    return out.size() - before;
  }
};

TEST(PathTrace, ThreeHopTwoEdomainTraceReassemblesComplete) {
  three_hop_fixture f;
  constexpr int kSends = 4;
  for (int i = 0; i < kSends; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("trace me"));
  }
  f.net.run();
  ASSERT_EQ(f.delivered, kSends);

  std::vector<trace::path_span> spans;
  f.collect_spans(spans);
  trace::trace_collector col;
  col.ingest(std::span<const trace::path_span>(spans));

  // Every send produced a complete 5-row path: host origin, three SN hops,
  // host delivery.
  std::vector<trace::path_trace> full_paths;
  for (const trace::path_trace& t : col.assemble_all()) {
    if (t.complete && t.hops.size() == 5) full_paths.push_back(t);
  }
  ASSERT_EQ(full_paths.size(), static_cast<std::size_t>(kSends));

  const std::vector<std::uint64_t> expected_nodes = {f.alice->addr(), f.sn_a, f.gw1, f.gw2,
                                                     f.bob->addr()};
  for (const trace::path_trace& t : full_paths) {
    EXPECT_EQ(t.service, ilp::svc::delivery);
    for (std::size_t h = 0; h < 5; ++h) {
      EXPECT_EQ(t.hops[h].node, expected_nodes[h]);
      EXPECT_EQ(t.hops[h].hop_count, h);
    }
    // Stage breakdown: origin at the first row, terminal delivery at the
    // last, and each SN hop shows its datapath span plus the forward copy
    // it emitted toward the next hop.
    EXPECT_EQ(t.hops[0].spans.front().kind, trace::span_kind::origin);
    EXPECT_EQ(t.hops[4].spans.front().kind, trace::span_kind::deliver);
    for (std::size_t h = 1; h <= 3; ++h) {
      bool has_hop = false, has_forward = false;
      for (const trace::path_span& s : t.hops[h].spans) {
        has_hop |= s.kind == trace::span_kind::hop_fast ||
                   s.kind == trace::span_kind::hop_slow;
        has_forward |= s.kind == trace::span_kind::forward;
      }
      EXPECT_TRUE(has_hop) << "hop " << h;
      EXPECT_TRUE(has_forward) << "hop " << h;
      // Queue + wire attribution: each inter-node gap carries at least the
      // simulated link latency (500us per hop by default).
      EXPECT_GE(t.hops[h].wire_gap_ns, 400'000u) << "hop " << h;
    }
    EXPECT_GE(t.hops[4].wire_gap_ns, 400'000u);
    // Four links end to end.
    EXPECT_GE(t.total_ns, 1'600'000u);
  }

  // The wire gaps attribute to links the simulator really carried: the
  // inter-gateway link saw every cross-domain packet.
  EXPECT_GE(f.net.net()
                .stats_between(static_cast<sim::node_id>(f.gw1), static_cast<sim::node_id>(f.gw2))
                .delivered,
            static_cast<std::uint64_t>(kSends));
}

TEST(PathTrace, FirstPacketTakesSlowPathWithServiceSpan) {
  three_hop_fixture f;
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("cold"));
  f.net.run();
  ASSERT_EQ(f.delivered, 1);

  std::vector<trace::path_span> spans;
  f.collect_spans(spans);
  // A cold decision cache at sn_a sends the first packet through the slow
  // path: the hop span is hop_slow and the service-module dispatch emitted
  // its own child span on the control thread.
  bool saw_slow = false, saw_service = false;
  for (const trace::path_span& s : spans) {
    if (s.node != f.sn_a) continue;
    saw_slow |= s.kind == trace::span_kind::hop_slow;
    saw_service |= s.kind == trace::span_kind::service;
  }
  EXPECT_TRUE(saw_slow);
  EXPECT_TRUE(saw_service);
}

TEST(PathTrace, ObservabilityPlaneAggregatesPushesIntoRollups) {
  three_hop_fixture f;
  for (int i = 0; i < 6; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("rollup"));
  }
  f.net.run();
  ASSERT_EQ(f.delivered, 6);

  // Each SN pushes its merged registry + drained spans to its edomain's
  // plane on the node's own scheduler tick (bounded so the sim drains).
  edomain::observability_plane& plane1 = f.net.core_of(f.dom1).observability();
  edomain::observability_plane& plane2 = f.net.core_of(f.dom2).observability();
  for (const peer_id id : {f.gw1, f.sn_a}) {
    f.net.sn(id).start_observability_push(
        1ms,
        [&plane1, id](const metrics_registry& merged, std::span<const trace::path_span> spans) {
          plane1.ingest(id, merged, spans);
        },
        /*max_pushes=*/3);
  }
  f.net.sn(f.gw2).start_observability_push(
      1ms,
      [&plane2, gw2 = f.gw2](const metrics_registry& merged,
                             std::span<const trace::path_span> spans) {
        plane2.ingest(gw2, merged, spans);
      },
      /*max_pushes=*/3);
  f.net.run();

  EXPECT_EQ(plane1.nodes(), 2u);
  EXPECT_EQ(plane2.nodes(), 1u);
  EXPECT_GE(plane1.pushes(), 6u);

  // Per-(service, node) rollups: every traced hop folded its duration in.
  for (const peer_id id : {f.gw1, f.sn_a}) {
    const auto r = plane1.rollup(ilp::svc::delivery, id);
    EXPECT_GE(r.spans, 6u) << "node " << id;
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GE(r.p99_ns, r.p50_ns);
  }
  EXPECT_GE(plane2.rollup(ilp::svc::delivery, f.gw2).spans, 6u);

  // Exposition: rollup families plus the nodes' own counters, node-labelled.
  const std::string prom = plane1.export_prometheus();
  EXPECT_NE(prom.find("# TYPE edomain_hop_ns summary"), std::string::npos);
  EXPECT_NE(prom.find("edomain_hop_spans{"), std::string::npos);
  EXPECT_NE(prom.find("node=\"" + std::to_string(f.sn_a) + "\""), std::string::npos);
  EXPECT_NE(prom.find("sn_rx_pkts"), std::string::npos);

  // Fold the host-side ends into dom2's collector: the plane's JSON dump
  // then shows complete traces.
  std::vector<trace::path_span> host_spans;
  f.alice->drain_path_spans(host_spans);
  f.bob->drain_path_spans(host_spans);
  plane2.traces().ingest(std::span<const trace::path_span>(host_spans));
  const std::string json = plane2.export_json();
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"deliver\""), std::string::npos);

  const std::string top = plane1.render_top();
  EXPECT_NE(top.find(std::to_string(f.sn_a)), std::string::npos);
  EXPECT_NE(top.find("p99"), std::string::npos);
}

TEST(PathTrace, MidPathFailoverAnnotatesTracesInsteadOfDangling) {
  deploy::deployment_config cfg = tracing_config();
  // Liveness on: gw1's keepalives must notice gw2's crash and declare the
  // peer down, and the declaration must show up in affected traces.
  cfg.sn_keepalive_interval = 10ms;
  three_hop_fixture f(cfg);

  // Standby snapshot of gw2 taken while healthy.
  const bytes snapshot = f.net.sn(f.gw2).checkpoint_full();

  // Phase A: healthy traffic. (The clock starts a few ms in: interconnect's
  // bounded settle window for the peering handshakes.)
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("healthy"));
  f.net.net().run_until(time_point(20ms));
  ASSERT_EQ(f.delivered, 1);

  // Phase B: gw2 crashes; packets sent now die on the gateway link, and
  // gw1's liveness declares the peer down after the miss budget.
  f.net.net().crash_node(static_cast<sim::node_id>(f.gw2));
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("lost"));
  f.net.net().run_until(time_point(100ms));
  ASSERT_EQ(f.delivered, 1);

  // Phase C: node restarts and the standby state is restored from the
  // checkpoint (emitting the failover event); traffic resumes.
  f.net.net().restart_node(static_cast<sim::node_id>(f.gw2));
  f.net.net().run_until(time_point(180ms));  // reconnect settles
  f.net.sn(f.gw2).restore_full(snapshot);
  f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("recovered"));
  f.net.net().run_until(time_point(240ms));
  ASSERT_EQ(f.delivered, 2);

  std::vector<trace::path_span> spans;
  f.collect_spans(spans);
  trace::trace_collector col;
  col.ingest(std::span<const trace::path_span>(spans));

  bool saw_lost_annotated = false, saw_recovered_failover = false;
  for (const trace::path_trace& t : col.assemble_all()) {
    if (t.hops.empty() || t.hops[0].spans.empty()) continue;
    const std::uint64_t origin_start = t.hops[0].spans.front().start_ns;
    if (!t.complete) {
      // The mid-crash trace: it died at gw1's forward toward the dead
      // gateway. It must carry the peer-down explanation, not dangle.
      EXPECT_GE(t.hops.size(), 3u);
      EXPECT_EQ(t.hops.back().node, f.gw1);
      if ((t.annotations & trace::kAnnoPeerDown) != 0) saw_lost_annotated = true;
    } else if (origin_start >= 180'000'000ull) {
      // The post-restore trace passes through the restored gw2 while the
      // failover event sits inside its window: annotated AND complete.
      EXPECT_EQ(t.hops.size(), 5u);
      if ((t.annotations & trace::kAnnoFailover) != 0) saw_recovered_failover = true;
    }
  }
  EXPECT_TRUE(saw_lost_annotated);
  EXPECT_TRUE(saw_recovered_failover);

  // The raw events also surfaced: gw1's peer-down and gw2's failover.
  bool peer_down_event = false, failover_event = false;
  for (const trace::path_span& e : col.events()) {
    peer_down_event |= e.node == f.gw1 && (e.annotations & trace::kAnnoPeerDown) != 0;
    failover_event |= e.node == f.gw2 && (e.annotations & trace::kAnnoFailover) != 0;
  }
  EXPECT_TRUE(peer_down_event);
  EXPECT_TRUE(failover_event);
}

// One full faulted run: duplication + reordering on the host-side SN link,
// a partition across the gateway link mid-run, healed later. Returns a
// digest of every span emitted plus delivery/ingest accounting.
struct faulted_run {
  std::string digest;
  std::size_t span_count = 0;
  std::size_t complete = 0;
  std::size_t incomplete = 0;
  std::uint64_t duplicates_ignored = 0;
  int delivered = 0;
};

faulted_run run_faulted(std::uint64_t seed) {
  deploy::deployment_config cfg = tracing_config();
  cfg.seed = seed;
  three_hop_fixture f(cfg);

  sim::link_properties flaky;
  flaky.duplicate_rate = 0.3;
  flaky.reorder_rate = 0.3;
  f.net.net().set_link_symmetric(static_cast<sim::node_id>(f.sn_a),
                                 static_cast<sim::node_id>(f.gw1), flaky);
  const std::vector<sim::fault_event> schedule = {
      {.at = 5ms, .kind = sim::fault_kind::partition, .a = static_cast<sim::node_id>(f.gw1),
       .b = static_cast<sim::node_id>(f.gw2)},
      {.at = 15ms, .kind = sim::fault_kind::heal, .a = static_cast<sim::node_id>(f.gw1),
       .b = static_cast<sim::node_id>(f.gw2)},
  };
  f.net.net().schedule_faults(schedule);

  for (int i = 0; i < 6; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("pre"));
  }
  f.net.net().at(time_point(6ms), [&f] {
    for (int i = 0; i < 4; ++i) {
      f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("partitioned"));
    }
  });
  f.net.net().at(time_point(20ms), [&f] {
    for (int i = 0; i < 4; ++i) {
      f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("healed"));
    }
  });
  f.net.net().run_until(time_point(60ms));

  std::vector<trace::path_span> spans;
  f.collect_spans(spans);

  faulted_run out;
  out.span_count = spans.size();
  out.delivered = f.delivered;

  // Canonical digest over every emitted span: any nondeterminism or span
  // corruption under faults shows up as a digest mismatch between runs.
  std::sort(spans.begin(), spans.end(),
            [](const trace::path_span& a, const trace::path_span& b) {
              return std::tie(a.trace_id, a.span_id) < std::tie(b.trace_id, b.span_id);
            });
  std::ostringstream os;
  for (const trace::path_span& s : spans) {
    os << s.trace_id << ':' << s.span_id << ':' << s.node << ':'
       << static_cast<int>(s.kind) << ':' << static_cast<int>(s.hop_count) << ':'
       << s.start_ns << ':' << s.annotations << '\n';
  }
  out.digest = os.str();

  // Idempotent intake: the same drained batch ingested twice must not
  // double-count a single span.
  trace::trace_collector col(4096);
  col.ingest(std::span<const trace::path_span>(spans));
  col.ingest(std::span<const trace::path_span>(spans));
  const std::size_t trace_spans =
      spans.size() - static_cast<std::size_t>(std::count_if(
                         spans.begin(), spans.end(),
                         [](const trace::path_span& s) { return s.trace_id == 0; }));
  out.duplicates_ignored = col.duplicates_ignored();
  EXPECT_EQ(out.duplicates_ignored, trace_spans);

  for (const trace::path_trace& t : col.assemble_all()) {
    if (t.complete) {
      ++out.complete;
    } else {
      ++out.incomplete;
    }
  }
  return out;
}

TEST(PathTrace, FaultScheduleNeverCorruptsSpansAndReplaysDeterministically) {
  const faulted_run a = run_faulted(1234);
  const faulted_run b = run_faulted(1234);
  // Byte-identical replay: same seed, same schedule, same spans.
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.span_count, b.span_count);
  EXPECT_EQ(a.delivered, b.delivered);

  EXPECT_GT(a.span_count, 0u);
  // Traffic before the partition and after the heal completes; the
  // partition window leaves incomplete (never corrupt) traces.
  EXPECT_GT(a.complete, 0u);
  EXPECT_GT(a.incomplete, 0u);
  // A different seed re-rolls the duplicate/reorder draws but the path
  // still reassembles.
  const faulted_run c = run_faulted(99);
  EXPECT_GT(c.complete, 0u);
}

}  // namespace
}  // namespace interedge
