// Whole-system observability (ISSUE 2): after real traffic through a
// deployment, the SN exposition surface must parse as Prometheus text,
// cover every registered metric family, show populated per-stage
// histograms, and the periodic stats hook must emit rate reports over the
// node's own scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/service_node.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"

namespace interedge {
namespace {

using namespace std::chrono_literals;

// Splits exposition text into lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

// One edomain, two SNs, two hosts exchanging delivery traffic — the hosts
// sit on *different* SNs so §3.2 direct connectivity doesn't bypass the
// SN datapath we're observing; sn_id is the sender's first hop.
struct traffic_fixture {
  deploy::deployment net;
  core::peer_id sn_id;
  host::host_stack* alice;
  host::host_stack* bob;
  int delivered = 0;

  traffic_fixture() {
    const auto dom = net.add_edomain();
    sn_id = net.add_sn(dom);
    const auto sn_b = net.add_sn(dom);
    alice = &net.add_host(dom, sn_id);
    bob = &net.add_host(dom, sn_b);
    net.interconnect();
    deploy::deploy_standard_services(net);
    bob->set_default_handler([this](const ilp::ilp_header&, bytes) { ++delivered; });
    for (int i = 0; i < 20; ++i) {
      alice->send_to(bob->addr(), ilp::svc::delivery, to_bytes("ping"));
    }
    net.run();
  }
};

TEST(Observability, PrometheusExportParsesAndCoversEveryFamily) {
  traffic_fixture f;
  ASSERT_GT(f.delivered, 0);
  core::service_node& sn = f.net.sn(f.sn_id);
  const std::string text = sn.metrics().export_prometheus();
  ASSERT_FALSE(text.empty());

  // Every line is either "# TYPE <name> <type>" or "<series> <number>".
  for (const std::string& line : lines_of(text)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string type = rest.substr(sp + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "summary") << line;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    // Series: sanitized name, optional {labels}.
    for (char c : series.substr(0, series.find('{'))) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
          << "bad metric char in: " << line;
    }
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric value in: " << line;
  }

  // Coverage: every family the registry knows appears as a TYPE line.
  for (const std::string& family : sn.metrics().family_names()) {
    std::string prom = family;
    for (char& c : prom) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':') c = '_';
    }
    EXPECT_NE(text.find("# TYPE " + prom + " "), std::string::npos)
        << "family not exported: " << family;
  }
}

TEST(Observability, DatapathCountersAndStageHistogramsPopulate) {
  traffic_fixture f;
  core::service_node& sn = f.net.sn(f.sn_id);
  const auto samples = sn.metrics().samples();
  const auto value_of = [&](const std::string& key) {
    const auto it = std::find_if(samples.begin(), samples.end(),
                                 [&](const metric_sample& s) { return s.key == key; });
    return it == samples.end() ? -1.0 : it->value;
  };
  // The hosts' packets traversed the SN: per-service rx counted, slow
  // path consulted at least once (cold cache), then forwarded onward.
  EXPECT_GT(value_of("sn.rx.pkts{service=\"delivery\"}"), 0.0);
  EXPECT_GT(value_of("sn.slowpath.pkts"), 0.0);
  EXPECT_GT(value_of("sn.tx.forwarded"), 0.0);
  // Every slow-path dispatch runs inside a service-stage span, and the
  // sampler sequence advances once per packet.
  trace::tracer& tr = sn.packet_tracer();
  EXPECT_GT(tr.stage_hist(trace::stage::service).count(), 0u);
  EXPECT_GT(tr.packets_seen(), 0u);
  // And the service dispatch family exists for the deployed module.
  const auto families = sn.metrics().family_names();
  EXPECT_NE(std::find(families.begin(), families.end(), "sn.slowpath.dispatch"),
            families.end());
}

TEST(Observability, PeriodicStatsReportingEmitsRates) {
  traffic_fixture f;
  core::service_node& sn = f.net.sn(f.sn_id);
  std::vector<std::string> reports;
  sn.start_stats_reporting(1ms, [&reports](const std::string& r) { reports.push_back(r); },
                           /*max_reports=*/3);
  f.net.run();  // runs until the bounded report schedule drains
  ASSERT_EQ(reports.size(), 3u);
  for (const std::string& r : reports) {
    EXPECT_NE(r.find("sn.rx.delivered"), std::string::npos);
    EXPECT_NE(r.find("/s)"), std::string::npos);
  }
  // Quiesced between snapshots, so later deltas are zero-rate.
  EXPECT_NE(reports[2].find("sn.rx.delivered = "), std::string::npos);
  EXPECT_NE(reports[2].find(" (0/s)"), std::string::npos);
}

TEST(Observability, ManualSnapshotTracksDeltas) {
  traffic_fixture f;
  core::service_node& sn = f.net.sn(f.sn_id);
  const std::string first = sn.stats_snapshot();
  EXPECT_NE(first.find("sn.rx.delivered"), std::string::npos);
  // More traffic, then a second snapshot: the delta shows as a rate.
  for (int i = 0; i < 5; ++i) {
    f.alice->send_to(f.bob->addr(), ilp::svc::delivery, to_bytes("more"));
  }
  f.net.run();
  const std::string second = sn.stats_snapshot();
  EXPECT_NE(second.find("sn.rx.delivered"), std::string::npos);
  EXPECT_NE(second.find("/s)"), std::string::npos);
}

}  // namespace
}  // namespace interedge
