// Parameterized topology sweeps: invariants that must hold for any
// deployment shape (edomain count x SNs-per-edomain x hosts-per-edomain,
// gateway vs direct inter-domain).
#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/pubsub_client.h"

namespace interedge {
namespace {

struct shape {
  int edomains;
  int sns_per_domain;
  int hosts_per_domain;
  bool direct;
};

std::string shape_name(const ::testing::TestParamInfo<shape>& info) {
  return std::to_string(info.param.edomains) + "d" +
         std::to_string(info.param.sns_per_domain) + "s" +
         std::to_string(info.param.hosts_per_domain) + "h" +
         (info.param.direct ? "Direct" : "Gateway");
}

class TopologySweep : public ::testing::TestWithParam<shape> {
 protected:
  void build() {
    const shape s = GetParam();
    d = std::make_unique<deploy::deployment>(
        deploy::deployment_config{.direct_interdomain = s.direct});
    for (int e = 0; e < s.edomains; ++e) {
      const auto dom = d->add_edomain();
      domains.push_back(dom);
      for (int n = 0; n < s.sns_per_domain; ++n) d->add_sn(dom);
      for (int h = 0; h < s.hosts_per_domain; ++h) {
        const auto sns = d->sns_in(dom);
        hosts.push_back(d->add_host(dom, sns[h % sns.size()]).addr());
      }
    }
    d->interconnect();
    deploy::deploy_standard_services(*d);
  }

  std::unique_ptr<deploy::deployment> d;
  std::vector<deploy::edomain_id> domains;
  std::vector<host::edge_addr> hosts;
};

TEST_P(TopologySweep, AnyToAnyDelivery) {
  build();
  // "a neutral network that can support any-to-any communication" (§2.2).
  std::map<host::edge_addr, int> received;
  for (auto addr : hosts) {
    d->host_at(addr).set_default_handler(
        [&received, addr](const ilp::ilp_header&, bytes) { ++received[addr]; });
  }
  int expected_per_host = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    d->host_at(hosts[i]).send_to(hosts[(i + 1) % hosts.size()], ilp::svc::delivery,
                                 to_bytes("ring"));
  }
  expected_per_host = 1;
  d->run();
  for (auto addr : hosts) {
    EXPECT_EQ(received[addr], expected_per_host) << "host " << addr;
  }
}

TEST_P(TopologySweep, GlobalPubSubExactlyOnce) {
  build();
  std::vector<std::unique_ptr<services::pubsub_client>> clients;
  std::map<host::edge_addr, int> delivered;
  for (auto addr : hosts) {
    clients.push_back(std::make_unique<services::pubsub_client>(d->host_at(addr)));
    clients.back()->subscribe("sweep", [&delivered, addr](const std::string&, bytes) {
      ++delivered[addr];
    });
  }
  d->run();
  clients[0]->publish("sweep", to_bytes("once"));
  d->run();
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    EXPECT_EQ(delivered[hosts[i]], 1) << "host " << hosts[i];
  }
  EXPECT_EQ(delivered[hosts[0]], 0);  // no self-echo
}

TEST_P(TopologySweep, SettlementAlwaysZero) {
  build();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    d->host_at(hosts[i]).send_to(hosts[(i * 7 + 1) % hosts.size()], ilp::svc::delivery,
                                 bytes(200, 1));
  }
  d->run();
  for (auto a : domains) {
    for (auto b : domains) {
      EXPECT_EQ(d->ledger().settlement_due(a, b), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweep,
    ::testing::Values(shape{2, 1, 2, false}, shape{2, 1, 2, true}, shape{3, 2, 2, false},
                      shape{3, 2, 2, true}, shape{5, 1, 1, false}, shape{4, 3, 3, false},
                      shape{6, 2, 1, true}),
    shape_name);

}  // namespace
}  // namespace interedge
