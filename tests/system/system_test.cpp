// Whole-system tests: many services running simultaneously on the same
// InterEdge, exercising the claim that "different services need not
// interfere with each other nor with traffic that does not need their
// functionality" (§2.1), plus determinism and scale checks.
#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/content.h"
#include "services/clients/multicast_client.h"
#include "services/clients/pubsub_client.h"
#include "services/clients/qos_client.h"
#include "services/clients/queue_client.h"
#include "services/ddos.h"

namespace interedge {
namespace {

using namespace std::chrono_literals;

TEST(System, ConcurrentServicesDoNotInterfere) {
  deploy::deployment d;
  const auto west = d.add_edomain();
  const auto east = d.add_edomain();
  const auto sn_w = d.add_sn(west);
  d.add_sn(west);
  const auto sn_e = d.add_sn(east);
  auto& a = d.add_host(west, sn_w);
  auto& b = d.add_host(west);
  auto& c = d.add_host(east, sn_e);
  auto& e = d.add_host(east);
  d.interconnect();
  deploy::deploy_standard_services(d);

  // 1. pub/sub conversation between a and c.
  services::pubsub_client sub(*(&c)), pub(*(&a));
  int chat = 0;
  sub.subscribe("chat", [&](const std::string&, bytes) { ++chat; });

  // 2. CDN fetches from b against an origin at e.
  services::content_origin origin(e);
  origin.put("asset", bytes(500, 1));
  services::content_client cdn(b);
  int fetched = 0;

  // 3. Message queue between a (producer) and c (consumer).
  services::queue_client mq_prod(a), mq_cons(c);
  int jobs = 0;
  mq_cons.set_message_handler([&](const std::string& q, std::uint64_t seq, bytes) {
    ++jobs;
    mq_cons.ack(q, seq);
  });

  // 4. Plain delivery traffic that uses none of the above, to a host
  //    whose delivery service is otherwise unused (e runs the CDN origin,
  //    whose handler owns svc::delivery there).
  int plain = 0;
  c.set_default_handler([&](const ilp::ilp_header&, bytes) { ++plain; });

  d.run();
  mq_prod.create("work");
  d.run();

  // Interleave everything.
  for (int round = 0; round < 5; ++round) {
    pub.publish("chat", to_bytes("m"));
    cdn.fetch(e.addr(), "asset", [&](const std::string&, bytes) { ++fetched; });
    mq_prod.push("work", to_bytes("job"));
    a.send_to(c.addr(), ilp::svc::delivery, to_bytes("plain"));
    d.run();
    mq_cons.pop("work");
    d.run();
  }

  EXPECT_EQ(chat, 5);
  EXPECT_EQ(fetched, 5);
  EXPECT_EQ(jobs, 5);
  EXPECT_EQ(plain, 5);
}

TEST(System, DdosAttackDoesNotDegradeOtherTenants) {
  // An attack on one protected host is shed at the edge; an unrelated
  // pub/sub conversation through the same SN keeps flowing.
  deploy::deployment d;
  const auto west = d.add_edomain();
  const auto east = d.add_edomain();
  const auto sn_w = d.add_sn(west);
  const auto sn_e = d.add_sn(east);
  auto& victim = d.add_host(west, sn_w);
  auto& bystander_pub = d.add_host(east, sn_e);
  auto& bystander_sub = d.add_host(west, sn_w);
  auto& attacker = d.add_host(east, sn_e);
  d.interconnect();
  deploy::deploy_standard_services(d);

  // Victim opts into protection.
  ilp::ilp_header protect;
  protect.service = ilp::svc::ddos_protect;
  protect.connection = 1;
  protect.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  protect.set_meta_str(ilp::meta_key::control_op, services::ops::protect);
  protect.set_meta_u64(ilp::meta_key::src_addr, victim.addr());
  victim.pipes().send(victim.first_hop_sn(), protect, {});
  d.run();

  services::pubsub_client sub(bystander_sub), pub(bystander_pub);
  int delivered = 0;
  sub.subscribe("weather", [&](const std::string&, bytes) { ++delivered; });
  d.run();

  // 200 attack packets interleaved with 10 legitimate publishes.
  int victim_hits = 0;
  victim.set_default_handler([&](const ilp::ilp_header&, bytes) { ++victim_hits; });
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 20; ++j) {
      ilp::ilp_header flood;
      flood.service = ilp::svc::ddos_protect;
      flood.connection = 77;  // one connection: shed on the fast path
      flood.flags = ilp::kFlagFromHost;
      flood.set_meta_u64(ilp::meta_key::src_addr, attacker.addr());
      flood.set_meta_u64(ilp::meta_key::dest_addr, victim.addr());
      attacker.pipes().send(attacker.first_hop_sn(), flood, bytes(1000, 0xff));
    }
    pub.publish("weather", to_bytes("sunny"));
    d.run();
  }

  EXPECT_EQ(victim_hits, 0);
  EXPECT_EQ(delivered, 10);  // bystanders unaffected
  auto* ddos = static_cast<services::ddos_service*>(
      d.sn(sn_w).env().module_for(ilp::svc::ddos_protect));
  EXPECT_GE(ddos->denied(), 1u);
  EXPECT_GE(d.sn(sn_w).cache().stats().hits, 150u);  // shed without service work
}

TEST(System, SimulationIsDeterministic) {
  // Two identical deployments produce byte-identical delivery traces.
  auto run_trace = [](std::uint64_t seed) {
    deploy::deployment d(deploy::deployment_config{.seed = seed});
    const auto west = d.add_edomain();
    const auto east = d.add_edomain();
    d.add_sn(west);
    d.add_sn(east);
    auto& a = d.add_host(west);
    auto& b = d.add_host(east);
    d.interconnect();
    deploy::deploy_standard_services(d);

    std::vector<std::tuple<std::uint64_t, std::uint64_t, std::size_t, std::int64_t>> trace;
    d.net().set_tap([&](sim::node_id from, sim::node_id to, const bytes& data) {
      trace.emplace_back(from, to, data.size(), d.net().now().time_since_epoch().count());
    });
    b.set_default_handler([](const ilp::ilp_header&, bytes) {});
    for (int i = 0; i < 20; ++i) a.send_to(b.addr(), ilp::svc::delivery, bytes(100, 0x11));
    d.run();
    return trace;
  };
  // Note: packet *contents* differ run to run (fresh handshake keys), but
  // the behavioral trace (who, to whom, how big, when) must be identical.
  const auto t1 = run_trace(33);
  const auto t2 = run_trace(33);
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1.size(), 20u);
}

TEST(System, TenEdomainFullMeshAtModestScale) {
  deploy::deployment d;
  std::vector<deploy::edomain_id> domains;
  std::vector<host::edge_addr> hosts;
  for (int i = 0; i < 10; ++i) {
    domains.push_back(d.add_edomain());
    d.add_sn(domains.back());
    hosts.push_back(d.add_host(domains.back()).addr());
  }
  d.interconnect();
  deploy::deploy_standard_services(d);

  // 45 peering pipes (10 choose 2) must exist.
  int pipes = 0;
  for (auto dom : domains) {
    pipes += static_cast<int>(d.core_of(dom).peered_edomains().size());
  }
  EXPECT_EQ(pipes, 10 * 9);

  // A global pub/sub topic with one subscriber per edomain.
  std::vector<std::unique_ptr<services::pubsub_client>> clients;
  int delivered = 0;
  for (auto addr : hosts) {
    clients.push_back(std::make_unique<services::pubsub_client>(d.host_at(addr)));
    clients.back()->subscribe("world", [&](const std::string&, bytes) { ++delivered; });
  }
  d.run();
  clients[0]->publish("world", to_bytes("broadcast"));
  d.run();
  EXPECT_EQ(delivered, 9);  // everyone but the publisher

  // Settlement stays zero across all pairs regardless of traffic volume.
  for (auto a : domains) {
    for (auto b : domains) {
      EXPECT_EQ(d.ledger().settlement_due(a, b), 0);
    }
  }
}

TEST(System, MetricsReportSurfacesDatapathCounters) {
  deploy::deployment d;
  const auto dom = d.add_edomain();
  const auto sn = d.add_sn(dom);
  auto& a = d.add_host(dom);
  auto& b = d.add_host(dom);
  d.interconnect();
  deploy::deploy_standard_services(d);

  services::pubsub_client sub(b), pub(a);
  sub.subscribe("t", [](const std::string&, bytes) {});
  d.run();
  pub.publish("t", to_bytes("m"));
  d.run();

  const std::string report = d.sn(sn).metrics().report();
  EXPECT_NE(report.find("pubsub.published"), std::string::npos);
  EXPECT_NE(report.find("fanout.origin_packets"), std::string::npos);
}

}  // namespace
}  // namespace interedge
