#include "crypto/aead.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

// RFC 8439 §2.8.2 AEAD test vector.
TEST(Aead, Rfc8439Vector) {
  const bytes key = from_hex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const bytes nonce = from_hex("070000004041424344454647");
  const bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");

  const bytes sealed = aead_seal(key.data(), nonce.data(), aad, plaintext);
  ASSERT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);

  const const_byte_span tag = const_byte_span(sealed).last(kAeadTagSize);
  EXPECT_EQ(hex(tag), "1ae10b594f09e26a7e902ecbd0600691");

  const const_byte_span ct = const_byte_span(sealed).first(plaintext.size());
  EXPECT_EQ(hex(ct.first(16)), "d31a8d34648e60db7b86afbc53ef7ec2");

  const auto opened = aead_open(key.data(), nonce.data(), aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, TamperedCiphertextRejected) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  bytes sealed = aead_seal(key.data(), nonce.data(), {}, to_bytes("payload"));
  sealed[0] ^= 0x01;
  EXPECT_FALSE(aead_open(key.data(), nonce.data(), {}, sealed).has_value());
}

TEST(Aead, TamperedTagRejected) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  bytes sealed = aead_seal(key.data(), nonce.data(), {}, to_bytes("payload"));
  sealed.back() ^= 0x01;
  EXPECT_FALSE(aead_open(key.data(), nonce.data(), {}, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  const bytes sealed = aead_seal(key.data(), nonce.data(), to_bytes("context-a"), to_bytes("p"));
  EXPECT_FALSE(aead_open(key.data(), nonce.data(), to_bytes("context-b"), sealed).has_value());
  EXPECT_TRUE(aead_open(key.data(), nonce.data(), to_bytes("context-a"), sealed).has_value());
}

TEST(Aead, WrongKeyRejected) {
  const bytes key_a(32, 1), key_b(32, 2);
  const bytes nonce(12, 3);
  const bytes sealed = aead_seal(key_a.data(), nonce.data(), {}, to_bytes("p"));
  EXPECT_FALSE(aead_open(key_b.data(), nonce.data(), {}, sealed).has_value());
}

TEST(Aead, EmptyPlaintextRoundTrip) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  const bytes sealed = aead_seal(key.data(), nonce.data(), to_bytes("aad"), {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(key.data(), nonce.data(), to_bytes("aad"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, TooShortInputRejected) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  EXPECT_FALSE(aead_open(key.data(), nonce.data(), {}, bytes(5, 0)).has_value());
}

// Property sweep over payload sizes including block boundaries.
class AeadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AeadSizeSweep, RoundTrip) {
  const bytes key(32, 9);
  const bytes nonce(12, 8);
  bytes plaintext(GetParam());
  for (std::size_t i = 0; i < plaintext.size(); ++i) plaintext[i] = static_cast<std::uint8_t>(i);
  const bytes sealed = aead_seal(key.data(), nonce.data(), to_bytes("hdr"), plaintext);
  const auto opened = aead_open(key.data(), nonce.data(), to_bytes("hdr"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AeadSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 63, 64, 65, 127, 128, 255, 1024,
                                           1500, 9000));

}  // namespace
}  // namespace interedge::crypto
