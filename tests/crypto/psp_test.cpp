#include "crypto/psp.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

psp_master_key test_master(std::uint8_t fill = 0x44) {
  psp_master_key k;
  k.fill(fill);
  return k;
}

TEST(Psp, SealOpenRoundTrip) {
  psp_context tx(test_master(), 7);
  const psp_context rx(test_master(), 7);
  const bytes wire = tx.seal(to_bytes("ilp header bytes"), to_bytes("aad"));
  const auto opened = rx.open(wire, to_bytes("aad"));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "ilp header bytes");
}

TEST(Psp, WireOverheadIsFixed) {
  psp_context tx(test_master(), 1);
  const bytes wire = tx.seal(to_bytes("x"), {});
  EXPECT_EQ(wire.size(), 1 + kPspOverhead);
}

// The zero-copy ingress path decrypts in place: open_into's destination is
// exactly the wire's ciphertext region. Pin the aliasing guarantee the
// datapath depends on (tag verified before any write, memmove-safe xor).
TEST(Psp, OpenIntoAliasingCiphertextRegion) {
  psp_context tx(test_master(), 9);
  const psp_context rx(test_master(), 9);
  const bytes plain = to_bytes("ilp header that decrypts in place");
  bytes wire = tx.seal(plain, to_bytes("aad"));

  byte_span dst = byte_span(wire).subspan(12, wire.size() - kPspOverhead);
  const auto n = rx.open_into(wire, to_bytes("aad"), dst);
  ASSERT_TRUE(n.has_value());
  ASSERT_EQ(*n, plain.size());
  EXPECT_EQ(to_string(const_byte_span(dst.data(), *n)), to_string(plain));
}

TEST(Psp, OpenIntoAliasedFailureLeavesWireIntact) {
  psp_context tx(test_master(), 9);
  const psp_context rx(test_master(), 9);
  bytes wire = tx.seal(to_bytes("do not touch on failure"), {});
  wire[wire.size() - 1] ^= 0x01;  // break the tag
  const bytes before = wire;

  byte_span dst = byte_span(wire).subspan(12, wire.size() - kPspOverhead);
  EXPECT_FALSE(rx.open_into(wire, {}, dst).has_value());
  // Authentication failed before any plaintext byte was written: the wire
  // (including the region dst aliases) is byte-identical.
  EXPECT_EQ(wire, before);
}

TEST(Psp, OutOfOrderPacketsOpen) {
  psp_context tx(test_master(), 3);
  psp_context rx(test_master(), 3);
  const bytes w1 = tx.seal(to_bytes("first"), {});
  const bytes w2 = tx.seal(to_bytes("second"), {});
  const bytes w3 = tx.seal(to_bytes("third"), {});
  // Receiver sees 3, 1, 2 — PSP is stateless per packet, all must open.
  EXPECT_EQ(to_string(*rx.open(w3, {})), "third");
  EXPECT_EQ(to_string(*rx.open(w1, {})), "first");
  EXPECT_EQ(to_string(*rx.open(w2, {})), "second");
}

TEST(Psp, WrongAadRejected) {
  psp_context tx(test_master(), 3);
  const psp_context rx(test_master(), 3);
  const bytes wire = tx.seal(to_bytes("data"), to_bytes("outer-src=A"));
  EXPECT_FALSE(rx.open(wire, to_bytes("outer-src=B")).has_value());
}

TEST(Psp, TamperedPacketRejected) {
  psp_context tx(test_master(), 3);
  const psp_context rx(test_master(), 3);
  bytes wire = tx.seal(to_bytes("data"), {});
  wire[wire.size() / 2] ^= 0x80;
  EXPECT_FALSE(rx.open(wire, {}).has_value());
}

TEST(Psp, WrongMasterKeyRejected) {
  psp_context tx(test_master(0x11), 3);
  const psp_context rx(test_master(0x22), 3);
  const bytes wire = tx.seal(to_bytes("data"), {});
  EXPECT_FALSE(rx.open(wire, {}).has_value());
}

TEST(Psp, UnknownSpiRejected) {
  psp_context tx(test_master(), 3);
  const psp_context rx(test_master(), 4);  // different SPI base
  const bytes wire = tx.seal(to_bytes("data"), {});
  EXPECT_FALSE(rx.open(wire, {}).has_value());
}

TEST(Psp, RotationFlipsEpochBitAndChangesKey) {
  psp_context tx(test_master(), 9);
  const std::uint32_t spi0 = tx.current_spi();
  tx.rotate();
  EXPECT_NE(tx.current_spi(), spi0);
  EXPECT_EQ(tx.current_spi() & 0x7fffffffu, spi0 & 0x7fffffffu);
  EXPECT_EQ(tx.epoch(), 1u);
}

TEST(Psp, ReceiverAcceptsPreviousEpochDuringRotation) {
  psp_context tx(test_master(), 9);
  psp_context rx(test_master(), 9);
  const bytes old_wire = tx.seal(to_bytes("pre-rotation"), {});
  tx.rotate();
  rx.rotate();
  const bytes new_wire = tx.seal(to_bytes("post-rotation"), {});
  // In-flight packet from the previous epoch still opens.
  EXPECT_EQ(to_string(*rx.open(old_wire, {})), "pre-rotation");
  EXPECT_EQ(to_string(*rx.open(new_wire, {})), "post-rotation");
}

TEST(Psp, TwoEpochsBackRejected) {
  psp_context tx(test_master(), 9);
  psp_context rx(test_master(), 9);
  const bytes ancient = tx.seal(to_bytes("epoch-0"), {});
  for (int i = 0; i < 2; ++i) {
    tx.rotate();
    rx.rotate();
  }
  // Epoch 0 and epoch 2 share an SPI (one epoch bit) but use different keys.
  EXPECT_FALSE(rx.open(ancient, {}).has_value());
}

TEST(Psp, IvCounterResetOnRotate) {
  psp_context tx(test_master(), 9);
  tx.seal(to_bytes("a"), {});
  tx.seal(to_bytes("b"), {});
  EXPECT_EQ(tx.packets_sealed(), 2u);
  tx.rotate();
  EXPECT_EQ(tx.packets_sealed(), 0u);
}

TEST(Psp, DistinctPacketsDistinctCiphertext) {
  psp_context tx(test_master(), 5);
  const bytes w1 = tx.seal(to_bytes("same"), {});
  const bytes w2 = tx.seal(to_bytes("same"), {});
  EXPECT_NE(w1, w2);  // IV advances
}

TEST(Psp, SealIntoMatchesSeal) {
  psp_context tx_a(test_master(), 7);
  psp_context tx_b(test_master(), 7);
  const bytes plaintext = to_bytes("scratch-buffer seal");
  const bytes aad = to_bytes("aad");
  const bytes wire = tx_a.seal(plaintext, aad);
  bytes scratch(plaintext.size() + kPspOverhead);
  const std::size_t n = tx_b.seal_into(plaintext, aad, scratch);
  EXPECT_EQ(n, wire.size());
  EXPECT_EQ(scratch, wire);  // same spi/iv sequence → identical wire bytes
}

TEST(Psp, OpenIntoRoundTripAndReject) {
  psp_context tx(test_master(), 7);
  const psp_context rx(test_master(), 7);
  const bytes aad = to_bytes("aad");
  bytes wire = tx.seal(to_bytes("payload"), aad);
  bytes out(wire.size() - kPspOverhead);
  const auto n = rx.open_into(wire, aad, out);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, out.size());
  EXPECT_EQ(to_string(out), "payload");
  wire[wire.size() - 1] ^= 1;  // corrupt the tag
  EXPECT_FALSE(rx.open_into(wire, aad, out).has_value());
}

TEST(Psp, SealBatchOpenBatchRoundTrip) {
  psp_context tx(test_master(), 5);
  const psp_context rx(test_master(), 5);
  const bytes aad = to_bytes("batch-aad");

  constexpr std::size_t kCount = 8;
  std::vector<bytes> plaintexts(kCount);
  std::vector<const_byte_span> pt_spans(kCount);
  std::vector<bytes> wires(kCount);
  std::vector<byte_span> wire_spans(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    plaintexts[i].assign(32 + i * 11, static_cast<std::uint8_t>(i + 1));
    pt_spans[i] = plaintexts[i];
    wires[i].resize(plaintexts[i].size() + kPspOverhead);
    wire_spans[i] = wires[i];
  }
  EXPECT_EQ(tx.seal_batch(pt_spans, aad, wire_spans), kCount);

  std::vector<const_byte_span> wire_views(wires.begin(), wires.end());
  std::vector<bytes> opened(kCount);
  std::vector<byte_span> opened_spans(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    opened[i].resize(wires[i].size() - kPspOverhead);
    opened_spans[i] = opened[i];
  }
  // std::vector<bool> is bit-packed and cannot back a span<bool>.
  bool ok_flags[kCount] = {};
  EXPECT_EQ(rx.open_batch(wire_views, aad, opened_spans, ok_flags), kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_TRUE(ok_flags[i]) << i;
    EXPECT_EQ(opened[i], plaintexts[i]) << i;
  }
}

TEST(Psp, OpenBatchRejectsTamperedPacketOnly) {
  psp_context tx(test_master(), 5);
  const psp_context rx(test_master(), 5);
  constexpr std::size_t kCount = 4;
  std::vector<bytes> wires(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    wires[i] = tx.seal(bytes(24, static_cast<std::uint8_t>(i)), {});
  }
  wires[2][wires[2].size() / 2] ^= 0x40;  // tamper with one packet

  std::vector<const_byte_span> wire_views(wires.begin(), wires.end());
  std::vector<bytes> opened(kCount);
  std::vector<byte_span> opened_spans(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    opened[i].resize(wires[i].size() - kPspOverhead);
    opened_spans[i] = opened[i];
  }
  bool ok_flags[kCount] = {};
  EXPECT_EQ(rx.open_batch(wire_views, const_byte_span{}, opened_spans, ok_flags), kCount - 1);
  EXPECT_TRUE(ok_flags[0]);
  EXPECT_TRUE(ok_flags[1]);
  EXPECT_FALSE(ok_flags[2]);
  EXPECT_TRUE(ok_flags[3]);
  EXPECT_EQ(opened[3], bytes(24, 3));  // packets after the bad one still open
}

class PspPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PspPayloadSweep, RoundTrip) {
  psp_context tx(test_master(), 2);
  const psp_context rx(test_master(), 2);
  bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i * 7);
  const auto opened = rx.open(tx.seal(payload, {}), {});
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PspPayloadSweep,
                         ::testing::Values(0, 1, 16, 64, 512, 1400, 9000));

}  // namespace
}  // namespace interedge::crypto
