#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace interedge::crypto {
namespace {

std::string hash_hex(std::string_view msg) {
  const auto d = sha256::hash(to_bytes(msg));
  return hex(const_byte_span(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  sha256 h;
  const bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.finish();
  EXPECT_EQ(hex(const_byte_span(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Incremental updates must match one-shot hashing at every split point.
TEST(Sha256, IncrementalMatchesOneShot) {
  const bytes msg = to_bytes("The quick brown fox jumps over the lazy dog, repeatedly and often.");
  const auto expected = sha256::hash(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    sha256 h;
    h.update(const_byte_span(msg).first(split));
    h.update(const_byte_span(msg).subspan(split));
    EXPECT_EQ(h.finish(), expected) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // Messages of length 55, 56, 63, 64, 65 exercise every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const bytes msg(len, 'x');
    sha256 one;
    one.update(msg);
    sha256 two;
    for (std::size_t i = 0; i < len; ++i) two.update(const_byte_span(&msg[i], 1));
    EXPECT_EQ(one.finish(), two.finish()) << "length " << len;
  }
}

}  // namespace
}  // namespace interedge::crypto
