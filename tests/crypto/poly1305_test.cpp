#include "crypto/poly1305.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

// RFC 8439 §2.5.2 test vector.
TEST(Poly1305, Rfc8439Vector) {
  const bytes key = from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const bytes msg = to_bytes("Cryptographic Forum Research Group");
  const auto tag = poly1305::mac(key.data(), msg);
  EXPECT_EQ(hex(const_byte_span(tag.data(), tag.size())), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
  const bytes key(32, 0x01);
  const auto tag = poly1305::mac(key.data(), {});
  // With r != 0 and empty input the tag equals the pad (s part of the key).
  EXPECT_EQ(hex(const_byte_span(tag.data(), tag.size())), "01010101010101010101010101010101");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  const bytes key = from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const bytes msg = to_bytes("Cryptographic Forum Research Group");
  const auto expected = poly1305::mac(key.data(), msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    poly1305 p(key.data());
    p.update(const_byte_span(msg).first(split));
    p.update(const_byte_span(msg).subspan(split));
    EXPECT_EQ(p.finish(), expected) << "split " << split;
  }
}

TEST(Poly1305, DifferentKeysDifferentTags) {
  const bytes key_a(32, 0x11);
  const bytes key_b(32, 0x22);
  const bytes msg = to_bytes("same message");
  EXPECT_NE(poly1305::mac(key_a.data(), msg), poly1305::mac(key_b.data(), msg));
}

TEST(Poly1305, SingleBitFlipChangesTag) {
  const bytes key = from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  bytes msg(48, 0xab);
  const auto tag = poly1305::mac(key.data(), msg);
  msg[17] ^= 0x01;
  EXPECT_NE(poly1305::mac(key.data(), msg), tag);
}

// Edge case from RFC 8439 security considerations: message blocks equal to
// the prime's residue boundaries must reduce correctly.
TEST(Poly1305, AllOnesBlocks) {
  bytes key(32, 0);
  key[0] = 0x02;  // r = 2, s = 0
  const bytes msg(64, 0xff);
  const auto tag = poly1305::mac(key.data(), msg);
  EXPECT_EQ(tag.size(), kPolyTagSize);
  // Deterministic: recompute and compare.
  EXPECT_EQ(poly1305::mac(key.data(), msg), tag);
}

}  // namespace
}  // namespace interedge::crypto
