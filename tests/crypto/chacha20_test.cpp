#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include "crypto/cpu_features.h"

namespace interedge::crypto {
namespace {

// Restores the auto-detected SIMD level after a test forces a backend.
class simd_level_guard {
 public:
  simd_level_guard() : saved_(active_simd_level()) {}
  ~simd_level_guard() { set_simd_level(saved_); }

 private:
  simd_level saved_;
};

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockFunction) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000090000004a00000000");
  std::uint8_t out[64];
  chacha20_block(key.data(), 1, nonce.data(), out);
  EXPECT_EQ(hex(const_byte_span(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000000000004a00000000");
  bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  chacha20_xor(key.data(), 1, nonce.data(), plaintext);
  EXPECT_EQ(hex(plaintext),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const bytes key(32, 0x42);
  const bytes nonce(12, 0x01);
  bytes data = to_bytes("round trip me");
  const bytes original = data;
  chacha20_xor(key.data(), 0, nonce.data(), data);
  EXPECT_NE(data, original);
  chacha20_xor(key.data(), 0, nonce.data(), data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, CounterAdvancesKeystream) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  bytes a(64, 0), b(64, 0);
  chacha20_xor(key.data(), 0, nonce.data(), a);
  chacha20_xor(key.data(), 1, nonce.data(), b);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, MultiBlockMatchesBlockwise) {
  const bytes key(32, 3);
  const bytes nonce(12, 4);
  bytes all(150, 0);
  chacha20_xor(key.data(), 5, nonce.data(), all);

  bytes block_a(64, 0), block_b(64, 0), block_c(22, 0);
  chacha20_xor(key.data(), 5, nonce.data(), block_a);
  chacha20_xor(key.data(), 6, nonce.data(), block_b);
  chacha20_xor(key.data(), 7, nonce.data(), block_c);

  bytes stitched;
  stitched.insert(stitched.end(), block_a.begin(), block_a.end());
  stitched.insert(stitched.end(), block_b.begin(), block_b.end());
  stitched.insert(stitched.end(), block_c.begin(), block_c.end());
  EXPECT_EQ(all, stitched);
}

// The RFC 8439 §2.4.2 vector exercised through every available backend:
// the 114-byte message crosses the one-block boundary, so the multi-block
// bulk path and the partial-tail path both run against known answers.
TEST(ChaCha20, Rfc8439EncryptionOnEveryBackend) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000000000004a00000000");
  const bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const char* expected =
      "6e2e359a2568f98041ba0728dd0d6981"
      "e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b357"
      "1639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e"
      "52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42"
      "874d";

  simd_level_guard guard;
  for (simd_level level : {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    set_simd_level(level);
    if (active_simd_level() != level) continue;  // CPU lacks this backend
    bytes data = plaintext;
    chacha20_xor(key.data(), 1, nonce.data(), data);
    EXPECT_EQ(hex(data), expected) << "backend=" << simd_level_name(level);
  }
}

// A long multi-block run must equal the block function composed block by
// block — this is what proves the 4-block unrolled/vectorized keystream
// generation handles counter sequencing correctly.
TEST(ChaCha20, LongRunMatchesBlockFunctionComposition) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000090000004a00000000");
  constexpr std::size_t kBlocks = 9;  // odd count: 2 full 4-block runs + 1
  bytes expected(kBlocks * kChaChaBlockSize, 0);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    chacha20_block(key.data(), static_cast<std::uint32_t>(1 + b), nonce.data(),
                   expected.data() + b * kChaChaBlockSize);
  }

  simd_level_guard guard;
  for (simd_level level : {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    set_simd_level(level);
    if (active_simd_level() != level) continue;
    bytes data(kBlocks * kChaChaBlockSize, 0);  // XOR with zeros = keystream
    chacha20_xor(key.data(), 1, nonce.data(), data);
    EXPECT_EQ(data, expected) << "backend=" << simd_level_name(level);
  }
}

// Every backend must be bit-identical to the scalar reference across all
// lengths around the block and 4-block boundaries, including length 0.
TEST(ChaCha20, VectorizedMatchesScalarAcrossLengths) {
  bytes key(kChaChaKeySize), nonce(kChaChaNonceSize);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 13 + 1);
  for (std::size_t i = 0; i < nonce.size(); ++i) nonce[i] = static_cast<std::uint8_t>(i * 29 + 5);

  simd_level_guard guard;
  for (std::size_t len = 0; len <= 257; ++len) {
    bytes message(len);
    for (std::size_t i = 0; i < len; ++i) message[i] = static_cast<std::uint8_t>(i * 31 + 7);

    bytes reference = message;
    chacha20_xor_scalar(key.data(), 0, nonce.data(), reference);

    for (simd_level level : {simd_level::sse2, simd_level::avx2}) {
      set_simd_level(level);
      if (active_simd_level() != level) continue;
      bytes data = message;
      chacha20_xor(key.data(), 0, nonce.data(), data);
      EXPECT_EQ(data, reference) << "len=" << len << " backend=" << simd_level_name(level);
    }
  }
}

// The SIMD loads/stores are unaligned-safe: running on a buffer offset
// 1..15 bytes from its allocation must give the same bytes as the scalar
// path on the same misaligned view.
TEST(ChaCha20, VectorizedHandlesUnalignedBuffers) {
  const bytes key(kChaChaKeySize, 0x5a);
  const bytes nonce(kChaChaNonceSize, 0xa5);
  constexpr std::size_t kLen = 200;  // 3 full blocks + tail

  simd_level_guard guard;
  for (std::size_t offset = 1; offset < 16; ++offset) {
    bytes backing(offset + kLen);
    for (std::size_t i = 0; i < backing.size(); ++i)
      backing[i] = static_cast<std::uint8_t>(i * 17 + 3);
    bytes reference = backing;
    chacha20_xor_scalar(key.data(), 2, nonce.data(), byte_span(reference).subspan(offset));

    for (simd_level level : {simd_level::sse2, simd_level::avx2}) {
      set_simd_level(level);
      if (active_simd_level() != level) continue;
      bytes data = backing;
      chacha20_xor(key.data(), 2, nonce.data(), byte_span(data).subspan(offset));
      EXPECT_EQ(data, reference) << "offset=" << offset
                                 << " backend=" << simd_level_name(level);
    }
  }
}

// The multi-stream batch entry point: N blocks with independent
// counter/nonce rows (one pair per block, as the PSP batch path supplies
// them) must equal chacha20_block run N times, on every backend. The
// count is chosen so the 4-wide kernels run twice plus a scalar tail.
TEST(ChaCha20, KeystreamBlocksMatchesBlockFunctionPerStream) {
  bytes key(kChaChaKeySize);
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 9);

  constexpr std::size_t kBlocks = 11;  // 2 SIMD quads + 3 scalar tail blocks
  std::uint32_t counters[kBlocks];
  bytes nonces(kBlocks * kChaChaNonceSize);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    counters[b] = static_cast<std::uint32_t>(b % 3);  // distinct streams, repeated counters
    for (std::size_t i = 0; i < kChaChaNonceSize; ++i)
      nonces[b * kChaChaNonceSize + i] = static_cast<std::uint8_t>(b * 41 + i * 3 + 1);
  }

  bytes expected(kBlocks * kChaChaBlockSize);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    chacha20_block(key.data(), counters[b], nonces.data() + b * kChaChaNonceSize,
                   expected.data() + b * kChaChaBlockSize);
  }

  simd_level_guard guard;
  for (simd_level level : {simd_level::scalar, simd_level::sse2, simd_level::avx2}) {
    set_simd_level(level);
    if (active_simd_level() != level) continue;
    bytes out(kBlocks * kChaChaBlockSize);
    chacha20_keystream_blocks(key.data(), counters, nonces.data(), kBlocks, out.data());
    EXPECT_EQ(out, expected) << "backend=" << simd_level_name(level);
  }
}

// Forcing a level the CPU lacks clamps to what it has; forcing scalar
// always works. Either way chacha20_backend() reports the live choice.
TEST(ChaCha20, SimdLevelClampsToDetected) {
  simd_level_guard guard;
  set_simd_level(simd_level::avx2);
  EXPECT_LE(static_cast<int>(active_simd_level()), static_cast<int>(detect_simd_level()));
  set_simd_level(simd_level::scalar);
  EXPECT_EQ(active_simd_level(), simd_level::scalar);
  EXPECT_STREQ(chacha20_backend(), "scalar");
}

}  // namespace
}  // namespace interedge::crypto
