#include "crypto/chacha20.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockFunction) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000090000004a00000000");
  std::uint8_t out[64];
  chacha20_block(key.data(), 1, nonce.data(), out);
  EXPECT_EQ(hex(const_byte_span(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439Encryption) {
  const bytes key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const bytes nonce = from_hex("000000000000004a00000000");
  bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  chacha20_xor(key.data(), 1, nonce.data(), plaintext);
  EXPECT_EQ(hex(plaintext),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
}

TEST(ChaCha20, XorIsItsOwnInverse) {
  const bytes key(32, 0x42);
  const bytes nonce(12, 0x01);
  bytes data = to_bytes("round trip me");
  const bytes original = data;
  chacha20_xor(key.data(), 0, nonce.data(), data);
  EXPECT_NE(data, original);
  chacha20_xor(key.data(), 0, nonce.data(), data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, CounterAdvancesKeystream) {
  const bytes key(32, 1);
  const bytes nonce(12, 2);
  bytes a(64, 0), b(64, 0);
  chacha20_xor(key.data(), 0, nonce.data(), a);
  chacha20_xor(key.data(), 1, nonce.data(), b);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, MultiBlockMatchesBlockwise) {
  const bytes key(32, 3);
  const bytes nonce(12, 4);
  bytes all(150, 0);
  chacha20_xor(key.data(), 5, nonce.data(), all);

  bytes block_a(64, 0), block_b(64, 0), block_c(22, 0);
  chacha20_xor(key.data(), 5, nonce.data(), block_a);
  chacha20_xor(key.data(), 6, nonce.data(), block_b);
  chacha20_xor(key.data(), 7, nonce.data(), block_c);

  bytes stitched;
  stitched.insert(stitched.end(), block_a.begin(), block_a.end());
  stitched.insert(stitched.end(), block_b.begin(), block_b.end());
  stitched.insert(stitched.end(), block_c.begin(), block_c.end());
  EXPECT_EQ(all, stitched);
}

}  // namespace
}  // namespace interedge::crypto
