#include "crypto/siphash.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

siphash_key reference_key() {
  siphash_key k;
  for (std::size_t i = 0; i < k.size(); ++i) k[i] = static_cast<std::uint8_t>(i);
  return k;
}

// Reference vectors from the SipHash paper / reference implementation
// (key = 00..0f, input = 00, 01, 02, ... prefix of length n).
TEST(SipHash, ReferenceVectors) {
  const siphash_key key = reference_key();
  bytes input;
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ull, 0x74f839c593dc67fdull, 0x0d6c8009d9a94f5aull, 0x85676696d7fb7e2dull,
      0xcf2794e0277187b7ull, 0x18765564cd99a68dull, 0xcbc9466e58fee3ceull, 0xab0200f58b01d137ull,
  };
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(siphash24(key, input), expected[n]) << "length " << n;
    input.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, KeyDependence) {
  siphash_key a = reference_key();
  siphash_key b = reference_key();
  b[0] ^= 1;
  const bytes msg = to_bytes("connection-id-1234");
  EXPECT_NE(siphash24(a, msg), siphash24(b, msg));
}

TEST(SipHash, LongInputStable) {
  const siphash_key key = reference_key();
  const bytes msg(1000, 0x5a);
  EXPECT_EQ(siphash24(key, msg), siphash24(key, msg));
}

TEST(SipHash, EveryLengthMod8Covered) {
  const siphash_key key = reference_key();
  std::set<std::uint64_t> outputs;
  for (std::size_t len = 0; len < 16; ++len) {
    outputs.insert(siphash24(key, bytes(len, 0x33)));
  }
  EXPECT_EQ(outputs.size(), 16u);  // all distinct
}

}  // namespace
}  // namespace interedge::crypto
