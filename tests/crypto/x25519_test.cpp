#include "crypto/x25519.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

x25519_key key_from_hex(std::string_view h) {
  const bytes b = from_hex(h);
  x25519_key k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

std::string key_hex(const x25519_key& k) { return hex(const_byte_span(k.data(), k.size())); }

// RFC 7748 §5.2 test vector 1.
TEST(X25519, Rfc7748Vector1) {
  const auto scalar = key_from_hex("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point = key_from_hex("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 §5.2 test vector 2.
TEST(X25519, Rfc7748Vector2) {
  const auto scalar = key_from_hex("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point = key_from_hex("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(key_hex(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 §5.2 iterated test, 1 and 1000 iterations.
TEST(X25519, Rfc7748Iterated) {
  x25519_key k = key_from_hex("0900000000000000000000000000000000000000000000000000000000000000");
  x25519_key u = k;
  for (int i = 0; i < 1; ++i) {
    const x25519_key next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(key_hex(k), "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");

  for (int i = 1; i < 1000; ++i) {
    const x25519_key next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(key_hex(k), "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

// RFC 7748 §6.1 Diffie-Hellman test.
TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_secret =
      key_from_hex("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_secret =
      key_from_hex("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_public = x25519_base(alice_secret);
  const auto bob_public = x25519_base(bob_secret);
  EXPECT_EQ(key_hex(alice_public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(key_hex(bob_public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto alice_shared = x25519(alice_secret, bob_public);
  const auto bob_shared = x25519(bob_secret, alice_public);
  EXPECT_EQ(alice_shared, bob_shared);
  EXPECT_EQ(key_hex(alice_shared),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, KeypairFromSeedClampsScalar) {
  x25519_key seed{};
  for (std::size_t i = 0; i < seed.size(); ++i) seed[i] = static_cast<std::uint8_t>(i + 1);
  const auto kp = x25519_keypair_from_seed(seed);
  EXPECT_EQ(kp.secret[0] & 7, 0);
  EXPECT_EQ(kp.secret[31] & 0x80, 0);
  EXPECT_EQ(kp.secret[31] & 0x40, 0x40);
  EXPECT_EQ(kp.public_key, x25519_base(kp.secret));
}

// Property: DH agreement holds for arbitrary seeds.
class X25519Agreement : public ::testing::TestWithParam<int> {};

TEST_P(X25519Agreement, SharedSecretsMatch) {
  x25519_key seed_a{}, seed_b{};
  seed_a[0] = static_cast<std::uint8_t>(GetParam());
  seed_a[5] = 0x7e;
  seed_b[0] = static_cast<std::uint8_t>(GetParam() * 3 + 1);
  seed_b[9] = 0x22;
  const auto a = x25519_keypair_from_seed(seed_a);
  const auto b = x25519_keypair_from_seed(seed_b);
  EXPECT_EQ(x25519(a.secret, b.public_key), x25519(b.secret, a.public_key));
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Agreement, ::testing::Range(1, 11));

}  // namespace
}  // namespace interedge::crypto
