#include "crypto/kdf.h"

#include <gtest/gtest.h>

namespace interedge::crypto {
namespace {

std::string mac_hex(const_byte_span key, const_byte_span data) {
  const auto d = hmac_sha256(key, data);
  return hex(const_byte_span(d.data(), d.size()));
}

// RFC 4231 test cases.
TEST(HmacSha256, Rfc4231Case1) {
  const bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(key, to_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(mac_hex(to_bytes("Jefe"), to_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const bytes key(20, 0xaa);
  const bytes data(50, 0xdd);
  EXPECT_EQ(mac_hex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const bytes key(131, 0xaa);
  EXPECT_EQ(mac_hex(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const bytes ikm(22, 0x0b);
  const bytes salt = from_hex("000102030405060708090a0b0c");
  const bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");

  const auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(hex(const_byte_span(prk.data(), prk.size())),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");

  const bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (zero-length salt and info).
TEST(Hkdf, Rfc5869Case3) {
  const bytes ikm(22, 0x0b);
  const bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(hex(okm),
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthLimit) {
  const bytes prk(32, 1);
  EXPECT_NO_THROW(hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, DifferentInfoYieldsDifferentKeys) {
  const bytes ikm(32, 7);
  EXPECT_NE(hkdf({}, ikm, to_bytes("tx"), 32), hkdf({}, ikm, to_bytes("rx"), 32));
}

}  // namespace
}  // namespace interedge::crypto
