#include "services/qos.h"

#include <gtest/gtest.h>

#include "services/clients/qos_client.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using namespace std::chrono_literals;
using testing::two_domain_fixture;

TEST(QosProfile, EncodeDecodeRoundTrip) {
  qos_profile p;
  p.access_bps = 100000000;
  p.rules.push_back({.src_prefix = 0xff00, .prefix_bits = 56, .priority = 0, .weight = 2.5});
  p.rules.push_back({.src_prefix = 0, .prefix_bits = 0, .priority = 1, .weight = 1.0});
  const qos_profile decoded = qos_profile::decode(p.encode());
  EXPECT_EQ(decoded.access_bps, p.access_bps);
  ASSERT_EQ(decoded.rules.size(), 2u);
  EXPECT_EQ(decoded.rules[0].src_prefix, 0xff00u);
  EXPECT_EQ(decoded.rules[0].prefix_bits, 56);
  EXPECT_DOUBLE_EQ(decoded.rules[0].weight, 2.5);
}

TEST(QosRule, PrefixMatching) {
  qos_stream_rule rule{.src_prefix = 0xab00000000000000ull, .prefix_bits = 8};
  EXPECT_TRUE(rule.matches(0xab12345678ull << 24 | 1));
  EXPECT_TRUE(rule.matches(0xabffffffffffffffull));
  EXPECT_FALSE(rule.matches(0xac00000000000000ull));
  qos_stream_rule wildcard{.prefix_bits = 0};
  EXPECT_TRUE(wildcard.matches(12345));
  qos_stream_rule exact{.src_prefix = 42, .prefix_bits = 64};
  EXPECT_TRUE(exact.matches(42));
  EXPECT_FALSE(exact.matches(43));
}

struct qos_fixture {
  qos_fixture() {
    receiver = &f.d.add_host(f.west, f.sn_w1);
    receiver->set_default_handler([this](const ilp::ilp_header& h, bytes) {
      arrival_order.push_back(h.meta_u64(ilp::meta_key::src_addr).value_or(0));
      arrival_times.push_back(f.d.net().now());
    });
  }
  void configure(std::uint64_t bps, std::vector<qos_stream_rule> rules) {
    qos_client qc(*receiver);
    qos_profile p;
    p.access_bps = bps;
    p.rules = std::move(rules);
    qc.configure(p);
    f.d.run();
  }
  two_domain_fixture f;
  host::host_stack* receiver = nullptr;
  std::vector<std::uint64_t> arrival_order;
  std::vector<time_point> arrival_times;
};

TEST(Qos, UnconfiguredReceiverPlainForward) {
  qos_fixture q;
  q.f.alice->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, to_bytes("x"));
  q.f.d.run();
  EXPECT_EQ(q.arrival_order.size(), 1u);
}

TEST(Qos, ShapedToAccessRate) {
  qos_fixture q;
  // 8 Mbps: a 1000-byte packet serializes in 1 ms.
  q.configure(8000000, {{.prefix_bits = 0, .priority = 1, .weight = 1.0}});

  for (int i = 0; i < 4; ++i) {
    q.f.carol->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(1000, 0x1));
  }
  q.f.d.run();
  ASSERT_EQ(q.arrival_order.size(), 4u);
  // Inter-arrival spacing ~1 ms (shaped), not back-to-back.
  for (std::size_t i = 1; i < q.arrival_times.size(); ++i) {
    const auto gap = q.arrival_times[i] - q.arrival_times[i - 1];
    EXPECT_GE(gap, 900us) << "packet " << i;
  }
}

TEST(Qos, PriorityTrafficJumpsQueue) {
  qos_fixture q;
  // carol's prefix gets priority 0 ("gaming"), everything else priority 1.
  q.configure(8000000, {
      {.src_prefix = q.f.carol->addr(), .prefix_bits = 64, .priority = 0, .weight = 1.0},
      {.prefix_bits = 0, .priority = 1, .weight = 1.0},
  });

  // Queue a burst of bulk traffic from dave first, then one gaming packet.
  for (int i = 0; i < 5; ++i) {
    q.f.dave->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(1000, 0x2));
  }
  q.f.carol->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(100, 0x1));
  q.f.d.run();

  ASSERT_EQ(q.arrival_order.size(), 6u);
  // The gaming packet must not arrive last; it overtakes queued bulk
  // traffic (it can't beat packets already released/in flight).
  const auto carol_pos =
      std::find(q.arrival_order.begin(), q.arrival_order.end(), q.f.carol->addr());
  ASSERT_NE(carol_pos, q.arrival_order.end());
  EXPECT_LT(carol_pos - q.arrival_order.begin(), 3);
}

TEST(Qos, WeightsShareBandwidth) {
  qos_fixture q;
  // carol weight 3, dave weight 1, same priority.
  q.configure(8000000, {
      {.src_prefix = q.f.carol->addr(), .prefix_bits = 64, .priority = 1, .weight = 3.0},
      {.src_prefix = q.f.dave->addr(), .prefix_bits = 64, .priority = 1, .weight = 1.0},
  });

  for (int i = 0; i < 40; ++i) {
    q.f.carol->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(1000, 0x1));
    q.f.dave->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(1000, 0x2));
  }
  q.f.d.run();
  ASSERT_EQ(q.arrival_order.size(), 80u);
  // In the first half of arrivals, carol should have ~3x dave's count.
  int carol_early = 0, dave_early = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    if (q.arrival_order[i] == q.f.carol->addr()) ++carol_early;
    if (q.arrival_order[i] == q.f.dave->addr()) ++dave_early;
  }
  EXPECT_GT(carol_early, dave_early * 2) << carol_early << " vs " << dave_early;
}

TEST(Qos, ModuleCountsShapedPackets) {
  qos_fixture q;
  q.configure(8000000, {{.prefix_bits = 0, .priority = 1, .weight = 1.0}});
  q.f.carol->send_to(q.receiver->addr(), ilp::svc::last_hop_qos, bytes(100, 0));
  q.f.d.run();
  auto* module = static_cast<qos_service*>(
      q.f.d.sn(q.f.sn_w1).env().module_for(ilp::svc::last_hop_qos));
  ASSERT_NE(module, nullptr);
  EXPECT_TRUE(module->has_profile(q.receiver->addr()));
  EXPECT_EQ(module->shaped(q.receiver->addr()), 1u);
}

}  // namespace
}  // namespace interedge::services
