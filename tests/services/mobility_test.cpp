// Mobility lookup service tests: announce/locate, record freshness,
// breadcrumb chasing, and service continuity across a move.
#include "services/mobility.h"

#include <gtest/gtest.h>

#include "services/clients/mobility_client.h"
#include "services/clients/pubsub_client.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

mobility_service* module_on(two_domain_fixture& f, deploy::peer_id sn) {
  return static_cast<mobility_service*>(f.d.sn(sn).env().module_for(ilp::svc::mobility));
}

TEST(Mobility, LocateReturnsCurrentAttachment) {
  two_domain_fixture f;
  mobility_client mc(*f.alice);
  std::vector<host::peer_id> sns;
  mc.locate(f.carol->addr(), [&](host::edge_addr, std::vector<host::peer_id> result) {
    sns = std::move(result);
  });
  f.d.run();
  ASSERT_EQ(sns.size(), 1u);
  EXPECT_EQ(sns[0], f.sn_e1);
}

TEST(Mobility, LocateUnknownHostReturnsEmpty) {
  two_domain_fixture f;
  mobility_client mc(*f.alice);
  bool replied = false;
  std::vector<host::peer_id> sns{99};
  mc.locate(123456789, [&](host::edge_addr, std::vector<host::peer_id> result) {
    replied = true;
    sns = std::move(result);
  });
  f.d.run();
  EXPECT_TRUE(replied);
  EXPECT_TRUE(sns.empty());
}

TEST(Mobility, AnnounceUpdatesGlobalRecord) {
  two_domain_fixture f;
  // carol moves from sn_e1 (east) to sn_w2 (west).
  f.carol->rehome(f.sn_w2);
  mobility_client mc(*f.carol);
  mc.announce();
  f.d.run();

  const auto record = f.d.directory().find_host(f.carol->addr());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->service_nodes, (std::vector<ilp::peer_id>{f.sn_w2}));
  EXPECT_EQ(record->edomain, f.west);
  EXPECT_EQ(module_on(f, f.sn_w2)->announces(), 1u);
  // The old SN got a breadcrumb.
  EXPECT_TRUE(module_on(f, f.sn_e1)->has_breadcrumb(f.carol->addr()));
}

TEST(Mobility, TrafficFollowsAfterMove) {
  two_domain_fixture f;
  int got = 0;
  f.carol->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  // Before the move, alice reaches carol in the east.
  f.alice->send_to(f.carol->addr(), ilp::svc::mobility, to_bytes("pre-move"));
  f.d.run();
  EXPECT_EQ(got, 1);

  f.carol->rehome(f.sn_w2);
  mobility_client mc(*f.carol);
  mc.announce();
  f.d.run();

  // New traffic resolves the fresh record and reaches carol at sn_w2.
  f.alice->send_to(f.carol->addr(), ilp::svc::mobility, to_bytes("post-move"));
  f.d.run();
  EXPECT_EQ(got, 2);
  EXPECT_GE(f.d.sn(f.sn_w2).datapath_stats().forwarded, 1u);
}

TEST(Mobility, BreadcrumbChasesInFlightStyleTraffic) {
  two_domain_fixture f;
  int got = 0;
  f.carol->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  f.carol->rehome(f.sn_w2);
  mobility_client mc(*f.carol);
  mc.announce();
  f.d.run();

  // A straggler packet addressed directly to the OLD SN (as an in-flight
  // packet routed under the stale record would be): the breadcrumb
  // forwards it to the new SN.
  ilp::ilp_header h;
  h.service = ilp::svc::mobility;
  h.connection = 77;
  h.set_meta_u64(ilp::meta_key::src_addr, f.dave->addr());
  h.set_meta_u64(ilp::meta_key::dest_addr, f.carol->addr());
  f.dave->pipes().send(f.sn_e1, h, to_bytes("straggler"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(module_on(f, f.sn_e1)->forwarded_via_breadcrumb(), 1u);
}

TEST(Mobility, PubSubContinuityAcrossMove) {
  // Full mobility story: a subscriber moves edomains; announce + resync
  // restores delivery at the new attachment.
  two_domain_fixture f;
  pubsub_client sub(*f.carol);
  pubsub_client pub(*f.alice);
  std::vector<std::string> got;
  sub.subscribe("feed", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  f.d.run();
  pub.publish("feed", to_bytes("at home"));
  f.d.run();
  ASSERT_EQ(got.size(), 1u);

  // carol moves east -> west.
  f.carol->rehome(f.sn_w2);
  mobility_client mc(*f.carol);
  mc.announce();
  sub.resync();  // host-driven reconstruction at the new SN
  f.d.run();

  pub.publish("feed", to_bytes("on the road"));
  f.d.run();
  ASSERT_GE(got.size(), 2u);
  EXPECT_EQ(got.back(), "on the road");
}

}  // namespace
}  // namespace interedge::services
