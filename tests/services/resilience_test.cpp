// Resiliency tests (paper §3.3): stateless-service failover via first-hop
// fallback, stateful recovery via host-driven reconstruction and via
// standby replication of checkpoints.
#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/pubsub_client.h"
#include "services/pubsub.h"

namespace interedge::services {
namespace {

struct failover_fixture {
  failover_fixture() {
    dom = d.add_edomain();
    other_dom = d.add_edomain();
    // The standby is created first so it is the edomain's gateway: this
    // test fails only the primary, not the inter-edomain gateway (gateway
    // failover is a separate concern — the edomain would re-designate).
    standby = d.add_sn(dom);
    primary = d.add_sn(dom);
    remote_sn = d.add_sn(other_dom);
    // The client is associated with BOTH SNs (§3.1: "every host is
    // associated with one or more first-hop SNs").
    client = &d.add_host(dom, primary, {standby});
    remote = &d.add_host(other_dom, remote_sn);
    d.interconnect();
    deploy::deploy_standard_services(d);
  }

  // Simulates a crashed primary: every datagram to it vanishes.
  void fail_primary() {
    for (auto node : {client->addr(), remote->addr()}) {
      d.net().set_link(static_cast<sim::node_id>(node), static_cast<sim::node_id>(primary),
                       {.loss_rate = 1.0});
    }
    for (auto sn : {standby, remote_sn}) {
      d.net().set_link(static_cast<sim::node_id>(sn), static_cast<sim::node_id>(primary),
                       {.loss_rate = 1.0});
    }
  }

  deploy::deployment d;
  deploy::edomain_id dom{}, other_dom{};
  deploy::peer_id primary{}, standby{}, remote_sn{};
  host::host_stack* client = nullptr;
  host::host_stack* remote = nullptr;
};

TEST(Resilience, StatelessFailoverToFallbackSn) {
  // "for stateless services, SN failures are like router failures and can
  // be easily recovered from" — the host switches to its fallback SN.
  failover_fixture f;
  int got = 0;
  f.remote->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("via primary"));
  f.d.run();
  EXPECT_EQ(got, 1);

  f.fail_primary();
  f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("black hole"));
  f.d.run();
  EXPECT_EQ(got, 1);  // lost

  ASSERT_TRUE(f.client->switch_to_fallback());
  EXPECT_EQ(f.client->first_hop_sn(), f.standby);
  f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("via standby"));
  f.d.run();
  EXPECT_EQ(got, 2);
}

TEST(Resilience, StatefulRecoveryHostDriven) {
  // Pub/sub subscription state lives on the primary; after failover the
  // client's resync() reconstructs it on the standby without any SN-to-SN
  // state transfer.
  failover_fixture f;
  pubsub_client sub(*f.client);
  pubsub_client pub(*f.remote);
  std::vector<std::string> got;
  sub.subscribe("alerts", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  f.d.run();

  f.fail_primary();
  ASSERT_TRUE(f.client->switch_to_fallback());
  sub.resync();  // host-driven state reconstruction onto the standby
  f.d.run();

  auto* standby_module = static_cast<pubsub_service*>(
      f.d.sn(f.standby).env().module_for(ilp::svc::pubsub));
  EXPECT_EQ(standby_module->subscribers("alerts"), 1u);

  pub.publish("alerts", to_bytes("after failover"));
  f.d.run();
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got.back(), "after failover");
}

TEST(Resilience, StandbyReplicationOfCheckpoints) {
  // "standby-replication for performance": the standby restores the
  // primary's checkpoint and serves identical pub/sub state immediately,
  // without waiting for hosts to resync.
  failover_fixture f;
  pubsub_client sub(*f.client);
  pubsub_client pub(*f.remote);
  std::vector<std::string> got;
  sub.subscribe("alerts", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  f.d.run();

  // Periodic replication: primary checkpoint -> standby.
  const bytes snapshot = f.d.sn(f.primary).checkpoint();
  f.d.sn(f.standby).restore(snapshot);

  f.fail_primary();
  ASSERT_TRUE(f.client->switch_to_fallback());
  // NO resync: the standby already has the subscription from the snapshot.
  auto* standby_module = static_cast<pubsub_service*>(
      f.d.sn(f.standby).env().module_for(ilp::svc::pubsub));
  EXPECT_EQ(standby_module->subscribers("alerts"), 1u);

  // The standby must also join the group at the edomain core so publisher
  // SNs relay to it (part of bringing a standby into rotation).
  f.d.core_of(f.dom).group_join("alerts", f.standby);

  pub.publish("alerts", to_bytes("zero-loss failover"));
  f.d.run();
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got.back(), "zero-loss failover");
}

TEST(Resilience, DecisionCacheLossIsHarmless) {
  // The decision cache is soft state: clearing it mid-connection changes
  // nothing observable (packets re-consult the service).
  failover_fixture f;
  int got = 0;
  f.remote->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  auto conn = f.client->open(f.remote->addr(), ilp::svc::delivery, f.primary);
  conn.send(to_bytes("1"));
  f.d.run();
  f.d.sn(f.primary).cache().clear();
  conn.send(to_bytes("2"));
  f.d.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(f.d.sn(f.primary).datapath_stats().slow_path, 2u);
}

TEST(Resilience, LostHandshakeRetriedAutomatically) {
  // A black-holed first handshake (and the packets queued behind it) is
  // recovered by the host's retry timer once the path heals.
  failover_fixture f;
  f.d.net().set_link(static_cast<sim::node_id>(f.client->addr()),
                     static_cast<sim::node_id>(f.primary), {.loss_rate = 1.0});
  int got = 0;
  f.remote->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("queued"));
  f.d.net().run_until(f.d.net().now() + std::chrono::milliseconds(100));
  EXPECT_EQ(got, 0);

  // Path heals; the next scheduled retry completes the handshake and
  // flushes the queued packet.
  f.d.net().set_link(static_cast<sim::node_id>(f.client->addr()),
                     static_cast<sim::node_id>(f.primary), {.loss_rate = 0.0});
  f.d.net().run_until(f.d.net().now() + std::chrono::seconds(3));
  EXPECT_EQ(got, 1);
  EXPECT_GE(f.client->handshake_retries(), 1u);
}

TEST(Resilience, LossyHandshakeEventuallyConnects) {
  // 70% loss on the host<->SN path: handshake retries keep going until a
  // round trip survives; data stays best-effort (each packet still has a
  // 30% survival chance on the lossy hop), so the app sends repeatedly.
  failover_fixture f;
  f.d.net().set_link_symmetric(static_cast<sim::node_id>(f.client->addr()),
                               static_cast<sim::node_id>(f.primary), {.loss_rate = 0.7});
  int got = 0;
  f.remote->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  for (int i = 0; i < 30; ++i) {
    f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("persistent"));
    f.d.net().run_until(f.d.net().now() + std::chrono::seconds(2));
  }
  EXPECT_GE(got, 1);
  EXPECT_TRUE(f.client->pipes().has_pipe(f.primary));
}

TEST(Resilience, LossySnPathDegradesGracefully) {
  failover_fixture f;
  f.d.net().set_link(static_cast<sim::node_id>(f.client->addr()),
                     static_cast<sim::node_id>(f.primary), {.loss_rate = 0.5});
  int got = 0;
  f.remote->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  // A loss-tolerant app keeps sending; roughly half arrive, none wedge
  // the pipe (PSP is stateless per packet).
  for (int i = 0; i < 100; ++i) {
    f.client->send_to(f.remote->addr(), ilp::svc::delivery, to_bytes("d"));
    f.d.run();
  }
  EXPECT_GT(got, 20);
  EXPECT_LT(got, 80);
}

}  // namespace
}  // namespace interedge::services
