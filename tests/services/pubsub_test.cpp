#include "services/pubsub.h"

#include <gtest/gtest.h>

#include "services/clients/pubsub_client.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

struct topic_log {
  std::vector<std::string> messages;
  pubsub_client::message_handler capture() {
    return [this](const std::string&, bytes payload) {
      messages.push_back(to_string(payload));
    };
  }
};

TEST(PubSub, SameSnDelivery) {
  two_domain_fixture f;
  auto& sub_host = f.d.add_host(f.west, f.sn_w1);
  pubsub_client subscriber(sub_host);
  pubsub_client publisher(*f.alice);  // alice is also on sn_w1

  topic_log log;
  subscriber.subscribe("news", log.capture());
  f.d.run();
  EXPECT_EQ(subscriber.acks(), 1u);

  publisher.publish("news", to_bytes("breaking"));
  f.d.run();
  ASSERT_EQ(log.messages.size(), 1u);
  EXPECT_EQ(log.messages[0], "breaking");
}

TEST(PubSub, CrossSnSameEdomain) {
  two_domain_fixture f;
  pubsub_client sub(*f.bob);     // SN w2
  pubsub_client pub(*f.alice);   // SN w1
  topic_log log;
  sub.subscribe("t", log.capture());
  f.d.run();
  pub.publish("t", to_bytes("m1"));
  f.d.run();
  ASSERT_EQ(log.messages.size(), 1u);
}

TEST(PubSub, CrossEdomainDelivery) {
  two_domain_fixture f;
  pubsub_client sub_c(*f.carol);  // east, SN e1 (gateway)
  pubsub_client sub_d(*f.dave);   // east, SN e2
  pubsub_client pub(*f.alice);    // west
  topic_log log_c, log_d;
  sub_c.subscribe("global", log_c.capture());
  sub_d.subscribe("global", log_d.capture());
  f.d.run();

  pub.publish("global", to_bytes("hello world"));
  f.d.run();
  ASSERT_EQ(log_c.messages.size(), 1u);
  ASSERT_EQ(log_d.messages.size(), 1u);
  EXPECT_EQ(log_c.messages[0], "hello world");
}

TEST(PubSub, EverySubscriberExactlyOnce) {
  two_domain_fixture f;
  std::vector<std::unique_ptr<pubsub_client>> subs;
  std::vector<topic_log> logs(4);
  host::host_stack* hosts[] = {f.alice, f.bob, f.carol, f.dave};
  for (int i = 0; i < 4; ++i) {
    subs.push_back(std::make_unique<pubsub_client>(*hosts[i]));
    subs[i]->subscribe("all", logs[i].capture());
  }
  f.d.run();

  pubsub_client& pub = *subs[0];  // alice both publishes and subscribes
  for (int m = 0; m < 3; ++m) pub.publish("all", to_bytes("msg" + std::to_string(m)));
  f.d.run();

  // Subscribers other than the publisher get every message exactly once.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(logs[i].messages.size(), 3u) << "subscriber " << i;
  }
  // The publisher does not hear its own messages echoed.
  EXPECT_EQ(logs[0].messages.size(), 0u);
}

TEST(PubSub, UnsubscribeStopsDelivery) {
  two_domain_fixture f;
  pubsub_client sub(*f.bob);
  pubsub_client pub(*f.alice);
  topic_log log;
  sub.subscribe("t", log.capture());
  f.d.run();
  pub.publish("t", to_bytes("1"));
  f.d.run();
  sub.unsubscribe("t");
  f.d.run();
  pub.publish("t", to_bytes("2"));
  f.d.run();
  EXPECT_EQ(log.messages.size(), 1u);
}

TEST(PubSub, TopicsAreIsolated) {
  two_domain_fixture f;
  pubsub_client sub(*f.bob);
  pubsub_client pub(*f.alice);
  topic_log log;
  sub.subscribe("cats", log.capture());
  f.d.run();
  pub.publish("dogs", to_bytes("woof"));
  f.d.run();
  EXPECT_TRUE(log.messages.empty());
}

TEST(PubSub, ClosedGroupJoinDenied) {
  two_domain_fixture f;
  // Create a governed, closed topic owned by alice.
  const auto& alice_id = f.d.identity_of(f.alice->addr());
  f.d.directory().create_group("vip", alice_id.keys.public_key);

  pubsub_client sub(*f.bob);
  topic_log log;
  sub.subscribe("vip", log.capture());
  f.d.run();
  EXPECT_EQ(sub.denials(), 1u);
  EXPECT_EQ(sub.acks(), 0u);

  // Owner grants bob; re-subscribe succeeds.
  const bytes token = lookup::make_auth_token(
      alice_id.keys.secret, f.d.directory().public_key(),
      to_bytes("grant:vip:" + std::to_string(f.bob->addr())));
  ASSERT_TRUE(f.d.directory().grant_membership("vip", f.bob->addr(), token));
  sub.subscribe("vip", log.capture());
  f.d.run();
  EXPECT_EQ(sub.acks(), 1u);
}

TEST(PubSub, HostDrivenStateReconstruction) {
  // §3.3/§6: after the SN loses its state, the subscriber's resync()
  // restores delivery without any SN-side persistence.
  two_domain_fixture f;
  // Checkpoint the SN while it has no pub/sub state.
  const bytes pristine = f.d.sn(f.sn_w2).checkpoint();

  pubsub_client sub(*f.bob);
  pubsub_client pub(*f.alice);
  topic_log log;
  sub.subscribe("t", log.capture());
  f.d.run();

  // Simulate SN state loss: roll the module back to the pristine snapshot.
  f.d.sn(f.sn_w2).restore(pristine);

  pub.publish("t", to_bytes("lost"));
  f.d.run();
  EXPECT_TRUE(log.messages.empty());  // the SN forgot the subscription

  // Host-driven reconstruction: the client re-issues its subscriptions.
  sub.resync();
  f.d.run();
  pub.publish("t", to_bytes("recovered"));
  f.d.run();
  ASSERT_EQ(log.messages.size(), 1u);
  EXPECT_EQ(log.messages.back(), "recovered");
}

TEST(PubSub, CheckpointRestorePreservesSubscriptions) {
  two_domain_fixture f;
  pubsub_client sub(*f.bob);
  pubsub_client pub(*f.alice);
  topic_log log;
  sub.subscribe("t", log.capture());
  f.d.run();

  // Standby replication: checkpoint the SN, restore into it (round trip).
  const bytes snap = f.d.sn(f.sn_w2).checkpoint();
  f.d.sn(f.sn_w2).restore(snap);

  pub.publish("t", to_bytes("after-restore"));
  f.d.run();
  ASSERT_EQ(log.messages.size(), 1u);
  EXPECT_EQ(log.messages[0], "after-restore");
}

}  // namespace
}  // namespace interedge::services
