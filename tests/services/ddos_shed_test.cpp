// DDoS mitigation under slow-path shed (ISSUE 9 satellite): a protected
// destination flooded with cold flows saturates the slow path, and the
// node must fail closed — the flood sheds with TTL'd drop verdicts while
// allowlisted legitimate flows ride their cached admit verdicts through
// the congestion untouched. Also pins the verdict lifetimes: shed drops
// age out (re-judged, still denied) and admit-cache entries age out
// (re-judged, re-admitted).
#include <gtest/gtest.h>

#include "common/serial.h"
#include "core/service_node.h"
#include "core/test_modules.h"
#include "services/ddos.h"
#include "simnet/simulation.h"

namespace interedge::core {
namespace {

using namespace std::chrono_literals;
using sim::node_id;
using sim::simulation;

struct sim_host {
  node_id node = 0;
  std::unique_ptr<ilp::pipe_manager> mgr;
  std::vector<std::pair<ilp::ilp_header, bytes>> received;
};

std::unique_ptr<sim_host> make_host(simulation& net) {
  auto h = std::make_unique<sim_host>();
  h->node = net.add_node(nullptr);
  h->mgr = std::make_unique<ilp::pipe_manager>(
      h->node,
      [&net, node = h->node](peer_id peer, bytes d) {
        net.send(node, static_cast<node_id>(peer), std::move(d));
      },
      [raw = h.get()](peer_id, const ilp::ilp_header& hdr, bytes payload) {
        raw->received.emplace_back(hdr, std::move(payload));
      });
  net.set_handler(h->node, [raw = h.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return h;
}

std::unique_ptr<service_node> make_sn(simulation& net, const router* route,
                                      sn_config config) {
  const node_id node = net.add_node(nullptr);
  config.id = node;
  auto sn = std::make_unique<service_node>(
      config, net.sim_clock(),
      [&net, node](peer_id to, bytes d) {
        net.send(node, static_cast<node_id>(to), std::move(d));
      },
      [&net](nanoseconds delay, std::function<void()> fn) { net.after(delay, std::move(fn)); },
      route);
  net.set_handler(node, [raw = sn.get()](node_id from, const bytes& data) {
    raw->on_datagram(from, data);
  });
  return sn;
}

// A client whose sealed datagrams land in an outbox instead of the
// simulator, so a whole flood can be handed to the SN as one ingress
// batch (the failover_test pattern).
struct outbox_client {
  node_id node = 0;
  std::vector<bytes> outbox;
  std::unique_ptr<ilp::pipe_manager> mgr;
};

std::unique_ptr<outbox_client> make_outbox_client(simulation& net) {
  auto c = std::make_unique<outbox_client>();
  c->node = net.add_node(nullptr);
  c->mgr = std::make_unique<ilp::pipe_manager>(
      c->node, [raw = c.get()](peer_id, bytes d) { raw->outbox.push_back(std::move(d)); },
      [](peer_id, const ilp::ilp_header&, bytes) {});
  net.set_handler(c->node, [raw = c.get()](node_id from, const bytes& data) {
    raw->mgr->on_datagram(from, data);
  });
  return c;
}

// Feeds a client's queued datagrams into the SN until the exchange
// settles (handshake replies flush queued sends back into the outbox).
void pump(simulation& net, service_node& sn, outbox_client& c) {
  while (!c.outbox.empty()) {
    std::vector<bytes> batch = std::move(c.outbox);
    c.outbox.clear();
    for (bytes& d : batch) sn.on_datagram(c.node, d);
    ASSERT_TRUE(sn.wait_idle());
    net.run();
  }
}

ilp::ilp_header data_header(edge_addr dest, edge_addr src, ilp::connection_id conn) {
  ilp::ilp_header h;
  h.service = ilp::svc::ddos_protect;
  h.connection = conn;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::dest_addr, dest);
  h.set_meta_u64(ilp::meta_key::src_addr, src);
  return h;
}

ilp::ilp_header control_header(std::string_view op, edge_addr src) {
  ilp::ilp_header h;
  h.service = ilp::svc::ddos_protect;
  h.connection = 900;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, op);
  h.set_meta_u64(ilp::meta_key::src_addr, src);
  return h;
}

std::size_t payload_count(const sim_host& h, std::string_view body) {
  std::size_t n = 0;
  for (const auto& [hdr, payload] : h.received) {
    if (to_string(payload) == body) ++n;
  }
  return n;
}

// Shared fixture state: a parallel SN with a tiny slow-path budget, the
// real ddos module protecting `victim`, `legit` allowlisted with a cached
// admit verdict, and an attacker wired for batch floods.
struct shed_rig {
  simulation net;
  testing::identity_router route;
  std::unique_ptr<sim_host> victim;
  std::unique_ptr<service_node> sn;
  services::ddos_service* ddos = nullptr;
  std::unique_ptr<outbox_client> legit;
  std::unique_ptr<outbox_client> attacker;

  explicit shed_rig(sn_config config) {
    victim = make_host(net);
    sn = make_sn(net, &route, config);
    auto mod = std::make_unique<services::ddos_service>(1e6, 1e6, /*secret_seed=*/7);
    ddos = mod.get();
    sn->env().deploy(std::move(mod));
    legit = make_outbox_client(net);
    attacker = make_outbox_client(net);

    // Protection on, legitimate sender allowlisted, admitted flows cached
    // with a TTL so the fast path survives slow-path pressure.
    victim->mgr->send(sn->node_id(), control_header(services::ops::protect, victim->node), {});
    net.run();
    writer w(8);
    w.u64(legit->node);
    victim->mgr->send(sn->node_id(), control_header(services::ops::allow, victim->node),
                      w.take());
    net.run();
    sn->env().set_config(ilp::svc::ddos_protect, "admit_cache_ttl_ms", "50");
  }
};

TEST(DdosShed, LegitimateFlowsSurviveFloodOnCachedAdmitVerdicts) {
  shed_rig rig(sn_config{.workers = 2, .slowpath_high_water = 4, .shed_ttl = 5ms});

  // Warm the legitimate flow: its first packet takes the slow path, gets
  // uRPF-checked against the allowlist, and installs a TTL'd forward.
  rig.legit->mgr->send(rig.sn->node_id(),
                       data_header(rig.victim->node, rig.legit->node, 1), to_bytes("legit"));
  pump(rig.net, *rig.sn, *rig.legit);
  ASSERT_EQ(payload_count(*rig.victim, "legit"), 1u);

  // Establish the attacker's pipe (its warm packet is denied: protected
  // destination, no allowlist entry, no token — fail closed).
  rig.attacker->mgr->send(rig.sn->node_id(),
                          data_header(rig.victim->node, rig.attacker->node, 100),
                          to_bytes("attack"));
  pump(rig.net, *rig.sn, *rig.attacker);
  ASSERT_EQ(payload_count(*rig.victim, "attack"), 0u);

  // One ingress batch: 400 cold attack flows with a legitimate packet
  // interleaved every 20 — the shard rings saturate the 4-deep slow-path
  // budget long before the control thread pumps it.
  constexpr int kFlood = 400;
  constexpr int kLegit = kFlood / 20;
  for (int i = 1; i <= kFlood; ++i) {
    rig.attacker->mgr->send(rig.sn->node_id(),
                            data_header(rig.victim->node, rig.attacker->node, 100 + i),
                            to_bytes("attack"));
  }
  for (int i = 0; i < kLegit; ++i) {
    rig.legit->mgr->send(rig.sn->node_id(),
                         data_header(rig.victim->node, rig.legit->node, 1), to_bytes("legit"));
  }
  ASSERT_EQ(rig.attacker->outbox.size(), static_cast<std::size_t>(kFlood));
  ASSERT_EQ(rig.legit->outbox.size(), static_cast<std::size_t>(kLegit));
  std::vector<std::pair<peer_id, bytes>> burst;
  for (int i = 0; i < kFlood; ++i) {
    burst.emplace_back(rig.attacker->node, std::move(rig.attacker->outbox[i]));
    if (i % 20 == 19) {
      burst.emplace_back(rig.legit->node, std::move(rig.legit->outbox[i / 20]));
    }
  }
  rig.attacker->outbox.clear();
  rig.legit->outbox.clear();
  rig.sn->on_datagrams(std::span(burst));
  ASSERT_TRUE(rig.sn->wait_idle());
  rig.net.run();

  // Survival ratio 1.0: every legitimate packet rode its cached admit
  // verdict through the saturated slow path.
  EXPECT_EQ(payload_count(*rig.victim, "legit"), 1u + kLegit);
  // Fail closed: nothing from the flood reached the victim — denied on
  // the slow path or shed before reaching it.
  EXPECT_EQ(payload_count(*rig.victim, "attack"), 0u);

  metrics_registry merged;
  rig.sn->merge_metrics_into(merged);
  double shed = 0;
  for (const auto& s : merged.samples()) {
    if (s.name == "sn.slowpath.shed") shed += s.value;
  }
  EXPECT_GT(shed, 0.0);
  // Every packet a shard received was resolved one way or another.
  std::uint64_t received = 0, resolved = 0;
  for (std::size_t s = 0; s < rig.sn->worker_count(); ++s) {
    const auto& st = rig.sn->shard_terminus_stats(s);
    received += st.received;
    resolved += st.fast_path + st.slow_path + st.shed;
  }
  EXPECT_EQ(resolved, received);
}

TEST(DdosShed, ShedVerdictAgesOutAndFlowIsRejudged) {
  shed_rig rig(sn_config{.workers = 2, .slowpath_high_water = 4, .shed_ttl = 5ms});

  // Establish the attacker's pipe, then saturate with cold flows so some
  // shed with the TTL'd fail-closed drop.
  rig.attacker->mgr->send(rig.sn->node_id(),
                          data_header(rig.victim->node, rig.attacker->node, 100),
                          to_bytes("attack"));
  pump(rig.net, *rig.sn, *rig.attacker);
  for (int i = 1; i <= 400; ++i) {
    rig.attacker->mgr->send(rig.sn->node_id(),
                            data_header(rig.victim->node, rig.attacker->node, 100 + i),
                            to_bytes("attack"));
  }
  std::vector<std::pair<peer_id, bytes>> burst;
  for (bytes& d : rig.attacker->outbox) burst.emplace_back(rig.attacker->node, std::move(d));
  rig.attacker->outbox.clear();
  rig.sn->on_datagrams(std::span(burst));
  ASSERT_TRUE(rig.sn->wait_idle());
  rig.net.run();

  std::uint64_t shed = 0;
  for (std::size_t s = 0; s < rig.sn->worker_count(); ++s) {
    shed += rig.sn->shard_terminus_stats(s).shed;
  }
  ASSERT_GT(shed, 0u);
  const std::uint64_t denied_after_flood = rig.ddos->denied();
  // The 4-deep budget means only a handful of the 400 flows were actually
  // judged (and denial-cached, permanently); the rest shed with TTL'd
  // drops. Retry a slice wide enough to be sure it contains shed flows.
  ASSERT_LT(denied_after_flood, 50u);
  auto retry_slice = [&rig] {
    for (int i = 1; i <= 50; ++i) {
      rig.attacker->mgr->send(rig.sn->node_id(),
                              data_header(rig.victim->node, rig.attacker->node, 100 + i),
                              to_bytes("attack"));
      pump(rig.net, *rig.sn, *rig.attacker);
    }
  };

  // Within the shed TTL, retries of shed flows are dropped from the
  // cached verdicts — the module is NOT consulted again (that's the whole
  // point: retries cost fast-path time, not slow-path budget).
  retry_slice();
  EXPECT_EQ(rig.ddos->denied(), denied_after_flood);

  // Past the TTL the shed verdicts age out and those flows are re-judged
  // on the (now uncongested) slow path — still denied, but by policy now,
  // not by congestion.
  rig.net.after(20ms, [] {});
  rig.net.run();
  retry_slice();
  EXPECT_GT(rig.ddos->denied(), denied_after_flood);
  EXPECT_EQ(payload_count(*rig.victim, "attack"), 0u);
}

TEST(DdosShed, AdmitCacheTtlForcesReadmission) {
  // Inline datapath: the verdict-lifetime behavior is independent of the
  // sharded machinery. Admit entries expire on the configured TTL and the
  // flow is re-judged — and re-admitted — without a delivery gap.
  shed_rig rig(sn_config{.workers = 0});
  rig.sn->env().set_config(ilp::svc::ddos_protect, "admit_cache_ttl_ms", "5");

  rig.legit->mgr->send(rig.sn->node_id(),
                       data_header(rig.victim->node, rig.legit->node, 1), to_bytes("legit"));
  pump(rig.net, *rig.sn, *rig.legit);
  rig.legit->mgr->send(rig.sn->node_id(),
                       data_header(rig.victim->node, rig.legit->node, 1), to_bytes("legit"));
  pump(rig.net, *rig.sn, *rig.legit);
  const auto warm = rig.sn->cache().stats();
  EXPECT_GE(warm.hits, 1u);  // second packet rode the cached admit

  rig.net.after(20ms, [] {});
  rig.net.run();
  rig.legit->mgr->send(rig.sn->node_id(),
                       data_header(rig.victim->node, rig.legit->node, 1), to_bytes("legit"));
  pump(rig.net, *rig.sn, *rig.legit);

  const auto aged = rig.sn->cache().stats();
  EXPECT_GE(aged.expired, warm.expired + 1);  // the admit verdict lapsed
  EXPECT_GE(aged.inserts, warm.inserts + 1);  // and was re-installed
  EXPECT_EQ(payload_count(*rig.victim, "legit"), 3u);  // no delivery gap
}

}  // namespace
}  // namespace interedge::core
