// Shared deployment fixture for service tests: two edomains, two SNs each,
// hosts attached to distinct SNs, full standard service suite.
#pragma once

#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "deploy/standard_services.h"

namespace interedge::services::testing {

struct two_domain_fixture {
  explicit two_domain_fixture(deploy::standard_services_config config = {},
                              deploy::deployment_config dcfg = {})
      : d(dcfg) {
    west = d.add_edomain();
    east = d.add_edomain();
    sn_w1 = d.add_sn(west);
    sn_w2 = d.add_sn(west);
    sn_e1 = d.add_sn(east);
    sn_e2 = d.add_sn(east);
    alice = &d.add_host(west, sn_w1);
    bob = &d.add_host(west, sn_w2);
    carol = &d.add_host(east, sn_e1);
    dave = &d.add_host(east, sn_e2);
    d.interconnect();
    deploy::deploy_standard_services(d, config);
  }

  deploy::deployment d;
  deploy::edomain_id west{}, east{};
  deploy::peer_id sn_w1{}, sn_w2{}, sn_e1{}, sn_e2{};
  host::host_stack* alice = nullptr;  // west, SN w1
  host::host_stack* bob = nullptr;    // west, SN w2
  host::host_stack* carol = nullptr;  // east, SN e1
  host::host_stack* dave = nullptr;   // east, SN e2
};

}  // namespace interedge::services::testing
