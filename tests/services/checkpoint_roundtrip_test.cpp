// Checkpoint/restore round trips for every service module in src/services/
// (the failover story's state layer): the env-wide snapshot must be a fixed
// point — checkpoint -> restore -> checkpoint is byte-identical — with
// every module deployed and the stateful ones holding warm state.
#include <gtest/gtest.h>

#include "services/clients/pubsub_client.h"
#include "services/firewall.h"
#include "services/ngfw.h"
#include "services/null_service.h"
#include "services/pass_through.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

deploy::standard_services_config full_suite() {
  deploy::standard_services_config c;
  c.odns = true;  // the default-off services must round-trip too
  c.mixnet = true;
  return c;
}

constexpr ilp::service_id kStandardIds[] = {
    ilp::svc::delivery,      ilp::svc::pubsub,        ilp::svc::multicast,
    ilp::svc::anycast,       ilp::svc::last_hop_qos,  ilp::svc::odns,
    ilp::svc::mixnet,        ilp::svc::ddos_protect,  ilp::svc::vpn,
    ilp::svc::message_queue, ilp::svc::ordered_delivery,
    ilp::svc::bulk_delivery, ilp::svc::streaming,     ilp::svc::mobility,
    ilp::svc::cluster,
};

TEST(CheckpointRoundTrip, EveryStandardModuleOnEverySn) {
  two_domain_fixture f(full_suite());

  // Warm a few stateful modules so the snapshots are non-trivial.
  pubsub_client sub(*f.bob);
  pubsub_client pub(*f.alice);
  std::vector<std::string> got;
  sub.subscribe("t", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  f.d.run();
  pub.publish("t", to_bytes("warm"));
  f.d.run();
  ASSERT_EQ(got.size(), 1u);

  for (deploy::peer_id id : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
    auto& sn = f.d.sn(id);
    // Every standard module is present, so the env snapshot below carries
    // each one through its checkpoint() and restore() overrides.
    for (ilp::service_id svc : kStandardIds) {
      ASSERT_NE(sn.env().module_for(svc), nullptr) << "service " << +svc;
    }
    const bytes b1 = sn.checkpoint();
    sn.restore(b1);
    const bytes b2 = sn.checkpoint();
    EXPECT_EQ(b1, b2) << "sn " << id;
  }

  // The restored deployment still serves traffic.
  pub.publish("t", to_bytes("after"));
  f.d.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.back(), "after");
}

TEST(CheckpointRoundTrip, BoundaryAndNullModules) {
  // The modules outside the standard suite: firewall and pass-through
  // (operator-imposed boundary), ngfw (content interceptor), null service.
  two_domain_fixture f;

  auto fw = std::make_unique<firewall_service>();
  fw->add_rule({.dest = 99, .allow = false});
  f.d.sn(f.sn_w1).env().deploy(std::move(fw));

  f.d.sn(f.sn_w2).env().deploy(std::make_unique<pass_through_service>(f.sn_w1));

  auto dpi = std::make_unique<ngfw_service>();
  dpi->add_rule("block-acme", "acme");
  f.d.sn(f.sn_e1).env().set_interceptor(std::move(dpi));

  f.d.sn(f.sn_e2).env().deploy(std::make_unique<null_service>());

  for (deploy::peer_id id : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
    auto& sn = f.d.sn(id);
    const bytes b1 = sn.checkpoint();
    sn.restore(b1);
    const bytes b2 = sn.checkpoint();
    EXPECT_EQ(b1, b2) << "sn " << id;
  }
}

}  // namespace
}  // namespace interedge::services
