// Security services: DDoS protection, VPN w/ auth redirect, firewall.
#include <gtest/gtest.h>

#include "common/serial.h"
#include "services/ddos.h"
#include "services/firewall.h"
#include "services/service_fixture.h"
#include "services/vpn.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

// ---- DDoS ---------------------------------------------------------------

struct ddos_fixture {
  ddos_fixture() {
    victim = &f.d.add_host(f.west, f.sn_w1);
    victim->set_default_handler([this](const ilp::ilp_header&, bytes) { ++victim_received; });
    victim->set_control_handler(ilp::svc::ddos_protect,
                                [this](const ilp::ilp_header&, bytes payload) {
                                  last_token = std::move(payload);
                                });
  }
  void protect() {
    ilp::ilp_header h;
    h.service = ilp::svc::ddos_protect;
    h.connection = 1;
    h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
    h.set_meta_str(ilp::meta_key::control_op, ops::protect);
    h.set_meta_u64(ilp::meta_key::src_addr, victim->addr());
    victim->pipes().send(victim->first_hop_sn(), h, {});
    f.d.run();
  }
  void allow(host::edge_addr sender) {
    writer w;
    w.u64(sender);
    ilp::ilp_header h;
    h.service = ilp::svc::ddos_protect;
    h.connection = 2;
    h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
    h.set_meta_str(ilp::meta_key::control_op, ops::allow);
    h.set_meta_u64(ilp::meta_key::src_addr, victim->addr());
    victim->pipes().send(victim->first_hop_sn(), h, w.take());
    f.d.run();
  }
  void attack_from(host::host_stack& attacker, int packets, ilp::connection_id conn) {
    for (int i = 0; i < packets; ++i) {
      ilp::ilp_header h;
      h.service = ilp::svc::ddos_protect;
      h.connection = conn;
      h.flags = ilp::kFlagFromHost;
      h.set_meta_u64(ilp::meta_key::src_addr, attacker.addr());
      h.set_meta_u64(ilp::meta_key::dest_addr, victim->addr());
      attacker.pipes().send(attacker.first_hop_sn(), h, to_bytes("flood"));
    }
    f.d.run();
  }
  ddos_service* module() {
    return static_cast<ddos_service*>(
        f.d.sn(f.sn_w1).env().module_for(ilp::svc::ddos_protect));
  }

  two_domain_fixture f;
  host::host_stack* victim = nullptr;
  int victim_received = 0;
  bytes last_token;
};

TEST(Ddos, UnprotectedTrafficFlows) {
  ddos_fixture d;
  d.attack_from(*d.f.carol, 3, 100);
  EXPECT_EQ(d.victim_received, 3);
}

TEST(Ddos, ProtectedDropsUnauthorized) {
  ddos_fixture d;
  d.protect();
  d.attack_from(*d.f.carol, 5, 100);
  EXPECT_EQ(d.victim_received, 0);
  EXPECT_GE(d.module()->denied(), 1u);
}

TEST(Ddos, AttackShedOnFastPath) {
  // Only the first packet of an attacking connection reaches the module;
  // the rest die in the decision cache.
  ddos_fixture d;
  d.protect();
  d.attack_from(*d.f.carol, 50, 100);
  EXPECT_EQ(d.victim_received, 0);
  EXPECT_EQ(d.module()->denied(), 1u);  // one slow-path decision
  EXPECT_GE(d.f.d.sn(d.f.sn_w1).cache().stats().hits, 40u);
}

TEST(Ddos, AllowlistedSenderAdmitted) {
  ddos_fixture d;
  d.protect();
  d.allow(d.f.carol->addr());
  d.attack_from(*d.f.carol, 3, 100);
  EXPECT_EQ(d.victim_received, 3);
}

TEST(Ddos, CapabilityTokenAdmits) {
  ddos_fixture d;
  d.protect();
  d.allow(d.f.dave->addr());  // victim receives the token for dave
  ASSERT_FALSE(d.last_token.empty());

  // dave (NOT allowlisted at a different SN... but same SN here) sends
  // with the token attached — use a sender that is not allowlisted: bob.
  const bytes bob_token = d.module()->token_for(d.victim->addr(), d.f.bob->addr());
  ilp::ilp_header h;
  h.service = ilp::svc::ddos_protect;
  h.connection = 9;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, d.f.bob->addr());
  h.set_meta_u64(ilp::meta_key::dest_addr, d.victim->addr());
  set_skey_bytes(h, skey::auth_token, bob_token);
  d.f.bob->pipes().send(d.f.bob->first_hop_sn(), h, to_bytes("legit"));
  d.f.d.run();
  EXPECT_EQ(d.victim_received, 1);
}

TEST(Ddos, ForgedTokenRejected) {
  ddos_fixture d;
  d.protect();
  ilp::ilp_header h;
  h.service = ilp::svc::ddos_protect;
  h.connection = 9;
  h.flags = ilp::kFlagFromHost;
  h.set_meta_u64(ilp::meta_key::src_addr, d.f.bob->addr());
  h.set_meta_u64(ilp::meta_key::dest_addr, d.victim->addr());
  set_skey_bytes(h, skey::auth_token, bytes(32, 0x66));
  d.f.bob->pipes().send(d.f.bob->first_hop_sn(), h, to_bytes("forged"));
  d.f.d.run();
  EXPECT_EQ(d.victim_received, 0);
}

TEST(Ddos, RateLimitThrottlesAuthorizedFlood) {
  // Even allowlisted senders are bounded. Deploy a tight limiter (10 pps,
  // burst 5) on the victim's SN; a 30-packet burst mostly gets dropped.
  ddos_fixture d;
  d.f.d.sn(d.f.sn_w1).env().deploy(std::make_unique<ddos_service>(10.0, 5.0));
  d.protect();
  d.allow(d.f.carol->addr());
  for (int i = 0; i < 30; ++i) d.attack_from(*d.f.carol, 1, 1000);
  EXPECT_LT(d.victim_received, 15);
  EXPECT_GE(d.module()->rate_limited(), 10u);
}

// ---- VPN ----------------------------------------------------------------

struct vpn_fixture {
  vpn_fixture() {
    // Customer and its chosen auth service share the customer's first-hop
    // SN (the SN that enforces the VPN policy and mints tokens).
    customer = &f.d.add_host(f.west, f.sn_w1);
    auth_svc = &f.d.add_host(f.west, f.sn_w1);
    customer->set_default_handler([this](const ilp::ilp_header&, bytes p) {
      customer_received.push_back(to_string(p));
    });
    // The auth service approves any sender whose payload says "password".
    auth_svc->set_service_handler(
        ilp::svc::vpn, [this](const ilp::ilp_header& h, bytes payload) {
          const auto sender = h.meta_u64(ilp::meta_key::src_addr);
          const auto intended = get_skey_u64(h, skey::origin_addr);
          if (!sender || !intended || to_string(payload) != "password") return;
          writer w;
          w.u64(*intended);
          w.u64(*sender);
          ilp::ilp_header ok;
          ok.service = ilp::svc::vpn;
          ok.connection = h.connection;
          ok.flags = ilp::kFlagControl | ilp::kFlagFromHost;
          ok.set_meta_str(ilp::meta_key::control_op, ops::vpn_auth_ok);
          ok.set_meta_u64(ilp::meta_key::src_addr, auth_svc->addr());
          auth_svc->pipes().send(auth_svc->first_hop_sn(), ok, w.take());
        });
    // The SN returns the token to the auth service; it relays to senders
    // (we capture it here for the test).
    auth_svc->set_control_handler(ilp::svc::vpn,
                                  [this](const ilp::ilp_header&, bytes token) {
                                    issued_token = std::move(token);
                                  });
  }
  void register_customer() {
    writer w;
    w.u64(auth_svc->addr());
    ilp::ilp_header h;
    h.service = ilp::svc::vpn;
    h.connection = 1;
    h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
    h.set_meta_str(ilp::meta_key::control_op, ops::vpn_register);
    h.set_meta_u64(ilp::meta_key::src_addr, customer->addr());
    customer->pipes().send(customer->first_hop_sn(), h, w.take());
    f.d.run();
  }
  void send_to_customer(host::host_stack& sender, bytes payload, const bytes& token = {}) {
    ilp::ilp_header h;
    h.service = ilp::svc::vpn;
    h.connection = 50;
    h.flags = ilp::kFlagFromHost;
    h.set_meta_u64(ilp::meta_key::src_addr, sender.addr());
    h.set_meta_u64(ilp::meta_key::dest_addr, customer->addr());
    if (!token.empty()) set_skey_bytes(h, skey::auth_token, token);
    sender.pipes().send(sender.first_hop_sn(), h, std::move(payload));
    f.d.run();
  }

  two_domain_fixture f;
  host::host_stack* customer = nullptr;
  host::host_stack* auth_svc = nullptr;
  std::vector<std::string> customer_received;
  bytes issued_token;
};

TEST(Vpn, UnauthenticatedRedirectedToAuthService) {
  vpn_fixture v;
  v.register_customer();
  v.send_to_customer(*v.f.carol, to_bytes("wrong-creds"));
  EXPECT_TRUE(v.customer_received.empty());
  EXPECT_TRUE(v.issued_token.empty());  // auth service did not approve
}

TEST(Vpn, AuthenticatedFlowAdmitted) {
  vpn_fixture v;
  v.register_customer();
  // carol authenticates; the auth service approves and receives the token.
  v.send_to_customer(*v.f.carol, to_bytes("password"));
  ASSERT_FALSE(v.issued_token.empty());
  EXPECT_TRUE(v.customer_received.empty());  // the auth packet itself was consumed

  // carol retries with the token: admitted straight through.
  v.send_to_customer(*v.f.carol, to_bytes("real traffic"), v.issued_token);
  ASSERT_EQ(v.customer_received.size(), 1u);
  EXPECT_EQ(v.customer_received[0], "real traffic");
}

TEST(Vpn, TokenBoundToSender) {
  vpn_fixture v;
  v.register_customer();
  v.send_to_customer(*v.f.carol, to_bytes("password"));
  ASSERT_FALSE(v.issued_token.empty());
  // dave steals carol's token: rejected (token binds customer AND sender).
  v.send_to_customer(*v.f.dave, to_bytes("stolen"), v.issued_token);
  EXPECT_TRUE(v.customer_received.empty());
}

TEST(Vpn, UnregisteredDestinationUnaffected) {
  vpn_fixture v;  // no register_customer()
  v.send_to_customer(*v.f.carol, to_bytes("direct"));
  ASSERT_EQ(v.customer_received.size(), 1u);
}

TEST(Vpn, RogueAuthOkRejected) {
  vpn_fixture v;
  v.register_customer();
  // carol (not the registered auth service) tries to mint a token.
  writer w;
  w.u64(v.customer->addr());
  w.u64(v.f.carol->addr());
  ilp::ilp_header h;
  h.service = ilp::svc::vpn;
  h.connection = 3;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, ops::vpn_auth_ok);
  h.set_meta_u64(ilp::meta_key::src_addr, v.f.carol->addr());
  v.f.carol->pipes().send(v.f.carol->first_hop_sn(), h, w.take());
  v.f.d.run();
  EXPECT_TRUE(v.issued_token.empty());
}

// ---- firewall -----------------------------------------------------------

TEST(Firewall, RuleMatchingSemantics) {
  firewall_rule any;
  EXPECT_TRUE(any.matches(1, 2, 3));
  firewall_rule by_src{.src = 7};
  EXPECT_TRUE(by_src.matches(7, 2, 3));
  EXPECT_FALSE(by_src.matches(8, 2, 3));
  firewall_rule full{.src = 1, .dest = 2, .service = 3};
  EXPECT_TRUE(full.matches(1, 2, 3));
  EXPECT_FALSE(full.matches(1, 2, 4));
}

TEST(Firewall, OperatorImposedBlocking) {
  two_domain_fixture f;
  // Firewall is a standardized module on every SN; the enterprise (west
  // edomain) additionally configures a rule blocking carol's traffic at
  // its pass-through SN.
  f.d.deploy_service_simple([] { return std::make_unique<firewall_service>(); });
  auto* fw = new firewall_service();
  fw->add_rule({.src = f.carol->addr(), .allow = false});
  f.d.sn(f.sn_w1).env().deploy(std::unique_ptr<core::service_module>(fw));

  int got = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  // dave's traffic passes, carol's does not.
  f.dave->send_to(f.alice->addr(), ilp::svc::firewall, to_bytes("ok"));
  f.carol->send_to(f.alice->addr(), ilp::svc::firewall, to_bytes("blocked"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fw->blocked(), 1u);
}

TEST(Firewall, FirstMatchWins) {
  two_domain_fixture f;
  f.d.deploy_service_simple([] { return std::make_unique<firewall_service>(); });
  auto* fw = new firewall_service();
  fw->add_rule({.src = f.carol->addr(), .allow = true});   // explicit allow first
  fw->add_rule({.allow = false});                           // then deny-all
  f.d.sn(f.sn_w1).env().deploy(std::unique_ptr<core::service_module>(fw));

  int got = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.carol->send_to(f.alice->addr(), ilp::svc::firewall, to_bytes("allowed"));
  f.dave->send_to(f.alice->addr(), ilp::svc::firewall, to_bytes("denied"));
  f.d.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace interedge::services
