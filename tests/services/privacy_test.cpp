// Privacy services: oDNS and mixnet, including enclave-wrapped deployment.
#include <gtest/gtest.h>

#include "enclave/enclave.h"
#include "services/clients/mixnet_client.h"
#include "services/clients/odns_client.h"
#include "services/mixnet.h"
#include "services/odns.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

deploy::standard_services_config privacy_config() {
  deploy::standard_services_config c;
  c.odns = true;
  c.mixnet = true;
  return c;
}

struct odns_fixture {
  odns_fixture() : f(privacy_config()) {
    resolver_host = &f.d.add_host(f.east, f.sn_e2);
    resolver = std::make_unique<odns_resolver>(*resolver_host);
    resolver->add_record("example.com", "192.0.2.1");
    resolver->add_record("edge.test", "203.0.113.9");
    // Standardized config: every SN learns the resolver address.
    for (auto sn : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
      f.d.sn(sn).env().set_config(ilp::svc::odns, "resolver",
                                  std::to_string(resolver_host->addr()));
    }
  }
  two_domain_fixture f;
  host::host_stack* resolver_host = nullptr;
  std::unique_ptr<odns_resolver> resolver;
};

TEST(Odns, QueryResolvesAcrossEdomains) {
  odns_fixture o;
  odns_client client(*o.f.alice, o.resolver->public_key());
  std::map<std::string, std::string> answers;
  client.query("example.com", [&](const std::string& n, const std::string& v) { answers[n] = v; });
  o.f.d.run();
  EXPECT_EQ(answers["example.com"], "192.0.2.1");
  EXPECT_EQ(o.resolver->queries_answered(), 1u);
}

TEST(Odns, UnknownNameGetsNxdomain) {
  odns_fixture o;
  odns_client client(*o.f.alice, o.resolver->public_key());
  std::string answer;
  client.query("missing.example", [&](const std::string&, const std::string& v) { answer = v; });
  o.f.d.run();
  EXPECT_EQ(answer, "NXDOMAIN");
}

TEST(Odns, ResolverNeverLearnsClientIdentity) {
  odns_fixture o;
  odns_client a(*o.f.alice, o.resolver->public_key());
  odns_client b(*o.f.bob, o.resolver->public_key());
  a.query("example.com", [](const std::string&, const std::string&) {});
  b.query("edge.test", [](const std::string&, const std::string&) {});
  o.f.d.run();
  ASSERT_EQ(o.resolver->observed_sources().size(), 2u);
  for (auto src : o.resolver->observed_sources()) {
    EXPECT_NE(src, o.f.alice->addr());
    EXPECT_NE(src, o.f.bob->addr());
    // The observed sources are SN identities (the proxies).
    EXPECT_TRUE(src == o.f.sn_w1 || src == o.f.sn_w2) << src;
  }
}

TEST(Odns, ProxySnNeverSeesQueryContent) {
  // The query name must not appear in any datagram the proxy SN handles
  // in cleartext form.
  odns_fixture o;
  bool name_leaked = false;
  const std::string needle = "supersecretname.example";
  o.f.d.net().set_tap([&](sim::node_id, sim::node_id, const bytes& data) {
    const std::string raw(data.begin(), data.end());
    if (raw.find(needle) != std::string::npos) name_leaked = true;
  });
  o.resolver->add_record(needle, "1.2.3.4");
  odns_client client(*o.f.alice, o.resolver->public_key());
  std::string answer;
  client.query(needle, [&](const std::string&, const std::string& v) { answer = v; });
  o.f.d.run();
  EXPECT_EQ(answer, "1.2.3.4");
  EXPECT_FALSE(name_leaked);
}

TEST(Odns, ConcurrentQueriesMultiplexed) {
  odns_fixture o;
  odns_client client(*o.f.alice, o.resolver->public_key());
  std::map<std::string, std::string> answers;
  client.query("example.com", [&](const std::string& n, const std::string& v) { answers[n] = v; });
  client.query("edge.test", [&](const std::string& n, const std::string& v) { answers[n] = v; });
  o.f.d.run();
  EXPECT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers["edge.test"], "203.0.113.9");
}

// ---- mixnet ---------------------------------------------------------

struct mix_fixture {
  mix_fixture() : f(privacy_config()) {
    for (auto sn : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
      auto* m = static_cast<mixnet_service*>(f.d.sn(sn).env().module_for(ilp::svc::mixnet));
      directory.push_back(mix_node{sn, m->public_key()});
    }
  }
  mixnet_service* module(deploy::peer_id sn) {
    return static_cast<mixnet_service*>(f.d.sn(sn).env().module_for(ilp::svc::mixnet));
  }
  two_domain_fixture f;
  mix_directory directory;
};

TEST(Mixnet, ThreeHopDelivery) {
  mix_fixture m;
  mixnet_client sender(*m.f.alice);
  mixnet_client receiver(*m.f.dave);
  std::vector<std::string> got;
  receiver.set_handler([&](bytes p) { got.push_back(to_string(p)); });

  const std::vector<mix_node> chain = {m.directory[0], m.directory[2], m.directory[3]};
  sender.send(chain, m.f.dave->addr(), to_bytes("anonymous hello"));
  m.f.d.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "anonymous hello");
  EXPECT_EQ(m.module(m.f.sn_w1)->peeled(), 1u);
  EXPECT_EQ(m.module(m.f.sn_e1)->peeled(), 1u);
  EXPECT_EQ(m.module(m.f.sn_e2)->peeled(), 1u);
  EXPECT_EQ(m.module(m.f.sn_e2)->exited(), 1u);
}

TEST(Mixnet, SingleHopExit) {
  mix_fixture m;
  mixnet_client sender(*m.f.alice);
  mixnet_client receiver(*m.f.bob);
  std::string got;
  receiver.set_handler([&](bytes p) { got = to_string(p); });
  sender.send({m.directory[1]}, m.f.bob->addr(), to_bytes("one hop"));
  m.f.d.run();
  EXPECT_EQ(got, "one hop");
}

TEST(Mixnet, PayloadNeverVisibleOnWire) {
  mix_fixture m;
  bool leaked = false;
  const std::string needle = "do-not-observe-this-payload";
  std::uint64_t exit_sn = m.f.sn_e2;
  m.f.d.net().set_tap([&](sim::node_id from, sim::node_id to, const bytes& data) {
    // The payload legitimately appears in clear only on the exit SN ->
    // destination host hop (endpoint encryption is the app's concern).
    if (from == exit_sn && to == m.f.dave->addr()) return;
    const std::string raw(data.begin(), data.end());
    if (raw.find(needle) != std::string::npos) leaked = true;
  });

  mixnet_client sender(*m.f.alice);
  mixnet_client receiver(*m.f.dave);
  int got = 0;
  receiver.set_handler([&](bytes) { ++got; });
  sender.send({m.directory[0], m.directory[3]}, m.f.dave->addr(), to_bytes(needle));
  m.f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(leaked);
}

TEST(Mixnet, MixCannotPeelForeignLayer) {
  mix_fixture m;
  // Build an onion for w1 -> e1, but feed it to w2 first: w2 cannot peel,
  // and transits it toward the addressed mix (w1).
  mixnet_client sender(*m.f.bob);  // bob's first-hop is w2
  mixnet_client receiver(*m.f.carol);
  int got = 0;
  receiver.set_handler([&](bytes) { ++got; });
  sender.send({m.directory[0], m.directory[2]}, m.f.carol->addr(), to_bytes("via w1"));
  m.f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(m.module(m.f.sn_w2)->peeled(), 0u);  // transit only
  EXPECT_EQ(m.module(m.f.sn_w1)->peeled(), 1u);
}

TEST(Mixnet, OnionLayersShrinkInward) {
  mix_fixture m;
  const bytes payload = to_bytes("pp");
  const bytes onion3 = mixnet_client::build_onion(
      {m.directory[0], m.directory[1], m.directory[2]}, 99, payload);
  const bytes onion1 = mixnet_client::build_onion({m.directory[0]}, 99, payload);
  EXPECT_GT(onion3.size(), onion1.size());
  // Each layer adds at least the envelope overhead.
  EXPECT_GE(onion3.size(), onion1.size() + 2 * kEnvelopeOverhead);
}

// ---- enclave-wrapped deployment --------------------------------------

TEST(Privacy, OdnsInsideEnclaveStillWorks) {
  // §6: "SNs perform their interposed packet processing in secure
  // enclaves" for privacy-sensitive services.
  two_domain_fixture f(privacy_config());
  auto& resolver_host = f.d.add_host(f.east, f.sn_e2);
  odns_resolver resolver(resolver_host);
  resolver.add_record("sealed.example", "10.0.0.1");

  // Wrap the oDNS module on alice's SN in an enclave runtime.
  enclave::enclave_config ec;
  ec.sealing_secret = to_bytes("sn-w1-device-secret");
  f.d.sn(f.sn_w1).env().deploy(std::make_unique<enclave::enclave_runtime>(
      std::make_unique<odns_service>(), ec));
  for (auto sn : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
    f.d.sn(sn).env().set_config(ilp::svc::odns, "resolver",
                                std::to_string(resolver_host.addr()));
  }

  odns_client client(*f.alice, resolver.public_key());
  std::string answer;
  client.query("sealed.example", [&](const std::string&, const std::string& v) { answer = v; });
  f.d.run();
  EXPECT_EQ(answer, "10.0.0.1");

  auto* wrapped = static_cast<enclave::enclave_runtime*>(
      f.d.sn(f.sn_w1).env().module_for(ilp::svc::odns));
  EXPECT_GE(wrapped->stats().transitions_in, 1u);
}

}  // namespace
}  // namespace interedge::services
