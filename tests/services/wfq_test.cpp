#include "services/wfq.h"

#include <gtest/gtest.h>

#include <map>

namespace interedge::services {
namespace {

using sched = wfq_scheduler<int>;

TEST(Wfq, EmptySchedulerDequeuesNothing) {
  sched s;
  EXPECT_FALSE(s.dequeue().has_value());
  EXPECT_TRUE(s.empty());
}

TEST(Wfq, UnconfiguredClassRejectsEnqueue) {
  sched s;
  EXPECT_FALSE(s.enqueue(1, 0, 100));
}

TEST(Wfq, SingleClassFifo) {
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.enqueue(1, i, 100));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.dequeue().value(), i);
}

TEST(Wfq, StrictPriorityDominates) {
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0});  // high
  s.configure_class(2, {.priority = 1, .weight = 100.0});  // low (huge weight!)
  s.enqueue(2, 200, 100);
  s.enqueue(1, 100, 100);
  // Priority 0 always beats priority 1 regardless of weights.
  EXPECT_EQ(s.dequeue().value(), 100);
  EXPECT_EQ(s.dequeue().value(), 200);
}

TEST(Wfq, WeightedSharesConvergeToWeights) {
  // Property: with two backlogged classes at weights 3:1 and equal packet
  // sizes, releases approach a 3:1 ratio.
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 3.0, .max_queue = 10000});
  s.configure_class(2, {.priority = 0, .weight = 1.0, .max_queue = 10000});
  for (int i = 0; i < 4000; ++i) {
    s.enqueue(1, 1, 1000);
    s.enqueue(2, 2, 1000);
  }
  std::map<int, int> released;
  for (int i = 0; i < 4000; ++i) {
    released[s.dequeue().value()]++;
  }
  const double ratio = static_cast<double>(released[1]) / released[2];
  EXPECT_NEAR(ratio, 3.0, 0.1);
}

TEST(Wfq, ByteFairnessNotPacketFairness) {
  // Class 1 sends big packets, class 2 small ones, equal weights: class 2
  // must release ~4x more packets (same bytes).
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0, .max_queue = 10000});
  s.configure_class(2, {.priority = 0, .weight = 1.0, .max_queue = 10000});
  for (int i = 0; i < 4000; ++i) {
    s.enqueue(1, 1, 4000);
    s.enqueue(2, 2, 1000);
  }
  std::map<int, int> released;
  for (int i = 0; i < 2000; ++i) released[s.dequeue().value()]++;
  const double ratio = static_cast<double>(released[2]) / released[1];
  EXPECT_NEAR(ratio, 4.0, 0.5);
}

TEST(Wfq, QueueBoundDrops) {
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0, .max_queue = 3});
  EXPECT_TRUE(s.enqueue(1, 0, 1));
  EXPECT_TRUE(s.enqueue(1, 1, 1));
  EXPECT_TRUE(s.enqueue(1, 2, 1));
  EXPECT_FALSE(s.enqueue(1, 3, 1));
  EXPECT_EQ(s.dropped(), 1u);
}

TEST(Wfq, PeekSizeMatchesNextDequeue) {
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0});
  s.configure_class(2, {.priority = 1, .weight = 1.0});
  s.enqueue(2, 2, 500);
  s.enqueue(1, 1, 300);
  EXPECT_EQ(s.peek_size().value(), 300u);
  s.dequeue();
  EXPECT_EQ(s.peek_size().value(), 500u);
}

TEST(Wfq, IdleClassDoesNotAccumulateCredit) {
  // A class that was idle must not burst ahead when it starts sending:
  // virtual time catch-up (start = max(V, last_finish)).
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0, .max_queue = 10000});
  s.configure_class(2, {.priority = 0, .weight = 1.0, .max_queue = 10000});
  // Class 1 runs alone for a while.
  for (int i = 0; i < 100; ++i) s.enqueue(1, 1, 1000);
  for (int i = 0; i < 100; ++i) s.dequeue();
  // Now both are backlogged.
  for (int i = 0; i < 1000; ++i) {
    s.enqueue(1, 1, 1000);
    s.enqueue(2, 2, 1000);
  }
  std::map<int, int> released;
  for (int i = 0; i < 200; ++i) released[s.dequeue().value()]++;
  // Class 2 must not monopolize: roughly even split from the start.
  EXPECT_NEAR(released[1], released[2], 20);
}

TEST(Wfq, ParameterizedWeightRatios) {
  struct case_t {
    double w1, w2;
  };
  for (const auto& c : {case_t{1, 1}, case_t{2, 1}, case_t{5, 1}, case_t{10, 1}}) {
    sched s;
    s.configure_class(1, {.priority = 0, .weight = c.w1, .max_queue = 100000});
    s.configure_class(2, {.priority = 0, .weight = c.w2, .max_queue = 100000});
    for (int i = 0; i < 11000; ++i) {
      s.enqueue(1, 1, 100);
      s.enqueue(2, 2, 100);
    }
    std::map<int, int> released;
    for (int i = 0; i < 11000; ++i) released[s.dequeue().value()]++;
    const double expect = c.w1 / c.w2;
    const double got = static_cast<double>(released[1]) / released[2];
    EXPECT_NEAR(got, expect, expect * 0.1) << c.w1 << ":" << c.w2;
  }
}

TEST(Wfq, ReleasedAndPendingCounters) {
  sched s;
  s.configure_class(1, {.priority = 0, .weight = 1.0});
  s.enqueue(1, 1, 1);
  s.enqueue(1, 2, 1);
  EXPECT_EQ(s.pending(), 2u);
  s.dequeue();
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.released(), 1u);
}

}  // namespace
}  // namespace interedge::services
