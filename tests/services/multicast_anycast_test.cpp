#include <gtest/gtest.h>

#include "services/anycast.h"
#include "services/clients/multicast_client.h"
#include "services/multicast.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

bytes grant_token(two_domain_fixture& f, const crypto::x25519_keypair& owner,
                  const std::string& group, host::edge_addr member) {
  return lookup::make_auth_token(owner.secret, f.d.directory().public_key(),
                                 to_bytes("grant:" + group + ":" + std::to_string(member)));
}

struct mcast_setup {
  explicit mcast_setup(two_domain_fixture& f, const std::string& group) {
    // Owner = alice; grant everyone membership.
    const auto& owner = f.d.identity_of(f.alice->addr()).keys;
    f.d.directory().create_group(group, owner.public_key);
    for (auto* h : {f.alice, f.bob, f.carol, f.dave}) {
      EXPECT_TRUE(f.d.directory().grant_membership(group, h->addr(),
                                                   grant_token(f, owner, group, h->addr())));
    }
  }
};

TEST(Multicast, UnregisteredSenderDropped) {
  two_domain_fixture f;
  mcast_setup setup(f, "g");
  multicast_client receiver(*f.bob);
  multicast_client sender(*f.alice);
  std::vector<std::string> got;
  receiver.set_handler([&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  receiver.join("g");
  f.d.run();

  sender.send("g", to_bytes("no registration"));
  f.d.run();
  EXPECT_TRUE(got.empty());

  sender.register_sender("g");
  f.d.run();
  sender.send("g", to_bytes("registered now"));
  f.d.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "registered now");
}

TEST(Multicast, DeliversToAllMembersAcrossEdomains) {
  two_domain_fixture f;
  mcast_setup setup(f, "g");
  multicast_client a(*f.alice), b(*f.bob), c(*f.carol), d(*f.dave);
  int got_b = 0, got_c = 0, got_d = 0;
  b.set_handler([&](const std::string&, bytes) { ++got_b; });
  c.set_handler([&](const std::string&, bytes) { ++got_c; });
  d.set_handler([&](const std::string&, bytes) { ++got_d; });
  b.join("g");
  c.join("g");
  d.join("g");
  a.register_sender("g");
  f.d.run();

  a.send("g", to_bytes("datagram"));
  f.d.run();
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(got_c, 1);
  EXPECT_EQ(got_d, 1);
}

TEST(Multicast, UnauthorizedJoinDenied) {
  two_domain_fixture f;
  const auto& owner = f.d.identity_of(f.alice->addr()).keys;
  f.d.directory().create_group("private", owner.public_key);
  // No grant for bob.
  multicast_client b(*f.bob);
  b.join("private");
  f.d.run();
  EXPECT_EQ(b.denials(), 1u);
  EXPECT_EQ(b.acks(), 0u);
}

TEST(Multicast, LeaveStopsDelivery) {
  two_domain_fixture f;
  mcast_setup setup(f, "g");
  multicast_client a(*f.alice), b(*f.bob);
  int got = 0;
  b.set_handler([&](const std::string&, bytes) { ++got; });
  b.join("g");
  a.register_sender("g");
  f.d.run();
  a.send("g", to_bytes("1"));
  f.d.run();
  b.leave("g");
  f.d.run();
  a.send("g", to_bytes("2"));
  f.d.run();
  EXPECT_EQ(got, 1);
}

TEST(Multicast, SenderRegistrationSurvivesCheckpoint) {
  two_domain_fixture f;
  mcast_setup setup(f, "g");
  multicast_client a(*f.alice), b(*f.bob);
  int got = 0;
  b.set_handler([&](const std::string&, bytes) { ++got; });
  b.join("g");
  a.register_sender("g");
  f.d.run();

  const bytes snap = f.d.sn(f.sn_w1).checkpoint();
  f.d.sn(f.sn_w1).restore(snap);

  a.send("g", to_bytes("post-restore"));
  f.d.run();
  EXPECT_EQ(got, 1);
}

TEST(Anycast, PrefersLocalMember) {
  two_domain_fixture f;
  // Two members: one behind the sender's own SN, one remote.
  auto& local_member = f.d.add_host(f.west, f.sn_w1);
  anycast_client local(local_member), remote(*f.carol), sender(*f.alice);
  int got_local = 0, got_remote = 0;
  local.set_handler([&](const std::string&, bytes) { ++got_local; });
  remote.set_handler([&](const std::string&, bytes) { ++got_remote; });
  local.join("svc");
  remote.join("svc");
  f.d.run();

  for (int i = 0; i < 5; ++i) sender.send("svc", to_bytes("req"));
  f.d.run();
  EXPECT_EQ(got_local, 5);  // nearest member takes everything
  EXPECT_EQ(got_remote, 0);
}

TEST(Anycast, FallsBackToSameEdomainThenRemote) {
  two_domain_fixture f;
  anycast_client same_domain(*f.bob), remote(*f.carol), sender(*f.alice);
  int got_same = 0, got_remote = 0;
  same_domain.set_handler([&](const std::string&, bytes) { ++got_same; });
  remote.set_handler([&](const std::string&, bytes) { ++got_remote; });
  same_domain.join("svc");
  remote.join("svc");
  f.d.run();

  sender.send("svc", to_bytes("req"));
  f.d.run();
  EXPECT_EQ(got_same, 1);
  EXPECT_EQ(got_remote, 0);

  same_domain.leave("svc");
  f.d.run();
  sender.send("svc", to_bytes("req2"));
  f.d.run();
  EXPECT_EQ(got_same, 1);
  EXPECT_EQ(got_remote, 1);  // only the remote member remains
}

TEST(Anycast, ExactlyOneRecipient) {
  two_domain_fixture f;
  anycast_client b(*f.bob), c(*f.carol), d(*f.dave), sender(*f.alice);
  int total = 0;
  for (auto* client : {&b, &c, &d}) {
    client->set_handler([&](const std::string&, bytes) { ++total; });
    client->join("svc");
  }
  f.d.run();
  for (int i = 0; i < 10; ++i) sender.send("svc", to_bytes("r"));
  f.d.run();
  EXPECT_EQ(total, 10);  // each request delivered exactly once
}

TEST(Anycast, NoMembersNoDelivery) {
  two_domain_fixture f;
  anycast_client sender(*f.alice);
  sender.send("empty-group", to_bytes("r"));
  EXPECT_NO_THROW(f.d.run());
}

}  // namespace
}  // namespace interedge::services
