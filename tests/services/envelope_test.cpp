#include "services/envelope.h"

#include <gtest/gtest.h>

namespace interedge::services {
namespace {

crypto::x25519_keypair keypair(std::uint8_t fill) {
  crypto::x25519_key seed;
  seed.fill(fill);
  return crypto::x25519_keypair_from_seed(seed);
}

TEST(Envelope, SealOpenRoundTrip) {
  const auto recipient = keypair(0x31);
  const bytes sealed = envelope_seal(recipient.public_key, to_bytes("hello"));
  EXPECT_EQ(sealed.size(), 5 + kEnvelopeOverhead);
  const auto opened = envelope_open(recipient.secret, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "hello");
}

TEST(Envelope, WrongRecipientCannotOpen) {
  const auto recipient = keypair(0x31);
  const auto other = keypair(0x32);
  const bytes sealed = envelope_seal(recipient.public_key, to_bytes("secret"));
  EXPECT_FALSE(envelope_open(other.secret, sealed).has_value());
}

TEST(Envelope, FreshEphemeralPerSeal) {
  const auto recipient = keypair(0x31);
  EXPECT_NE(envelope_seal(recipient.public_key, to_bytes("same")),
            envelope_seal(recipient.public_key, to_bytes("same")));
}

TEST(Envelope, TamperRejected) {
  const auto recipient = keypair(0x31);
  bytes sealed = envelope_seal(recipient.public_key, to_bytes("x"));
  sealed[40] ^= 1;  // inside ciphertext
  EXPECT_FALSE(envelope_open(recipient.secret, sealed).has_value());
  bytes sealed2 = envelope_seal(recipient.public_key, to_bytes("x"));
  sealed2[0] ^= 1;  // inside ephemeral public key
  EXPECT_FALSE(envelope_open(recipient.secret, sealed2).has_value());
}

TEST(Envelope, TooShortRejected) {
  const auto recipient = keypair(0x31);
  EXPECT_FALSE(envelope_open(recipient.secret, bytes(10, 0)).has_value());
}

TEST(Envelope, ReplyKeySharedBetweenEnds) {
  const auto recipient = keypair(0x31);
  auto [sealed, sender_reply_key] = envelope_seal_with_reply(recipient.public_key, to_bytes("q"));
  auto opened = envelope_open_with_reply(recipient.secret, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->second, sender_reply_key);

  // Recipient answers symmetrically; sender decrypts.
  const bytes answer = reply_seal(opened->second, to_bytes("a"));
  const auto decrypted = reply_open(sender_reply_key, answer);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(to_string(*decrypted), "a");
}

TEST(Envelope, ReplyKeyDiffersPerEnvelope) {
  const auto recipient = keypair(0x31);
  auto [s1, k1] = envelope_seal_with_reply(recipient.public_key, to_bytes("q"));
  auto [s2, k2] = envelope_seal_with_reply(recipient.public_key, to_bytes("q"));
  EXPECT_NE(k1, k2);
}

TEST(Envelope, ReplyTamperRejected) {
  const auto recipient = keypair(0x31);
  auto [sealed, key] = envelope_seal_with_reply(recipient.public_key, to_bytes("q"));
  (void)sealed;
  bytes answer = reply_seal(key, to_bytes("a"));
  answer.back() ^= 1;
  EXPECT_FALSE(reply_open(key, answer).has_value());
}

class EnvelopeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EnvelopeSizeSweep, RoundTrip) {
  const auto recipient = keypair(0x55);
  bytes payload(GetParam());
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i);
  const auto opened = envelope_open(recipient.secret,
                                    envelope_seal(recipient.public_key, payload));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnvelopeSizeSweep, ::testing::Values(0, 1, 100, 1500, 65536));

}  // namespace
}  // namespace interedge::services
