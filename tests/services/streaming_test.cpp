#include "services/streaming.h"

#include <gtest/gtest.h>

#include "common/serial.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

media_frame make_frame(std::uint32_t id, std::uint32_t kbps, std::size_t samples = 1000) {
  media_frame f;
  f.frame_id = id;
  f.bitrate_kbps = kbps;
  f.samples.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) f.samples[i] = static_cast<std::uint8_t>(i);
  return f;
}

TEST(MediaLibrary, FrameCodecRoundTrip) {
  const media_frame f = make_frame(7, 2000, 100);
  const media_frame decoded = media_frame::decode(f.encode());
  EXPECT_EQ(decoded.frame_id, 7u);
  EXPECT_EQ(decoded.bitrate_kbps, 2000u);
  EXPECT_EQ(decoded.samples, f.samples);
}

TEST(MediaLibrary, TranscodeReducesProportionally) {
  const media_frame f = make_frame(1, 2000, 1000);
  const media_frame reduced = media_transcode(f, 500);
  EXPECT_EQ(reduced.bitrate_kbps, 500u);
  EXPECT_EQ(reduced.samples.size(), 250u);  // 500/2000 of the samples
  EXPECT_EQ(reduced.frame_id, 1u);
}

TEST(MediaLibrary, TranscodeNoOpWithinTarget) {
  const media_frame f = make_frame(1, 400, 100);
  const media_frame out = media_transcode(f, 500);
  EXPECT_EQ(out.bitrate_kbps, 400u);
  EXPECT_EQ(out.samples.size(), 100u);
}

TEST(MediaLibrary, TranscodeNeverEmpty) {
  const media_frame f = make_frame(1, 100000, 10);
  const media_frame out = media_transcode(f, 1);
  EXPECT_GE(out.samples.size(), 1u);
}

struct stream_fixture {
  stream_fixture() {
    viewer = &f.d.add_host(f.west, f.sn_w1);
    viewer->set_service_handler(ilp::svc::streaming,
                                [this](const ilp::ilp_header&, bytes payload) {
                                  received.push_back(media_frame::decode(payload));
                                });
  }
  void configure(std::uint64_t kbps) {
    writer w;
    w.u64(kbps);
    ilp::ilp_header h;
    h.service = ilp::svc::streaming;
    h.connection = 1;
    h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
    h.set_meta_str(ilp::meta_key::control_op, kStreamConfigure);
    h.set_meta_u64(ilp::meta_key::src_addr, viewer->addr());
    viewer->pipes().send(viewer->first_hop_sn(), h, w.take());
    f.d.run();
  }
  void send_frame(std::uint32_t id, std::uint32_t kbps) {
    f.carol->send_to(viewer->addr(), ilp::svc::streaming, make_frame(id, kbps).encode());
    f.d.run();
  }
  streaming_service* module() {
    return static_cast<streaming_service*>(
        f.d.sn(f.sn_w1).env().module_for(ilp::svc::streaming));
  }

  two_domain_fixture f;
  host::host_stack* viewer = nullptr;
  std::vector<media_frame> received;
};

TEST(Streaming, HighBitrateTranscodedAtLastHop) {
  stream_fixture s;
  s.configure(500);
  s.send_frame(1, 2000);
  ASSERT_EQ(s.received.size(), 1u);
  EXPECT_EQ(s.received[0].bitrate_kbps, 500u);
  EXPECT_EQ(s.received[0].samples.size(), 250u);
  EXPECT_EQ(s.module()->transcoded(), 1u);
}

TEST(Streaming, WithinBudgetPassesUntouched) {
  stream_fixture s;
  s.configure(5000);
  s.send_frame(1, 2000);
  ASSERT_EQ(s.received.size(), 1u);
  EXPECT_EQ(s.received[0].bitrate_kbps, 2000u);
  EXPECT_EQ(s.received[0].samples.size(), 1000u);
  EXPECT_EQ(s.module()->transcoded(), 0u);
  EXPECT_EQ(s.module()->passed_through(), 1u);
}

TEST(Streaming, NoProfileMeansFullRate) {
  stream_fixture s;  // no configure()
  s.send_frame(1, 8000);
  ASSERT_EQ(s.received.size(), 1u);
  EXPECT_EQ(s.received[0].bitrate_kbps, 8000u);
}

TEST(Streaming, TransitSnNeverTranscodes) {
  // The viewer's profile exists only at its first-hop SN; the sender-side
  // and gateway SNs must not touch the media even if they also run the
  // module.
  stream_fixture s;
  s.configure(100);
  s.send_frame(1, 4000);
  ASSERT_EQ(s.received.size(), 1u);
  EXPECT_EQ(s.received[0].bitrate_kbps, 100u);
  auto* sender_side = static_cast<streaming_service*>(
      s.f.d.sn(s.f.sn_e1).env().module_for(ilp::svc::streaming));
  EXPECT_EQ(sender_side->transcoded(), 0u);
}

TEST(Streaming, AdaptivePerReceiver) {
  // Two viewers, different budgets, same source frame rate.
  stream_fixture s;
  auto& viewer2 = s.f.d.add_host(s.f.west, s.f.sn_w1);
  std::vector<media_frame> received2;
  viewer2.set_service_handler(ilp::svc::streaming,
                              [&](const ilp::ilp_header&, bytes payload) {
                                received2.push_back(media_frame::decode(payload));
                              });
  s.configure(500);
  // viewer2 declares a higher budget.
  writer w;
  w.u64(4000);
  ilp::ilp_header h;
  h.service = ilp::svc::streaming;
  h.connection = 2;
  h.flags = ilp::kFlagControl | ilp::kFlagFromHost;
  h.set_meta_str(ilp::meta_key::control_op, kStreamConfigure);
  h.set_meta_u64(ilp::meta_key::src_addr, viewer2.addr());
  viewer2.pipes().send(viewer2.first_hop_sn(), h, w.take());
  s.f.d.run();

  s.f.carol->send_to(s.viewer->addr(), ilp::svc::streaming, make_frame(1, 2000).encode());
  s.f.carol->send_to(viewer2.addr(), ilp::svc::streaming, make_frame(1, 2000).encode());
  s.f.d.run();

  ASSERT_EQ(s.received.size(), 1u);
  ASSERT_EQ(received2.size(), 1u);
  EXPECT_EQ(s.received[0].bitrate_kbps, 500u);   // constrained viewer
  EXPECT_EQ(received2[0].bitrate_kbps, 2000u);   // unconstrained passes through
}

TEST(Streaming, MalformedFrameDropped) {
  stream_fixture s;
  s.configure(500);
  s.f.carol->send_to(s.viewer->addr(), ilp::svc::streaming, to_bytes("not a frame"));
  s.f.d.run();
  EXPECT_TRUE(s.received.empty());
}

}  // namespace
}  // namespace interedge::services
