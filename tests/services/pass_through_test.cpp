// Operator-imposed pass-through SN tests (paper §3.2, third invocation
// mode): an enterprise boundary SN applies operator services to all
// traffic and forwards to the next-hop SN where client-invoked services
// run.
#include "services/pass_through.h"

#include <gtest/gtest.h>

#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/pubsub_client.h"
#include "services/pubsub.h"

namespace interedge::services {
namespace {

struct enterprise_fixture {
  enterprise_fixture() {
    enterprise = d.add_edomain();
    provider = d.add_edomain();
    boundary_sn = d.add_sn(enterprise);   // the enterprise's pass-through SN
    upstream_sn = d.add_sn(provider);     // the IESP SN running real services
    employee = &d.add_host(enterprise, boundary_sn);
    outsider = &d.add_host(provider, upstream_sn);
    d.interconnect();
    deploy::deploy_standard_services(d);

    auto interceptor = std::make_unique<pass_through_service>(upstream_sn);
    raw = interceptor.get();
    raw->add_enterprise_host(employee->addr());
    d.sn(boundary_sn).env().set_interceptor(std::move(interceptor));
  }
  deploy::deployment d;
  deploy::edomain_id enterprise{}, provider{};
  deploy::peer_id boundary_sn{}, upstream_sn{};
  host::host_stack* employee = nullptr;
  host::host_stack* outsider = nullptr;
  pass_through_service* raw = nullptr;
};

TEST(PassThrough, OutboundTraversesBoundaryThenUpstream) {
  enterprise_fixture f;
  int got = 0;
  f.outsider->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.employee->send_to(f.outsider->addr(), ilp::svc::delivery, to_bytes("report.pdf"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.raw->passed_out(), 1u);
  // The client-invoked service (delivery) ran at the upstream SN, not at
  // the boundary.
  EXPECT_GE(f.d.sn(f.upstream_sn).datapath_stats().forwarded, 1u);
}

TEST(PassThrough, OperatorRuleBlocksOutbound) {
  enterprise_fixture f;
  f.raw->add_rule({.dest = f.outsider->addr(), .allow = false});
  int got = 0;
  f.outsider->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.employee->send_to(f.outsider->addr(), ilp::svc::delivery, to_bytes("exfil"));
  f.d.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.raw->blocked(), 1u);
}

TEST(PassThrough, BlockedConnectionsShedOnFastPath) {
  enterprise_fixture f;
  f.raw->add_rule({.dest = f.outsider->addr(), .allow = false});
  auto conn = f.employee->open(f.outsider->addr(), ilp::svc::delivery,
                               f.employee->first_hop_sn());
  for (int i = 0; i < 20; ++i) conn.send(to_bytes("x"));
  f.d.run();
  EXPECT_EQ(f.raw->blocked(), 1u);  // only the first packet hit the module
  EXPECT_GE(f.d.sn(f.boundary_sn).cache().stats().hits, 19u);
}

TEST(PassThrough, InboundDeliveredThroughBoundary) {
  enterprise_fixture f;
  int got = 0;
  f.employee->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.outsider->send_to(f.employee->addr(), ilp::svc::delivery, to_bytes("inbound"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.raw->passed_in(), 1u);
}

TEST(PassThrough, InboundRuleBlocks) {
  enterprise_fixture f;
  f.raw->add_rule({.src = f.outsider->addr(), .allow = false});
  int got = 0;
  f.employee->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.outsider->send_to(f.employee->addr(), ilp::svc::delivery, to_bytes("spam"));
  f.d.run();
  EXPECT_EQ(got, 0);
}

TEST(PassThrough, ClientInvokedServiceWorksThroughBoundary) {
  // The employee subscribes to a topic: the control packet crosses the
  // boundary, and the pub/sub module at the UPSTREAM SN handles it (the
  // paper's "the client's partial trust relationship ... is with that
  // next-hop SN").
  enterprise_fixture f;
  pubsub_client sub(*f.employee);
  pubsub_client pub(*f.outsider);
  std::vector<std::string> got;
  sub.subscribe("news", [&](const std::string&, bytes p) { got.push_back(to_string(p)); });
  f.d.run();

  auto* upstream_pubsub = static_cast<pubsub_service*>(
      f.d.sn(f.upstream_sn).env().module_for(ilp::svc::pubsub));
  EXPECT_EQ(upstream_pubsub->subscribers("news"), 1u);
  auto* boundary_pubsub = static_cast<pubsub_service*>(
      f.d.sn(f.boundary_sn).env().module_for(ilp::svc::pubsub));
  EXPECT_EQ(boundary_pubsub->subscribers("news"), 0u);

  pub.publish("news", to_bytes("headline"));
  f.d.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "headline");
}

TEST(PassThrough, NonEnterpriseTrafficContinuesLocally) {
  // Frames that are not enterprise traffic (e.g. another SN's relay
  // traffic through this node) still reach the local service modules.
  enterprise_fixture f;
  auto& other = f.d.add_host(f.enterprise, f.boundary_sn);  // NOT registered as enterprise host
  int got = 0;
  other.set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.outsider->send_to(other.addr(), ilp::svc::delivery, to_bytes("normal"));
  f.d.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace interedge::services
