// NGFW payload inspection and deployment-level attestation tests.
#include <gtest/gtest.h>

#include "enclave/enclave.h"
#include "services/ngfw.h"
#include "services/pass_through.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

TEST(Ngfw, BlocksMatchingPayloads) {
  two_domain_fixture f;
  auto inspector = std::make_unique<ngfw_service>();
  auto* raw = inspector.get();
  raw->add_rule("exploit-sig", "metasploit|shellcode|\\x90\\x90");
  f.d.sn(f.sn_w1).env().set_interceptor(std::move(inspector));

  int got = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });

  f.carol->send_to(f.alice->addr(), ilp::svc::delivery, to_bytes("ordinary mail"));
  f.carol->send_to(f.alice->addr(), ilp::svc::delivery, to_bytes("try this shellcode now"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(raw->blocked(), 1u);
  EXPECT_EQ(raw->rule_hits("exploit-sig"), 1u);
}

TEST(Ngfw, DestinationScopedRules) {
  two_domain_fixture f;
  auto inspector = std::make_unique<ngfw_service>();
  auto* raw = inspector.get();
  raw->add_rule("alice-only", "forbidden", f.alice->addr());
  f.d.sn(f.sn_w1).env().set_interceptor(std::move(inspector));

  auto& second = f.d.add_host(f.west, f.sn_w1);
  int got_alice = 0, got_second = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got_alice; });
  second.set_default_handler([&](const ilp::ilp_header&, bytes) { ++got_second; });

  f.carol->send_to(f.alice->addr(), ilp::svc::delivery, to_bytes("forbidden word"));
  f.carol->send_to(second.addr(), ilp::svc::delivery, to_bytes("forbidden word"));
  f.d.run();
  EXPECT_EQ(got_alice, 0);   // scoped rule fired
  EXPECT_EQ(got_second, 1);  // other destinations unaffected
}

TEST(Ngfw, EveryPacketInspectedNoFastPathBypass) {
  // Unlike address firewalls, NGFW decisions are content-dependent and
  // must not be cached: a clean packet must not open a cached fast path
  // that a later dirty packet on the same connection slips through.
  two_domain_fixture f;
  auto inspector = std::make_unique<ngfw_service>();
  auto* raw = inspector.get();
  raw->add_rule("sig", "malware");
  f.d.sn(f.sn_w1).env().set_interceptor(std::move(inspector));

  int got = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  auto conn = f.carol->open(f.alice->addr(), ilp::svc::delivery, f.carol->first_hop_sn());
  conn.send(to_bytes("clean"));
  f.d.run();
  conn.send(to_bytes("carrying malware payload"));
  f.d.run();
  conn.send(to_bytes("clean again"));
  f.d.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(raw->blocked(), 1u);
}

TEST(Ngfw, InsideEnclaveStillInspects) {
  // §6: privacy-sensitive interposed processing runs in enclaves; the
  // NGFW wrapped in enclave_runtime behaves identically.
  two_domain_fixture f;
  auto inspector = std::make_unique<ngfw_service>();
  auto* raw = inspector.get();
  raw->add_rule("sig", "blocked-content");
  enclave::enclave_config ec;
  ec.sealing_secret = to_bytes("boundary-device");
  f.d.sn(f.sn_w1).env().set_interceptor(
      std::make_unique<enclave::enclave_runtime>(std::move(inspector), ec));

  int got = 0;
  f.alice->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.carol->send_to(f.alice->addr(), ilp::svc::delivery, to_bytes("blocked-content here"));
  f.carol->send_to(f.alice->addr(), ilp::svc::delivery, to_bytes("fine"));
  f.d.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(raw->blocked(), 1u);
}

// ---- deployment attestation -------------------------------------------

TEST(Attestation, AllSnsAttestAgainstGoldenMeasurement) {
  two_domain_fixture f;
  enclave::attestation_authority authority(7);
  const auto golden = enclave::measure_module("standard-suite", "v1", to_bytes("image"));
  f.d.provision_attestation(authority, golden, "suite-v1");

  for (auto sn : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
    EXPECT_TRUE(f.d.attest_sn(authority, sn, "suite-v1", to_bytes("nonce-1"))) << sn;
  }
}

TEST(Attestation, TamperedSnFailsChallenge) {
  two_domain_fixture f;
  enclave::attestation_authority authority(7);
  const auto golden = enclave::measure_module("standard-suite", "v1", to_bytes("image"));
  f.d.provision_attestation(authority, golden, "suite-v1");

  // sn_w2 loads an extra (unauthorized) module image -> register diverges.
  f.d.tpm_of(f.sn_w2)->extend(
      enclave::measure_module("backdoor", "v1", to_bytes("evil")));
  EXPECT_FALSE(f.d.attest_sn(authority, f.sn_w2, "suite-v1", to_bytes("n")));
  EXPECT_TRUE(f.d.attest_sn(authority, f.sn_w1, "suite-v1", to_bytes("n")));
}

TEST(Attestation, UnknownSnFailsChallenge) {
  two_domain_fixture f;
  enclave::attestation_authority authority(7);
  const auto golden = enclave::measure_module("s", "v1", to_bytes("i"));
  f.d.provision_attestation(authority, golden, "l");
  EXPECT_FALSE(f.d.attest_sn(authority, 999999, "l", to_bytes("n")));
}

}  // namespace
}  // namespace interedge::services
