// Cluster interconnection tests: multi-site fabric over the InterEdge.
#include "services/cluster_interconnect.h"

#include <gtest/gtest.h>

#include "services/clients/cluster_client.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

struct cluster_fixture {
  cluster_fixture()
      : site_west(*f.alice), site_east(*f.carol), site_east2(*f.dave) {
    site_west.set_handler([this](std::uint64_t inner, bytes frame) {
      west_frames.emplace_back(inner, to_string(frame));
    });
    site_east.set_handler([this](std::uint64_t inner, bytes frame) {
      east_frames.emplace_back(inner, to_string(frame));
    });
    site_east2.set_handler([this](std::uint64_t inner, bytes frame) {
      east2_frames.emplace_back(inner, to_string(frame));
    });
  }
  two_domain_fixture f;
  cluster_gateway site_west;
  cluster_gateway site_east;
  cluster_gateway site_east2;
  std::vector<std::pair<std::uint64_t, std::string>> west_frames, east_frames, east2_frames;
};

TEST(ClusterInterconnect, FrameReachesRemoteSites) {
  cluster_fixture c;
  c.site_west.attach("hpc-fabric");
  c.site_east.attach("hpc-fabric");
  c.f.d.run();

  c.site_west.send_frame("hpc-fabric", /*inner_dest=*/0x0a000001, to_bytes("rdma-frame"));
  c.f.d.run();

  ASSERT_EQ(c.east_frames.size(), 1u);
  EXPECT_EQ(c.east_frames[0].first, 0x0a000001u);
  EXPECT_EQ(c.east_frames[0].second, "rdma-frame");
  // The sender's own site does not loop the frame back.
  EXPECT_TRUE(c.west_frames.empty());
}

TEST(ClusterInterconnect, ThreeSitesAllReceive) {
  cluster_fixture c;
  c.site_west.attach("grid");
  c.site_east.attach("grid");
  c.site_east2.attach("grid");
  c.f.d.run();

  c.site_west.send_frame("grid", 7, to_bytes("broadcastish"));
  c.f.d.run();
  EXPECT_EQ(c.east_frames.size(), 1u);
  EXPECT_EQ(c.east2_frames.size(), 1u);
  EXPECT_TRUE(c.west_frames.empty());
}

TEST(ClusterInterconnect, ClustersAreIsolated) {
  cluster_fixture c;
  c.site_west.attach("cluster-a");
  c.site_east.attach("cluster-b");
  c.f.d.run();
  c.site_west.send_frame("cluster-a", 1, to_bytes("a-only"));
  c.f.d.run();
  EXPECT_TRUE(c.east_frames.empty());
}

TEST(ClusterInterconnect, DetachStopsDelivery) {
  cluster_fixture c;
  c.site_west.attach("x");
  c.site_east.attach("x");
  c.f.d.run();
  c.site_west.send_frame("x", 1, to_bytes("1"));
  c.f.d.run();
  c.site_east.detach("x");
  c.f.d.run();
  c.site_west.send_frame("x", 1, to_bytes("2"));
  c.f.d.run();
  EXPECT_EQ(c.east_frames.size(), 1u);
}

TEST(ClusterInterconnect, InnerAddressingOpaqueToInterEdge) {
  // The inner destination never appears in ILP header metadata the SNs
  // route on — only inside the payload blob.
  cluster_fixture c;
  c.site_west.attach("p");
  c.site_east.attach("p");
  c.f.d.run();

  bool inner_leaked_in_header = false;
  c.f.d.net().set_tap([&](sim::node_id, sim::node_id, const bytes&) {});
  c.site_west.send_frame("p", 0xdeadbeef, to_bytes("f"));
  c.f.d.run();
  EXPECT_FALSE(inner_leaked_in_header);
  ASSERT_EQ(c.east_frames.size(), 1u);
  EXPECT_EQ(c.east_frames[0].first, 0xdeadbeefu);
}

TEST(ClusterInterconnect, GatewayCountTracked) {
  cluster_fixture c;
  c.site_west.attach("y");
  c.f.d.run();
  auto* module = static_cast<cluster_interconnect_service*>(
      c.f.d.sn(c.f.sn_w1).env().module_for(ilp::svc::cluster));
  EXPECT_EQ(module->gateways("y"), 1u);
}

}  // namespace
}  // namespace interedge::services
