// Specialty services: geo message queue, time-ordered delivery, bulk data.
#include <gtest/gtest.h>

#include "services/clients/bulk_client.h"
#include "services/clients/queue_client.h"
#include "services/message_queue.h"
#include "services/ordered_delivery.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using namespace std::chrono_literals;
using testing::two_domain_fixture;

// ---- message queue ----------------------------------------------------

struct mq_fixture {
  mq_fixture() : producer(*f.alice), consumer(*f.carol) {
    consumer.set_message_handler([this](const std::string& q, std::uint64_t seq, bytes body) {
      received.emplace_back(seq, to_string(body));
      if (auto_ack) consumer.ack(q, seq);
    });
    consumer.set_empty_handler([this](const std::string&) { ++empties; });
  }
  two_domain_fixture f;
  queue_client producer;
  queue_client consumer;
  std::vector<std::pair<std::uint64_t, std::string>> received;
  int empties = 0;
  bool auto_ack = true;
};

TEST(MessageQueue, PushPopAcrossEdomains) {
  mq_fixture m;
  m.producer.create("jobs");
  m.f.d.run();
  m.producer.push("jobs", to_bytes("job-1"));
  m.f.d.run();
  // Consumer in the other edomain pops through its own SN.
  m.consumer.pop("jobs");
  m.f.d.run();
  ASSERT_EQ(m.received.size(), 1u);
  EXPECT_EQ(m.received[0].second, "job-1");
}

TEST(MessageQueue, FifoOrder) {
  mq_fixture m;
  m.producer.create("q");
  m.f.d.run();
  for (int i = 0; i < 5; ++i) m.producer.push("q", to_bytes("m" + std::to_string(i)));
  m.f.d.run();
  for (int i = 0; i < 5; ++i) {
    m.consumer.pop("q");
    m.f.d.run();
  }
  ASSERT_EQ(m.received.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(m.received[i].second, "m" + std::to_string(i));
}

TEST(MessageQueue, EmptyQueueSignalsEmpty) {
  mq_fixture m;
  m.producer.create("q");
  m.f.d.run();
  m.consumer.pop("q");
  m.f.d.run();
  EXPECT_EQ(m.empties, 1);
  EXPECT_TRUE(m.received.empty());
}

TEST(MessageQueue, UnackedMessageRedelivered) {
  mq_fixture m;
  m.auto_ack = false;  // consumer "crashes" before acking
  m.producer.create("q");
  m.f.d.run();
  m.producer.push("q", to_bytes("retry-me"));
  m.f.d.run();
  m.consumer.pop("q");
  m.f.d.run();
  ASSERT_EQ(m.received.size(), 1u);

  // After the visibility timeout the message is poppable again.
  m.f.d.net().run_until(m.f.d.net().now() + 31s);
  m.auto_ack = true;
  m.consumer.pop("q");
  m.f.d.run();
  ASSERT_EQ(m.received.size(), 2u);
  EXPECT_EQ(m.received[1].second, "retry-me");
  EXPECT_EQ(m.received[0].first, m.received[1].first);  // same seq: redelivery
}

TEST(MessageQueue, AckedMessageNotRedelivered) {
  mq_fixture m;
  m.producer.create("q");
  m.f.d.run();
  m.producer.push("q", to_bytes("once"));
  m.f.d.run();
  m.consumer.pop("q");
  m.f.d.run();
  m.f.d.net().run_until(m.f.d.net().now() + 31s);
  m.consumer.pop("q");
  m.f.d.run();
  EXPECT_EQ(m.received.size(), 1u);
  EXPECT_EQ(m.empties, 1);
}

TEST(MessageQueue, TwoConsumersShareWork) {
  mq_fixture m;
  queue_client consumer2(*m.f.dave);
  std::vector<std::string> got2;
  consumer2.set_message_handler([&](const std::string& q, std::uint64_t seq, bytes body) {
    got2.push_back(to_string(body));
    consumer2.ack(q, seq);
  });

  m.producer.create("q");
  m.f.d.run();
  for (int i = 0; i < 4; ++i) m.producer.push("q", to_bytes("w" + std::to_string(i)));
  m.f.d.run();
  m.consumer.pop("q");
  consumer2.pop("q");
  m.consumer.pop("q");
  consumer2.pop("q");
  m.f.d.run();
  EXPECT_EQ(m.received.size() + got2.size(), 4u);
  EXPECT_EQ(m.received.size(), 2u);
}

TEST(MessageQueue, QueueStateSurvivesCheckpoint) {
  mq_fixture m;
  m.producer.create("q");
  m.f.d.run();
  m.producer.push("q", to_bytes("persistent"));
  m.f.d.run();

  auto& home_sn = m.f.d.sn(m.f.sn_w1);  // producer's first-hop created it
  const bytes snap = home_sn.checkpoint();
  home_sn.restore(snap);

  m.consumer.pop("q");
  m.f.d.run();
  ASSERT_EQ(m.received.size(), 1u);
  EXPECT_EQ(m.received[0].second, "persistent");
}

// ---- ordered delivery --------------------------------------------------

TEST(OrderedDelivery, ReordersWithinWindow) {
  // Make the west->east SN paths asymmetric so alice's earlier-stamped
  // message arrives later than bob's: the receiver-side window must
  // restore timestamp order. Direct inter-domain pipes keep the two
  // senders' paths disjoint (otherwise both relay via the gateway).
  two_domain_fixture f({}, deploy::deployment_config{.direct_interdomain = true});
  f.d.net().set_link(f.sn_w1, f.sn_e1, {.latency = 20ms});  // slow path for alice

  std::vector<std::string> got;
  f.carol->set_service_handler(ilp::svc::ordered_delivery,
                               [&](const ilp::ilp_header&, bytes p) {
                                 got.push_back(to_string(p));
                               });

  // alice sends first (earlier GPS timestamp), bob slightly later.
  f.alice->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("first"));
  f.d.net().run_until(f.d.net().now() + 1ms);
  f.bob->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("second"));
  f.d.run();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "second");
}

TEST(OrderedDelivery, WithoutServiceOrderWouldInvert) {
  // Control experiment: the same traffic over plain delivery arrives
  // inverted — demonstrating the service's effect.
  two_domain_fixture f({}, deploy::deployment_config{.direct_interdomain = true});
  f.d.net().set_link(f.sn_w1, f.sn_e1, {.latency = 20ms});
  std::vector<std::string> got;
  f.carol->set_default_handler([&](const ilp::ilp_header&, bytes p) {
    got.push_back(to_string(p));
  });
  f.alice->send_to(f.carol->addr(), ilp::svc::delivery, to_bytes("first"));
  f.d.net().run_until(f.d.net().now() + 1ms);
  f.bob->send_to(f.carol->addr(), ilp::svc::delivery, to_bytes("second"));
  f.d.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "second");  // inversion without the service
}

TEST(OrderedDelivery, VeryLateMessageDeliveredNotDropped) {
  // A message older than the release window still arrives (counted as
  // late) — ordering without atomicity, as the paper specifies.
  two_domain_fixture f({}, deploy::deployment_config{.direct_interdomain = true});
  f.d.net().set_link(f.sn_w1, f.sn_e1, {.latency = 500ms});  // way past the window
  std::vector<std::string> got;
  f.carol->set_service_handler(ilp::svc::ordered_delivery,
                               [&](const ilp::ilp_header&, bytes p) {
                                 got.push_back(to_string(p));
                               });
  f.alice->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("ancient"));
  f.d.net().run_until(f.d.net().now() + 1ms);
  f.bob->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("fresh"));
  f.d.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "fresh");  // released after its window
  EXPECT_EQ(got[1], "ancient");
  auto* module = static_cast<ordered_delivery_service*>(
      f.d.sn(f.sn_e1).env().module_for(ilp::svc::ordered_delivery));
  EXPECT_EQ(module->late(), 1u);
}

TEST(OrderedDelivery, ManySendersTotalOrder) {
  two_domain_fixture f({}, deploy::deployment_config{.direct_interdomain = true});
  // Heterogeneous latencies from every western SN.
  f.d.net().set_link(f.sn_w1, f.sn_e1, {.latency = 9ms});
  f.d.net().set_link(f.sn_w2, f.sn_e1, {.latency = 2ms});

  std::vector<std::string> got;
  f.carol->set_service_handler(ilp::svc::ordered_delivery,
                               [&](const ilp::ilp_header&, bytes p) {
                                 got.push_back(to_string(p));
                               });
  // Warm up the pipes (first packets queue behind ILP handshakes, which
  // would compress the timestamps of the measured sequence).
  f.alice->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("w"));
  f.bob->send_to(f.carol->addr(), ilp::svc::ordered_delivery, to_bytes("w"));
  f.d.run();
  got.clear();

  for (int i = 0; i < 10; ++i) {
    auto& sender = (i % 2 == 0) ? *f.alice : *f.bob;
    sender.send_to(f.carol->addr(), ilp::svc::ordered_delivery,
                   to_bytes(std::to_string(i)));
    f.d.net().run_until(f.d.net().now() + 1ms);
  }
  f.d.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], std::to_string(i)) << i;
}

// ---- bulk delivery ------------------------------------------------------

TEST(BulkDelivery, ObjectChunkedAndReassembled) {
  two_domain_fixture f;
  bulk_receiver receiver(*f.carol);
  bulk_sender sender(*f.alice);
  std::map<std::string, bytes> objects;
  receiver.set_handler([&](const std::string& id, bytes body) { objects[id] = std::move(body); });
  receiver.join("dataset-feed");
  f.d.run();

  bytes big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 31);
  sender.send_object("dataset-feed", "exp-42", big, /*chunk_size=*/1024);
  f.d.run();

  ASSERT_TRUE(objects.count("exp-42"));
  EXPECT_EQ(objects["exp-42"], big);
}

TEST(BulkDelivery, MultipleReceiversOneCrossDomainTransfer) {
  two_domain_fixture f;
  bulk_receiver r1(*f.carol), r2(*f.dave);
  int complete = 0;
  r1.set_handler([&](const std::string&, bytes) { ++complete; });
  r2.set_handler([&](const std::string&, bytes) { ++complete; });
  r1.join("feed");
  r2.join("feed");
  f.d.run();

  const std::uint64_t cross_before = f.d.ledger().traffic(f.west, f.east);
  bulk_sender sender(*f.alice);
  sender.send_object("feed", "obj", bytes(4096, 0x5c), 1024);
  f.d.run();
  EXPECT_EQ(complete, 2);
  const std::uint64_t cross_bytes = f.d.ledger().traffic(f.west, f.east) - cross_before;
  // 4 chunks crossed once (gateway fan-out inside east), not twice:
  // comfortably under two full copies.
  EXPECT_LT(cross_bytes, 2 * 4096u);
  EXPECT_GT(cross_bytes, 4096u - 1);
}

TEST(BulkDelivery, MissingChunkRefetchedFromEdgeCache) {
  two_domain_fixture f;
  bulk_receiver receiver(*f.carol);
  std::map<std::string, bytes> objects;
  receiver.set_handler([&](const std::string& id, bytes body) { objects[id] = std::move(body); });
  receiver.join("feed");
  f.d.run();

  // Drop everything on the last hop to carol while the object streams.
  f.d.net().set_link(f.sn_e1, f.carol->addr(), {.loss_rate = 1.0});
  bulk_sender sender(*f.alice);
  const bytes body(3 * 512, 0x77);
  sender.send_object("feed", "obj", body, 512);
  f.d.run();
  EXPECT_TRUE(objects.empty());

  // Heal the link; the receiver repairs the gaps from its first-hop SN's
  // chunk cache — no sender involvement.
  f.d.net().set_link(f.sn_e1, f.carol->addr(), {.loss_rate = 0.0});
  // The receiver saw nothing at all, so it re-fetches chunks 1..3 blindly.
  for (std::uint64_t i = 1; i <= 3; ++i) receiver.fetch_chunk("obj", i);
  f.d.run();
  // fetch_chunk responses carry no chunk_count; seed an assembly by asking
  // missing() — since the receiver never saw a data chunk, it reassembles
  // purely from the refetches once all three arrive.
  ASSERT_TRUE(objects.count("obj"));
  EXPECT_EQ(objects["obj"], body);
}

TEST(BulkDelivery, MissingListTracksGaps) {
  two_domain_fixture f;
  bulk_receiver receiver(*f.carol);
  receiver.join("feed");
  f.d.run();

  // Lose only the middle chunk: deliver chunk 1 and 3 manually through a
  // lossy window.
  bulk_sender sender(*f.alice);
  f.d.net().set_link(f.sn_e1, f.carol->addr(), {.loss_rate = 0.0});
  sender.send_object("feed", "obj", bytes(512, 1), 512);  // single chunk: completes
  f.d.run();
  EXPECT_TRUE(receiver.missing("obj").empty());
}

}  // namespace
}  // namespace interedge::services
