// CDN bundle tests: caching behaviour of the delivery service.
#include "services/delivery.h"

#include <gtest/gtest.h>

#include "services/clients/content.h"
#include "services/service_fixture.h"

namespace interedge::services {
namespace {

using testing::two_domain_fixture;

delivery_service* module_on(two_domain_fixture& f, deploy::peer_id sn) {
  return static_cast<delivery_service*>(f.d.sn(sn).env().module_for(ilp::svc::delivery));
}

TEST(Delivery, PlainForwardingWithoutContentKey) {
  two_domain_fixture f;
  int got = 0;
  f.carol->set_default_handler([&](const ilp::ilp_header&, bytes) { ++got; });
  f.alice->send_to(f.carol->addr(), ilp::svc::delivery, to_bytes("plain"));
  f.d.run();
  EXPECT_EQ(got, 1);
}

TEST(Delivery, FirstFetchMissesThenServesFromEdgeCache) {
  two_domain_fixture f;
  // Origin in the east, clients in the west: the classic CDN scenario.
  content_origin origin(*f.carol);
  origin.put("video-1", bytes(900, 0xab));

  content_client client_a(*f.alice);
  int done = 0;
  client_a.fetch(f.carol->addr(), "video-1", [&](const std::string&, bytes body) {
    EXPECT_EQ(body.size(), 900u);
    ++done;
  });
  f.d.run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(origin.requests_served(), 1u);
  // The response traversed alice's first-hop SN, which cached it.
  EXPECT_EQ(module_on(f, f.sn_w1)->cached_objects(), 1u);

  // A second fetch (same client) is served by the SN, not the origin.
  client_a.fetch(f.carol->addr(), "video-1", [&](const std::string&, bytes body) {
    EXPECT_EQ(body.size(), 900u);
    ++done;
  });
  f.d.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(origin.requests_served(), 1u);  // unchanged
  EXPECT_EQ(module_on(f, f.sn_w1)->cache_hits(), 1u);
}

TEST(Delivery, SecondClientBehindSameSnHitsCache) {
  two_domain_fixture f;
  content_origin origin(*f.carol);
  origin.put("obj", to_bytes("cached-content"));

  content_client first(*f.alice);
  first.fetch(f.carol->addr(), "obj", [](const std::string&, bytes) {});
  f.d.run();

  auto& second_host = f.d.add_host(f.west, f.sn_w1);
  content_client second(second_host);
  std::string got;
  second.fetch(f.carol->addr(), "obj", [&](const std::string&, bytes body) {
    got = to_string(body);
  });
  f.d.run();
  EXPECT_EQ(got, "cached-content");
  EXPECT_EQ(origin.requests_served(), 1u);  // the edge absorbed the second
}

TEST(Delivery, DistinctKeysDistinctObjects) {
  two_domain_fixture f;
  content_origin origin(*f.carol);
  origin.put("a", to_bytes("AAA"));
  origin.put("b", to_bytes("BBB"));

  content_client client(*f.alice);
  std::map<std::string, std::string> got;
  for (const std::string key : {"a", "b"}) {
    client.fetch(f.carol->addr(), key, [&got](const std::string& k, bytes body) {
      got[k] = to_string(body);
    });
    f.d.run();
  }
  EXPECT_EQ(got["a"], "AAA");
  EXPECT_EQ(got["b"], "BBB");
}

TEST(Delivery, MissingContentNoResponse) {
  two_domain_fixture f;
  content_origin origin(*f.carol);
  content_client client(*f.alice);
  int done = 0;
  client.fetch(f.carol->addr(), "nope", [&](const std::string&, bytes) { ++done; });
  f.d.run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(origin.requests_served(), 0u);
}

TEST(Delivery, CacheTtlExpiresContent) {
  two_domain_fixture f;
  content_origin origin(*f.carol);
  origin.put("news", to_bytes("edition-1"));
  // 1-second freshness everywhere (otherwise a second-level SN cache on
  // the path serves the refetch — correct CDN behavior, but not what this
  // test measures).
  for (auto sn : {f.sn_w1, f.sn_w2, f.sn_e1, f.sn_e2}) {
    f.d.sn(sn).env().set_config(ilp::svc::delivery, "cache_ttl_ms", "1000");
  }

  content_client client(*f.alice);
  int responses = 0;
  client.fetch(f.carol->addr(), "news", [&](const std::string&, bytes) { ++responses; });
  f.d.run();
  EXPECT_EQ(origin.requests_served(), 1u);

  // Within TTL: served from the edge.
  client.fetch(f.carol->addr(), "news", [&](const std::string&, bytes) { ++responses; });
  f.d.run();
  EXPECT_EQ(origin.requests_served(), 1u);

  // Past TTL: the edge refetches from the origin.
  f.d.net().run_until(f.d.net().now() + std::chrono::seconds(2));
  client.fetch(f.carol->addr(), "news", [&](const std::string&, bytes) { ++responses; });
  f.d.run();
  EXPECT_EQ(origin.requests_served(), 2u);
  EXPECT_EQ(responses, 3);
  EXPECT_GE(module_on(f, f.sn_w1)->cache_expiries(), 1u);
}

TEST(Delivery, CacheEvictionAtCapacity) {
  // Direct module test: bounded cache evicts FIFO.
  two_domain_fixture f;
  content_origin origin(*f.carol);
  content_client client(*f.alice);
  // Replace the w1 module's cap by re-deploying a small-capacity module.
  f.d.sn(f.sn_w1).env().deploy(std::make_unique<delivery_service>(2));
  for (int i = 0; i < 4; ++i) {
    origin.put("k" + std::to_string(i), to_bytes("v" + std::to_string(i)));
    client.fetch(f.carol->addr(), "k" + std::to_string(i), [](const std::string&, bytes) {});
    f.d.run();
  }
  EXPECT_LE(module_on(f, f.sn_w1)->cached_objects(), 2u);
}

}  // namespace
}  // namespace interedge::services
