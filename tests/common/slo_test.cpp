#include "common/slo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "common/metrics.h"
#include "common/timeseries.h"

namespace interedge {
namespace {

using std::chrono::seconds;

time_point at_s(std::int64_t s) { return time_point(nanoseconds(s * 1'000'000'000)); }

timeseries_store::config ts_cfg() {
  timeseries_store::config cfg;
  cfg.window = seconds(1);
  cfg.windows = 64;
  return cfg;
}

// Simulation-scale burn windows: pages confirm over 2s/4s, warns over
// 8s/16s.
slo::burn_windows fast_windows() {
  slo::burn_windows w;
  w.fast_short = seconds(2);
  w.fast_long = seconds(4);
  w.page_burn = 14.4;
  w.slow_short = seconds(8);
  w.slow_long = seconds(16);
  w.warn_burn = 3.0;
  w.clear_after = 2;
  return w;
}

slo::slo_target latency_target() {
  slo::slo_target t;
  t.name = "delivery-p99";
  t.service = "delivery";
  t.latency_series = "lat";
  t.threshold_ns = 10'000'000;  // 10ms
  t.error_budget = 0.01;
  return t;
}

TEST(Slo, IdleSeriesDoesNotBurn) {
  timeseries_store ts(ts_cfg());
  slo::slo_monitor mon(ts, fast_windows());
  mon.add_target(latency_target());
  metrics_registry reg;
  ts.tick(reg, at_s(1));
  EXPECT_EQ(mon.evaluate(at_s(1)), 0u);
  EXPECT_EQ(mon.state("delivery-p99"), slo::slo_state::ok);
  EXPECT_DOUBLE_EQ(mon.burn("delivery-p99", seconds(2)), 0.0);
}

TEST(Slo, LatencyFaultPagesThenClears) {
  timeseries_store ts(ts_cfg());
  slo::slo_monitor mon(ts, fast_windows());
  mon.add_target(latency_target());

  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  std::vector<slo::slo_alert> alerts;
  std::int64_t t = 0;

  auto step = [&](std::uint64_t sample_ns, int samples) {
    ++t;
    for (int i = 0; i < samples; ++i) h.record(sample_ns);
    ts.tick(reg, at_s(t));
    mon.evaluate(at_s(t), &alerts);
  };

  // Healthy phase: all samples comfortably under the 10ms threshold.
  for (int i = 0; i < 6; ++i) step(1'000'000, 100);
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(mon.state("delivery-p99"), slo::slo_state::ok);

  // Fault: every sample blows the threshold — burn = 1.0/0.01 = 100.
  // Page requires BOTH the 2s and 4s windows over 14.4; drive 5 bad
  // seconds so even the long window is saturated.
  for (int i = 0; i < 5 && alerts.empty(); ++i) step(100'000'000, 100);
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts.front().state, slo::slo_state::page);
  EXPECT_EQ(alerts.front().prev, slo::slo_state::ok);
  EXPECT_GE(alerts.front().burn_fast, 14.4);
  EXPECT_EQ(mon.state("delivery-p99"), slo::slo_state::page);

  // Recovery: healthy traffic long enough for the slow windows to drain,
  // plus the clear_after hysteresis.
  for (int i = 0; i < 24; ++i) step(1'000'000, 100);
  EXPECT_EQ(mon.state("delivery-p99"), slo::slo_state::ok);
  // Hysteresis forbids a page -> ok snap inside one evaluation after the
  // very first healthy tick: there must be at least the page and a later
  // downgrade, and the last transition lands at ok.
  EXPECT_GE(alerts.size(), 2u);
  EXPECT_EQ(alerts.back().state, slo::slo_state::ok);
}

TEST(Slo, RatioSloWarnsWithoutPaging) {
  timeseries_store ts(ts_cfg());
  slo::slo_monitor mon(ts, fast_windows());
  slo::slo_target t;
  t.name = "delivery-loss";
  t.service = "delivery";
  t.errors_series = "errors";
  t.total_series = "total";
  t.error_budget = 0.01;
  mon.add_target(t);

  metrics_registry reg;
  counter& errors = reg.get_counter("errors");
  counter& total = reg.get_counter("total");
  // 5% error rate: burn 5 — over warn_burn 3, under page_burn 14.4.
  for (std::int64_t s = 1; s <= 20; ++s) {
    total.add(100);
    errors.add(5);
    ts.tick(reg, at_s(s));
    mon.evaluate(at_s(s));
  }
  EXPECT_EQ(mon.state("delivery-loss"), slo::slo_state::warn);
}

TEST(Slo, ShortSpikeDoesNotPage) {
  timeseries_store ts(ts_cfg());
  slo::slo_monitor mon(ts, fast_windows());
  mon.add_target(latency_target());
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  std::int64_t t = 0;
  auto step = [&](std::uint64_t ns, int n) {
    ++t;
    for (int i = 0; i < n; ++i) h.record(ns);
    ts.tick(reg, at_s(t));
    mon.evaluate(at_s(t));
  };
  // A long healthy run, then ONE bad second: the 4s confirmation window
  // holds 3 healthy seconds (300 good, 100 bad => burn 25 > 14.4)...
  // use a milder spike: 20 bad of 100 => fast_long fraction 20/400 = 5%,
  // burn 5 < 14.4, so no page; fast_short fraction 20/200 = 10%, burn 10,
  // also under. The spike alone must not page.
  for (int i = 0; i < 8; ++i) step(1'000'000, 100);
  ++t;
  for (int i = 0; i < 80; ++i) h.record(1'000'000);
  for (int i = 0; i < 20; ++i) h.record(100'000'000);
  ts.tick(reg, at_s(t));
  mon.evaluate(at_s(t));
  EXPECT_EQ(mon.state("delivery-p99"), slo::slo_state::ok);
}

TEST(Slo, ExposeWritesStateGaugesAndTransitionCount) {
  timeseries_store ts(ts_cfg());
  slo::slo_monitor mon(ts, fast_windows());
  mon.add_target(latency_target());
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  std::int64_t t = 0;
  for (int i = 0; i < 6; ++i) {
    ++t;
    for (int j = 0; j < 100; ++j) h.record(100'000'000);
    ts.tick(reg, at_s(t));
    mon.evaluate(at_s(t));
  }
  ASSERT_EQ(mon.state("delivery-p99"), slo::slo_state::page);

  metrics_registry expo;
  mon.expose(expo);
  bool found_state = false;
  for (const metric_sample& s : expo.samples()) {
    if (s.name == "slo.state") {
      found_state = true;
      EXPECT_DOUBLE_EQ(s.value, 2.0);  // page
    }
    if (s.name == "slo.transitions") EXPECT_GE(s.value, 1.0);
  }
  EXPECT_TRUE(found_state);

  const std::string j = mon.export_json();
  EXPECT_NE(j.find("\"state\":\"page\""), std::string::npos);
  EXPECT_NE(j.find("\"prev\":\"ok\""), std::string::npos);
}

}  // namespace
}  // namespace interedge
