#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace interedge {
namespace {

flag_set parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return flag_set(static_cast<int>(args.size()), const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  auto f = parse({"--count=5", "--name=edge"});
  EXPECT_EQ(f.get_int("count", 0), 5);
  EXPECT_EQ(f.get("name", ""), "edge");
}

TEST(Flags, SpaceSyntax) {
  auto f = parse({"--count", "5"});
  EXPECT_EQ(f.get_int("count", 0), 5);
}

TEST(Flags, BareFlagIsTrue) {
  auto f = parse({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = parse({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_EQ(f.get("missing", "d"), "d");
  EXPECT_FALSE(f.get_bool("missing", false));
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
}

TEST(Flags, PositionalArguments) {
  auto f = parse({"input.txt", "--count=1", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, DoubleParsing) {
  auto f = parse({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 0.25);
}

}  // namespace
}  // namespace interedge
