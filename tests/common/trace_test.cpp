// Per-hop packet tracing (ISSUE 2): sampler determinism, span nesting
// through the thread-local current tracer, and the sampled-record ring.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace interedge::trace {
namespace {

TEST(Tracer, SamplerIsDeterministic) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.sample_shift = 2});  // 1 in 4
  std::vector<bool> hits;
  for (int i = 0; i < 12; ++i) hits.push_back(t.sample_tick());
  const std::vector<bool> expected = {true, false, false, false, true, false,
                                      false, false, true, false, false, false};
  EXPECT_EQ(hits, expected);
  EXPECT_EQ(t.packets_seen(), 12u);
}

TEST(Tracer, BatchSamplerMatchesPerPacketSampler) {
  metrics_registry reg;
  tracer batched(reg, tracer::config{.sample_shift = 3});
  tracer scalar(reg, tracer::config{.sample_shift = 3});
  // Two batches of 5 and 11 must sample exactly the packets the scalar
  // tick would, at the same sequence positions.
  std::vector<bool> from_batch, from_scalar;
  for (const std::uint64_t n : {5u, 11u}) {
    const std::uint64_t base = batched.sample_tick_batch(n);
    for (std::uint64_t i = 0; i < n; ++i) from_batch.push_back(batched.sample_hit(base + i));
    for (std::uint64_t i = 0; i < n; ++i) from_scalar.push_back(scalar.sample_tick());
  }
  EXPECT_EQ(from_batch, from_scalar);
  EXPECT_EQ(batched.packets_seen(), 16u);
}

TEST(Tracer, SampleShiftZeroSamplesEveryPacket) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.sample_shift = 0});
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(t.sample_tick());
}

TEST(Tracer, StageHistogramsAreInternedIntoRegistry) {
  metrics_registry reg;
  tracer t(reg);
  const auto families = reg.family_names();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string name = std::string("sn.stage.") + stage_name(static_cast<stage>(i));
    EXPECT_NE(std::find(families.begin(), families.end(), name), families.end())
        << "missing " << name;
  }
  t.record_stage(stage::decrypt, 1500);
  EXPECT_EQ(reg.get_histogram("sn.stage.decrypt").count(), 1u);
  EXPECT_EQ(&t.stage_hist(stage::decrypt), &reg.get_histogram("sn.stage.decrypt"));
}

TEST(Span, NoOpWithoutCurrentTracer) {
  ASSERT_EQ(current(), nullptr);
  {
    span s(stage::cache);
    EXPECT_EQ(span_depth(), 0);  // untraced spans don't touch the depth stack
  }
  EXPECT_EQ(span_depth(), 0);
}

TEST(Span, NestingTracksDepthAndRecordsEachStage) {
  metrics_registry reg;
  tracer t(reg);
  scoped_tracer install(&t);
  EXPECT_EQ(span_depth(), 0);
  {
    span outer(stage::ingress);
    EXPECT_EQ(span_depth(), 1);
    {
      span inner(stage::decrypt);
      EXPECT_EQ(span_depth(), 2);
    }
    EXPECT_EQ(span_depth(), 1);
    EXPECT_EQ(t.stage_hist(stage::decrypt).count(), 1u);  // inner closed already
    EXPECT_EQ(t.stage_hist(stage::ingress).count(), 0u);  // outer still open
  }
  EXPECT_EQ(span_depth(), 0);
  EXPECT_EQ(t.stage_hist(stage::ingress).count(), 1u);
}

TEST(Span, CaptureRecordsDepthAndVerdict) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.hop = 42});
  scoped_tracer install(&t);
  {
    span outer(stage::ingress, /*capture=*/true);
    span inner(stage::emit, /*capture=*/true);
    inner.set_verdict(kVerdictForward);
  }
  const auto records = t.recent();
  ASSERT_EQ(records.size(), 2u);
  // Most-recent-first: outer closes after inner.
  EXPECT_EQ(records[0].st, stage::ingress);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[0].verdict, kVerdictNone);
  EXPECT_EQ(records[1].st, stage::emit);
  EXPECT_EQ(records[1].depth, 1);
  EXPECT_EQ(records[1].verdict, kVerdictForward);
  EXPECT_EQ(records[0].hop, 42u);
  EXPECT_EQ(t.sampled(), 2u);
}

TEST(Tracer, RingWrapKeepsMostRecentRecords) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.ring_capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.capture(stage::cache, /*start_ns=*/i, /*duration_ns=*/i * 10);
  }
  const auto all = t.recent();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].seq, 9u);
  EXPECT_EQ(all[3].seq, 6u);
  EXPECT_EQ(all[0].duration_ns, 90u);
  const auto limited = t.recent(2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].seq, 8u);
  EXPECT_EQ(t.sampled(), 10u);
}

TEST(Tracer, DumpIsHumanReadable) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.hop = 7});
  t.capture(stage::slowpath, 100, 2500, kVerdictDrop);
  const std::string out = t.dump();
  EXPECT_NE(out.find("hop=7"), std::string::npos);
  EXPECT_NE(out.find("stage=slowpath"), std::string::npos);
  EXPECT_NE(out.find("dur=2500ns"), std::string::npos);
  EXPECT_NE(out.find("verdict=X"), std::string::npos);
}

TEST(ScopedTracer, RestoresPreviousTracer) {
  metrics_registry reg;
  tracer a(reg), b(reg);
  EXPECT_EQ(current(), nullptr);
  {
    scoped_tracer sa(&a);
    EXPECT_EQ(current(), &a);
    {
      scoped_tracer sb(&b);
      EXPECT_EQ(current(), &b);
    }
    EXPECT_EQ(current(), &a);
  }
  EXPECT_EQ(current(), nullptr);
}

}  // namespace
}  // namespace interedge::trace
