// Per-hop packet tracing (ISSUE 2): sampler determinism, span nesting
// through the thread-local current tracer, and the sampled-record ring.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace interedge::trace {
namespace {

TEST(Tracer, SamplerIsDeterministic) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.sample_shift = 2});  // 1 in 4
  std::vector<bool> hits;
  for (int i = 0; i < 12; ++i) hits.push_back(t.sample_tick());
  const std::vector<bool> expected = {true, false, false, false, true, false,
                                      false, false, true, false, false, false};
  EXPECT_EQ(hits, expected);
  EXPECT_EQ(t.packets_seen(), 12u);
}

TEST(Tracer, BatchSamplerMatchesPerPacketSampler) {
  metrics_registry reg;
  tracer batched(reg, tracer::config{.sample_shift = 3});
  tracer scalar(reg, tracer::config{.sample_shift = 3});
  // Two batches of 5 and 11 must sample exactly the packets the scalar
  // tick would, at the same sequence positions.
  std::vector<bool> from_batch, from_scalar;
  for (const std::uint64_t n : {5u, 11u}) {
    const std::uint64_t base = batched.sample_tick_batch(n);
    for (std::uint64_t i = 0; i < n; ++i) from_batch.push_back(batched.sample_hit(base + i));
    for (std::uint64_t i = 0; i < n; ++i) from_scalar.push_back(scalar.sample_tick());
  }
  EXPECT_EQ(from_batch, from_scalar);
  EXPECT_EQ(batched.packets_seen(), 16u);
}

TEST(Tracer, SampleShiftZeroSamplesEveryPacket) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.sample_shift = 0});
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(t.sample_tick());
}

TEST(Tracer, StageHistogramsAreInternedIntoRegistry) {
  metrics_registry reg;
  tracer t(reg);
  const auto families = reg.family_names();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string name = std::string("sn.stage.") + stage_name(static_cast<stage>(i));
    EXPECT_NE(std::find(families.begin(), families.end(), name), families.end())
        << "missing " << name;
  }
  t.record_stage(stage::decrypt, 1500);
  EXPECT_EQ(reg.get_histogram("sn.stage.decrypt").count(), 1u);
  EXPECT_EQ(&t.stage_hist(stage::decrypt), &reg.get_histogram("sn.stage.decrypt"));
}

TEST(Span, NoOpWithoutCurrentTracer) {
  ASSERT_EQ(current(), nullptr);
  {
    span s(stage::cache);
    EXPECT_EQ(span_depth(), 0);  // untraced spans don't touch the depth stack
  }
  EXPECT_EQ(span_depth(), 0);
}

TEST(Span, NestingTracksDepthAndRecordsEachStage) {
  metrics_registry reg;
  tracer t(reg);
  scoped_tracer install(&t);
  EXPECT_EQ(span_depth(), 0);
  {
    span outer(stage::ingress);
    EXPECT_EQ(span_depth(), 1);
    {
      span inner(stage::decrypt);
      EXPECT_EQ(span_depth(), 2);
    }
    EXPECT_EQ(span_depth(), 1);
    EXPECT_EQ(t.stage_hist(stage::decrypt).count(), 1u);  // inner closed already
    EXPECT_EQ(t.stage_hist(stage::ingress).count(), 0u);  // outer still open
  }
  EXPECT_EQ(span_depth(), 0);
  EXPECT_EQ(t.stage_hist(stage::ingress).count(), 1u);
}

TEST(Span, CaptureRecordsDepthAndVerdict) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.hop = 42});
  scoped_tracer install(&t);
  {
    span outer(stage::ingress, /*capture=*/true);
    span inner(stage::emit, /*capture=*/true);
    inner.set_verdict(kVerdictForward);
  }
  const auto records = t.recent();
  ASSERT_EQ(records.size(), 2u);
  // Most-recent-first: outer closes after inner.
  EXPECT_EQ(records[0].st, stage::ingress);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[0].verdict, kVerdictNone);
  EXPECT_EQ(records[1].st, stage::emit);
  EXPECT_EQ(records[1].depth, 1);
  EXPECT_EQ(records[1].verdict, kVerdictForward);
  EXPECT_EQ(records[0].hop, 42u);
  EXPECT_EQ(t.sampled(), 2u);
}

TEST(Tracer, RingWrapKeepsMostRecentRecords) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.ring_capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.capture(stage::cache, /*start_ns=*/i, /*duration_ns=*/i * 10);
  }
  const auto all = t.recent();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].seq, 9u);
  EXPECT_EQ(all[3].seq, 6u);
  EXPECT_EQ(all[0].duration_ns, 90u);
  const auto limited = t.recent(2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].seq, 8u);
  EXPECT_EQ(t.sampled(), 10u);
}

TEST(Tracer, DumpIsHumanReadable) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.hop = 7});
  t.capture(stage::slowpath, 100, 2500, kVerdictDrop);
  const std::string out = t.dump();
  EXPECT_NE(out.find("hop=7"), std::string::npos);
  EXPECT_NE(out.find("stage=slowpath"), std::string::npos);
  EXPECT_NE(out.find("dur=2500ns"), std::string::npos);
  EXPECT_NE(out.find("verdict=X"), std::string::npos);
}

TEST(Tracer, WrapBetweenExportsCountsDroppedRecords) {
  metrics_registry reg;
  tracer t(reg, tracer::config{.ring_capacity = 4});
  for (std::uint64_t i = 0; i < 4; ++i) t.capture(stage::cache, i, 10);
  t.recent();
  EXPECT_EQ(t.dropped_records(), 0u);
  // 10 captures since the last export against 4 slots: 6 records wrapped
  // out unread, and the export must say so instead of truncating silently.
  for (std::uint64_t i = 0; i < 10; ++i) t.capture(stage::cache, i, 10);
  t.recent();
  EXPECT_EQ(t.dropped_records(), 6u);
  // An in-capacity burst accrues nothing further (cumulative counter).
  t.capture(stage::cache, 0, 10);
  t.recent();
  EXPECT_EQ(t.dropped_records(), 6u);
}

// ---- cross-hop trace context (ISSUE 5) --------------------------------

TEST(TraceContext, EncodeDecodeRoundTrip) {
  trace_context ctx;
  ctx.trace_id = 0xabcdef0123456789ull;
  ctx.parent_span = 0x1122334455667788ull;
  ctx.hop_count = 3;
  ctx.flags = kTraceCtxSampled;
  const bytes wire = ctx.encode();
  ASSERT_EQ(wire.size(), kTraceCtxSize);
  EXPECT_EQ(wire[0], kTraceCtxVersion);
  const auto back = trace_context::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ctx);
  EXPECT_TRUE(back->sampled());
}

TEST(TraceContext, ShortBufferAndUnknownVersionRejected) {
  trace_context ctx;
  ctx.trace_id = 7;
  bytes wire = ctx.encode();
  // Short input: a truncated TLV must read as "untraced", not garbage.
  EXPECT_FALSE(trace_context::decode(const_byte_span(wire.data(), wire.size() - 1)).has_value());
  // Unknown version: an un-upgraded peer's view of a future layout.
  wire[0] = kTraceCtxVersion + 1;
  EXPECT_FALSE(trace_context::decode(wire).has_value());
}

TEST(TraceContext, TrailingBytesTolerated) {
  trace_context ctx;
  ctx.trace_id = 42;
  ctx.hop_count = 2;
  bytes wire = ctx.encode();
  wire.push_back(0xaa);  // future minor revision appends a field
  const auto back = trace_context::decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace_id, 42u);
  EXPECT_EQ(back->hop_count, 2);
}

// ---- path_recorder ----------------------------------------------------

TEST(PathRecorder, OriginSamplerIsDeterministic) {
  path_recorder rec({.node = 1, .sample_shift = 2});
  std::vector<bool> hits;
  for (int i = 0; i < 8; ++i) hits.push_back(rec.sample_tick());
  const std::vector<bool> expected = {true, false, false, false, true, false, false, false};
  EXPECT_EQ(hits, expected);

  path_recorder every({.node = 1, .sample_shift = 0});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(every.sample_tick());
}

TEST(PathRecorder, IdsAreDeterministicPerNodeAndDistinctAcrossNodes) {
  path_recorder a1({.node = 5}), a2({.node = 5}), b({.node = 6});
  // Same node, same call sequence: identical ids (simnet replay).
  EXPECT_EQ(a1.new_trace_id(), a2.new_trace_id());
  EXPECT_EQ(a1.next_span_id(), a2.next_span_id());
  // Different nodes never collide at the same sequence position.
  path_recorder c({.node = 5});
  EXPECT_NE(c.new_trace_id(), b.new_trace_id());
  EXPECT_NE(c.next_span_id(), b.next_span_id());
  // Ids are never 0 (0 means "node event" / "no parent").
  EXPECT_NE(a1.new_trace_id(), 0u);
  EXPECT_NE(a1.next_span_id(), 0u);
}

TEST(PathRecorder, EmitDrainPreservesOrderAndCountsFullRingDrops) {
  path_recorder rec({.node = 3, .capacity = 4});
  for (std::uint64_t i = 1; i <= 20; ++i) {
    path_span s;
    s.trace_id = 9;
    s.span_id = i;
    rec.emit(s);
  }
  EXPECT_EQ(rec.emitted() + rec.dropped(), 20u);
  EXPECT_GT(rec.dropped(), 0u);  // tracing never blocks: full ring = drop
  std::vector<path_span> out;
  while (rec.drain(out) > 0) {
  }
  ASSERT_EQ(out.size(), rec.emitted());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].span_id, i + 1);  // FIFO
  }
}

TEST(PathRecorder, InjectedClockDrivesTimestamps) {
  manual_clock clk;
  clk.advance(std::chrono::nanoseconds(12345));
  path_recorder rec({.node = 2, .clk = &clk});
  EXPECT_EQ(rec.now(), 12345u);
  clk.advance(std::chrono::nanoseconds(55));
  EXPECT_EQ(rec.now(), 12400u);
}

TEST(ScopedTracer, RestoresPreviousTracer) {
  metrics_registry reg;
  tracer a(reg), b(reg);
  EXPECT_EQ(current(), nullptr);
  {
    scoped_tracer sa(&a);
    EXPECT_EQ(current(), &a);
    {
      scoped_tracer sb(&b);
      EXPECT_EQ(current(), &b);
    }
    EXPECT_EQ(current(), &a);
  }
  EXPECT_EQ(current(), nullptr);
}

}  // namespace
}  // namespace interedge::trace
