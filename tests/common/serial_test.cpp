#include "common/serial.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace interedge {
namespace {

TEST(Serial, FixedWidthRoundTrip) {
  writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);

  reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.done());
}

TEST(Serial, LittleEndianLayout) {
  writer w;
  w.u32(0x04030201);
  const bytes& b = w.data();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  EXPECT_EQ(b[2], 3);
  EXPECT_EQ(b[3], 4);
}

TEST(Serial, VarintBoundaries) {
  const std::uint64_t values[] = {0,    1,          127,        128,
                                  300,  16383,      16384,      (1ull << 32) - 1,
                                  1ull << 32, 0xffffffffffffffffull};
  for (std::uint64_t v : values) {
    writer w;
    w.varint(v);
    reader r(w.data());
    EXPECT_EQ(r.varint(), v) << "value " << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Serial, VarintEncodingLength) {
  writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Serial, BlobAndString) {
  writer w;
  w.blob(to_bytes("hello"));
  w.str("world");
  reader r(w.data());
  EXPECT_EQ(to_string(r.blob()), "hello");
  EXPECT_EQ(r.str(), "world");
  EXPECT_TRUE(r.done());
}

TEST(Serial, EmptyBlob) {
  writer w;
  w.blob({});
  reader r(w.data());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serial, TruncatedReadThrows) {
  writer w;
  w.u16(7);
  reader r(w.data());
  EXPECT_THROW(r.u32(), serial_error);
}

TEST(Serial, BlobLengthBeyondInputThrows) {
  writer w;
  w.varint(1000);
  w.raw(to_bytes("short"));
  reader r(w.data());
  EXPECT_THROW(r.blob(), serial_error);
}

TEST(Serial, VarintOverflowThrows) {
  bytes evil(11, 0xff);  // more continuation bytes than a u64 can hold
  reader r(evil);
  EXPECT_THROW(r.varint(), serial_error);
}

TEST(Serial, ReaderPositionTracksConsumption) {
  writer w;
  w.u32(1);
  w.u32(2);
  reader r(w.data());
  EXPECT_EQ(r.position(), 0u);
  r.u32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
}

// Property: arbitrary sequences of writes read back identically.
TEST(Serial, RandomizedRoundTrip) {
  rng random(42);
  for (int iteration = 0; iteration < 200; ++iteration) {
    writer w;
    std::vector<std::uint64_t> expected;
    const int n = static_cast<int>(random.below(20)) + 1;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = random.next();
      expected.push_back(v);
      w.varint(v);
    }
    reader r(w.data());
    for (std::uint64_t v : expected) EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Bytes, HexRoundTrip) {
  const bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
}

TEST(Bytes, FromHexOddLengthIsEmpty) { EXPECT_TRUE(from_hex("abc").empty()); }

TEST(Bytes, ConstantTimeEqual) {
  const bytes a = to_bytes("secret");
  const bytes b = to_bytes("secret");
  const bytes c = to_bytes("secreT");
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, to_bytes("secre")));
}

}  // namespace
}  // namespace interedge
