#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace interedge {
namespace {

fr_event ev(std::uint64_t t, std::uint64_t x) {
  fr_event e;
  e.time_ns = t;
  e.kind = fr_kind::span;
  e.code = 7;
  e.a = x;
  e.b = x;
  e.c = x;
  return e;
}

TEST(FlightRecorder, RecordRoundTripsInTicketOrder) {
  flight_recorder fr(flight_recorder::config{.capacity = 8});
  for (std::uint64_t i = 0; i < 5; ++i) fr.record(ev(100 + i, i));
  const std::vector<fr_event> got = fr.snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(got[i].time_ns, 100 + i);
    EXPECT_EQ(got[i].kind, fr_kind::span);
    EXPECT_EQ(got[i].code, 7u);
    EXPECT_EQ(got[i].a, i);
    EXPECT_EQ(got[i].c, i);
  }
  EXPECT_EQ(fr.recorded(), 5u);
  EXPECT_EQ(fr.dropped_frozen(), 0u);
}

TEST(FlightRecorder, WrapKeepsTheLatestTail) {
  flight_recorder fr(flight_recorder::config{.capacity = 4});
  for (std::uint64_t i = 0; i < 10; ++i) fr.record(ev(i, i));
  const std::vector<fr_event> got = fr.snapshot();
  ASSERT_EQ(got.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].a, 6 + i);
}

TEST(FlightRecorder, ArmedTriggerFreezesOnceAndFiresHook) {
  flight_recorder fr(flight_recorder::config{.capacity = 16, .trigger_mask = kTrigShed});
  int hook_fires = 0;
  std::uint32_t hook_trig = 0;
  fr.set_freeze_hook([&](std::uint32_t trig) {
    ++hook_fires;
    hook_trig = trig;
  });
  fr.record(ev(1, 1));
  fr.trigger(kTrigShed, 2, 42);
  EXPECT_TRUE(fr.frozen());
  EXPECT_EQ(fr.frozen_by(), kTrigShed);
  EXPECT_EQ(hook_fires, 1);
  EXPECT_EQ(hook_trig, kTrigShed);

  // Frozen: further records and re-triggers are dropped, the tail stays.
  fr.record(ev(3, 3));
  fr.trigger(kTrigShed, 4);
  EXPECT_EQ(hook_fires, 1);
  EXPECT_GE(fr.dropped_frozen(), 2u);
  const std::vector<fr_event> got = fr.snapshot();
  ASSERT_EQ(got.size(), 2u);  // the span + the triggering event
  EXPECT_EQ(got[1].kind, fr_kind::trigger);
  EXPECT_EQ(got[1].code, kTrigShed);
  EXPECT_EQ(got[1].a, 42u);
}

TEST(FlightRecorder, UnarmedTriggerRecordsWithoutFreezing) {
  flight_recorder fr(flight_recorder::config{.capacity = 16, .trigger_mask = kTrigSloPage});
  fr.trigger(kTrigPeerDown, 1);
  EXPECT_FALSE(fr.frozen());
  const std::vector<fr_event> got = fr.snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].kind, fr_kind::trigger);
  EXPECT_EQ(got[0].code, kTrigPeerDown);
}

TEST(FlightRecorder, RearmResumesRecording) {
  flight_recorder fr(flight_recorder::config{.capacity = 16});
  fr.trigger(kTrigManual, 1);
  ASSERT_TRUE(fr.frozen());
  fr.rearm();
  EXPECT_FALSE(fr.frozen());
  EXPECT_EQ(fr.frozen_by(), 0u);
  fr.record(ev(2, 2));
  EXPECT_EQ(fr.snapshot().size(), 2u);
}

TEST(FlightRecorder, DumpJsonCarriesHeaderAndTriggerNames) {
  flight_recorder fr(flight_recorder::config{.capacity = 16});
  fr.record(ev(1, 1));
  fr.trigger(kTrigSloPage, 2);
  const std::string j = fr.dump_json();
  EXPECT_NE(j.find("\"frozen\":true"), std::string::npos);
  EXPECT_NE(j.find("\"trigger\":\"slo_page\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"trigger\""), std::string::npos);
}

TEST(FlightRecorder, TriggerNamesJoinMaskBits) {
  EXPECT_EQ(fr_trigger_names(kTrigPeerDown | kTrigWatchdog), "peer_down|watchdog");
  EXPECT_EQ(fr_trigger_names(0), "");
}

// TSan target: multi-producer records racing a snapshotting reader and a
// mid-run freeze. Every event writes a == b == c, so any torn slot the
// seqlock validation failed to reject would surface as a mismatched
// triple.
TEST(FlightRecorder, ConcurrentRecordersStayConsistent) {
  flight_recorder fr(flight_recorder::config{.capacity = 64, .trigger_mask = kTrigManual});
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t x = static_cast<std::uint64_t>(w) * kPerThread + i;
        fr.record(ev(x, x));
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const fr_event& e : fr.snapshot()) {
        ASSERT_EQ(e.a, e.b);
        ASSERT_EQ(e.a, e.c);
      }
    }
  });
  go.store(true, std::memory_order_release);
  writers[0].join();
  // Freeze while the other writers are (possibly) still recording.
  fr.trigger(kTrigManual, 999);
  for (int w = 1; w < kThreads; ++w) writers[w].join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(fr.frozen());
  for (const fr_event& e : fr.snapshot()) {
    if (e.kind == fr_kind::trigger) continue;
    EXPECT_EQ(e.a, e.b);
    EXPECT_EQ(e.a, e.c);
  }
  EXPECT_EQ(fr.recorded() + fr.dropped_frozen(),
            static_cast<std::uint64_t>(kThreads) * kPerThread + 1);
}

}  // namespace
}  // namespace interedge
