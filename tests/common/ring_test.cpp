#include "common/ring.h"

#include <gtest/gtest.h>

#include <thread>

namespace interedge {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  spsc_ring<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FullRingRejectsPush) {
  spsc_ring<int> ring(2);  // rounds up; usable capacity >= 2
  std::size_t pushed = 0;
  while (ring.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, ring.capacity());
  EXPECT_FALSE(ring.try_push(999));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(999));
}

TEST(SpscRing, FifoOrderPreserved) {
  spsc_ring<int> ring(128);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(ring.try_push(i));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ring.try_pop().value(), i);
}

TEST(SpscRing, MoveOnlyTypes) {
  spsc_ring<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto popped = ring.try_pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 7);
}

// Property: cross-thread, every pushed element arrives exactly once, in order.
TEST(SpscRing, ProducerConsumerStress) {
  spsc_ring<std::uint64_t> ring(1024);
  constexpr std::uint64_t kCount = 1000000;

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  while (expected < kCount) {
    auto v = ring.try_pop();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace interedge
