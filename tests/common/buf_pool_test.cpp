// Slab-pool lifecycle (ISSUE 6 satellite): refcounts across rings and
// threads, exhaustion as a counted drop, headroom/trim window arithmetic,
// and the cache's batched refill/spill against the global free list. The
// concurrent cases are the tsan targets wired into tools/ci_sanitizers.sh
// (ctest -R buf_pool_test).
#include "common/buf_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/ring.h"

namespace interedge::buf {
namespace {

pool_config tiny_pool(std::size_t slabs, std::size_t slab_size = 256,
                      std::size_t cache_batch = 4) {
  pool_config cfg;
  cfg.slab_size = slab_size;
  cfg.slab_count = slabs;
  cfg.cache_batch = cache_batch;
  return cfg;
}

TEST(BufPool, AllocExhaustRecycle) {
  buf_pool pool(tiny_pool(4));
  std::vector<slab_ref> held;
  for (int i = 0; i < 4; ++i) {
    slab_ref r = pool.try_alloc();
    ASSERT_TRUE(static_cast<bool>(r));
    held.push_back(std::move(r));
  }
  // Dry pool: null ref, counted, no UB.
  slab_ref dry = pool.try_alloc();
  EXPECT_FALSE(static_cast<bool>(dry));
  auto s = pool.stats();
  EXPECT_EQ(s.exhausted, 1u);
  EXPECT_EQ(s.outstanding, 4u);

  // Dropping one reference makes exactly one slab allocatable again.
  held.pop_back();
  slab_ref again = pool.try_alloc();
  EXPECT_TRUE(static_cast<bool>(again));
  EXPECT_FALSE(static_cast<bool>(pool.try_alloc()));
  EXPECT_EQ(pool.stats().exhausted, 2u);

  held.clear();
  again.reset();
  s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.allocs, s.frees);
}

TEST(BufPool, SlabSizeRoundsUpToCacheLine) {
  buf_pool pool(tiny_pool(2, /*slab_size=*/100));
  EXPECT_EQ(pool.slab_size() % 64, 0u);
  EXPECT_GE(pool.slab_size(), 100u);
  // The arena itself starts cache-line aligned.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pool.arena_base()) % 64, 0u);
}

TEST(BufPool, RefcountCloneKeepsSlabAlive) {
  buf_pool pool(tiny_pool(1));
  slab_ref a = pool.try_alloc();
  ASSERT_TRUE(static_cast<bool>(a));
  a.data()[0] = 0x7e;

  slab_ref b = a.clone();
  EXPECT_EQ(a.refcount(), 2u);
  EXPECT_EQ(b.data(), a.data());

  a.reset();
  // b still pins the slab: the pool stays dry and the byte survives.
  EXPECT_FALSE(static_cast<bool>(pool.try_alloc()));
  EXPECT_EQ(b.data()[0], 0x7e);
  EXPECT_EQ(b.refcount(), 1u);

  b.reset();
  EXPECT_TRUE(static_cast<bool>(pool.try_alloc()));
}

TEST(BufPool, HeadroomTrimInvariants) {
  buf_pool pool(tiny_pool(1, /*slab_size=*/256));
  const std::size_t slab = pool.slab_size();
  slab_ref r = pool.try_alloc();
  std::memset(r.data(), 0xab, slab);

  pkt_view v(std::move(r), /*offset=*/32, /*length=*/100);
  EXPECT_EQ(v.headroom(), 32u);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.tailroom(), slab - 32 - 100);
  EXPECT_EQ(v.data(), pool.arena_base() + 32);

  v.trim_front(10);
  EXPECT_EQ(v.headroom(), 42u);
  EXPECT_EQ(v.size(), 90u);
  v.truncate(50);
  EXPECT_EQ(v.size(), 50u);
  EXPECT_EQ(v.tailroom(), slab - 42 - 50);
  // truncate never grows, trim_front clamps at empty.
  v.truncate(5000);
  EXPECT_EQ(v.size(), 50u);
  v.trim_front(5000);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(static_cast<bool>(v));  // still holds the slab

  // A default view holds nothing; subview clones the slab reference over a
  // narrowed window.
  EXPECT_FALSE(static_cast<bool>(pkt_view()));
  pkt_view sub = v.subview(0, 0);
  EXPECT_EQ(v.slab().refcount(), 2u);
  sub.reset();
  v.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufPool, ViewCloneSharesBytes) {
  buf_pool pool(tiny_pool(1));
  slab_ref r = pool.try_alloc();
  pkt_view v(std::move(r), 0, 16);
  v.mutable_span()[3] = std::uint8_t{0x42};

  pkt_view c = v.clone();
  EXPECT_EQ(c.span()[3], std::uint8_t{0x42});
  // Same slab, same window — writes through one are visible in the other.
  v.mutable_span()[3] = std::uint8_t{0x43};
  EXPECT_EQ(c.span()[3], std::uint8_t{0x43});
  v.reset();
  EXPECT_EQ(c.span()[3], std::uint8_t{0x43});
}

TEST(BufPool, CacheBatchedRefillSpill) {
  buf_pool pool(tiny_pool(16, 256, /*cache_batch=*/4));
  {
    buf_pool::cache cache(pool);
    // First alloc pulls a whole batch from the pool; the next three are
    // mutex-free local pops.
    slab_ref a = cache.try_alloc();
    ASSERT_TRUE(static_cast<bool>(a));
    EXPECT_EQ(pool.stats().refills, 1u);
    EXPECT_EQ(cache.cached(), 3u);
    slab_ref b = cache.try_alloc();
    slab_ref c = cache.try_alloc();
    slab_ref d = cache.try_alloc();
    EXPECT_EQ(pool.stats().refills, 1u);
    EXPECT_EQ(cache.cached(), 0u);
    slab_ref e = cache.try_alloc();
    EXPECT_TRUE(static_cast<bool>(e));
    EXPECT_EQ(pool.stats().refills, 2u);
  }
  // Cache destruction spills its unused slabs back; nothing leaks.
  auto s = pool.stats();
  EXPECT_GE(s.spills, 1u);
  EXPECT_EQ(s.outstanding, 0u);

  // A fresh cache can still see the pool run dry underneath it.
  std::vector<slab_ref> all;
  buf_pool::cache cache(pool);
  for (;;) {
    slab_ref r = cache.try_alloc();
    if (!r) break;
    all.push_back(std::move(r));
  }
  EXPECT_EQ(all.size(), 16u);
  EXPECT_GE(pool.stats().exhausted, 1u);
}

// The datapath handoff in miniature: an ingress thread fills views and
// pushes them over the shard SPSC ring; a worker pops, reads, and drops
// them. Slabs recycle from the consumer side — the refcount is the only
// shared state — and the pool never grows.
TEST(BufPool, CrossThreadRingHandoff) {
  constexpr std::size_t kSlabs = 8;
  constexpr std::uint64_t kPackets = 6000;
  buf_pool pool(tiny_pool(kSlabs, 256, 4));
  spsc_ring<pkt_view> ring(kSlabs);

  std::uint64_t consumed = 0;
  std::uint64_t checksum_rx = 0;
  std::thread consumer([&] {
    while (consumed < kPackets) {
      auto v = ring.try_pop();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      checksum_rx += (*v).span()[0];
      ++consumed;
      // *v drops here: the slab returns to the pool from this thread.
    }
  });

  std::uint64_t checksum_tx = 0;
  {
    buf_pool::cache cache(pool);
    for (std::uint64_t i = 0; i < kPackets;) {
      slab_ref r = cache.try_alloc();
      if (!r) continue;  // all slabs in flight; wait for the consumer
      r.data()[0] = static_cast<std::uint8_t>(i & 0xff);
      pkt_view v(std::move(r), 0, 1);
      checksum_tx += v.span()[0];
      while (!ring.try_push(std::move(v))) std::this_thread::yield();
      ++i;
    }
  }
  consumer.join();

  EXPECT_EQ(consumed, kPackets);
  EXPECT_EQ(checksum_rx, checksum_tx);
  auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.allocs, s.frees);
}

// Several threads, each with its own cache over one shared pool,
// allocating/cloning/freeing concurrently — the asan/tsan stress target.
TEST(BufPool, ConcurrentAllocFree) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  buf_pool pool(tiny_pool(32, 256, 4));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      buf_pool::cache cache(pool);
      std::vector<pkt_view> held;
      for (int i = 0; i < kIters; ++i) {
        slab_ref r = cache.try_alloc();
        if (!r) {
          held.clear();  // shed under exhaustion, like the rx path
          continue;
        }
        r.data()[0] = static_cast<std::uint8_t>(t);
        pkt_view v(std::move(r), 0, 8);
        if (i % 3 == 0) held.push_back(v.clone());
        if (held.size() > 4) held.erase(held.begin());
        // v drops each iteration; clones outlive it by a few rounds.
      }
    });
  }
  for (auto& th : threads) th.join();

  auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.allocs, s.frees);
}

}  // namespace
}  // namespace interedge::buf
