#include "common/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>

#include "common/metrics.h"

namespace interedge {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;

time_point at_ms(std::int64_t ms) { return time_point(nanoseconds(ms * 1'000'000)); }

timeseries_store::config small_cfg() {
  timeseries_store::config cfg;
  cfg.window = seconds(1);
  cfg.windows = 8;
  return cfg;
}

TEST(Timeseries, FirstSightingContributesNoDelta) {
  metrics_registry reg;
  reg.get_counter("a").add(1000);
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));
  // The cumulative baseline predates the store's history — it must not
  // appear as a burst in the first window.
  EXPECT_EQ(ts.delta("a", seconds(8)), 0u);
  EXPECT_EQ(ts.ticks(), 1u);
  EXPECT_EQ(ts.counter_series(), 1u);
}

TEST(Timeseries, CounterDeltaAndRate) {
  metrics_registry reg;
  counter& c = reg.get_counter("a");
  timeseries_store ts(small_cfg());
  c.add(10);
  ts.tick(reg, at_ms(1000));
  c.add(20);
  ts.tick(reg, at_ms(2000));
  EXPECT_EQ(ts.delta("a", seconds(1)), 20u);
  EXPECT_EQ(ts.delta("a", seconds(8)), 20u);  // baseline window holds 0
  EXPECT_DOUBLE_EQ(ts.rate_per_sec("a", seconds(1)), 20.0);
}

TEST(Timeseries, TicksInsideOneWindowAccumulate) {
  metrics_registry reg;
  counter& c = reg.get_counter("a");
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));
  c.add(5);
  ts.tick(reg, at_ms(2100));
  c.add(7);
  ts.tick(reg, at_ms(2600));  // same 1s window as the previous tick
  EXPECT_EQ(ts.delta("a", seconds(1)), 12u);
}

TEST(Timeseries, CounterResetClampsToFreshValue) {
  metrics_registry reg;
  counter& c = reg.get_counter("a");
  timeseries_store ts(small_cfg());
  c.add(100);
  ts.tick(reg, at_ms(1000));
  // Node restart: cumulative value collapses below the previous sample.
  c.reset();
  c.add(5);
  ts.tick(reg, at_ms(2000));
  EXPECT_EQ(ts.delta("a", seconds(1)), 5u);
  EXPECT_EQ(ts.counter_resets(), 1u);
  // Never a negative rate.
  EXPECT_GE(ts.rate_per_sec("a", seconds(8)), 0.0);
}

TEST(Timeseries, OldWindowsAgeOutOfSpanQueries) {
  metrics_registry reg;
  counter& c = reg.get_counter("a");
  timeseries_store::config cfg = small_cfg();
  cfg.windows = 4;
  timeseries_store ts(cfg);
  ts.tick(reg, at_ms(1000));
  for (int s = 2; s <= 7; ++s) {
    c.add(10);
    ts.tick(reg, at_ms(s * 1000));
  }
  // Ring depth 4: only the last 4 windows (ticks at 4..7s) survive.
  EXPECT_EQ(ts.delta("a", seconds(4)), 40u);
  EXPECT_EQ(ts.delta("a", seconds(1)), 10u);
}

TEST(Timeseries, SeriesCapDropsExcess) {
  metrics_registry reg;
  reg.get_counter("a").add(1);
  reg.get_counter("b").add(1);
  timeseries_store::config cfg = small_cfg();
  cfg.max_counter_series = 1;
  timeseries_store ts(cfg);
  ts.tick(reg, at_ms(1000));
  EXPECT_EQ(ts.counter_series(), 1u);
  EXPECT_GE(ts.series_dropped(), 1u);
}

TEST(Timeseries, PrefixFilterTracksOnlyMatches) {
  metrics_registry reg;
  reg.get_counter("sn.rx.pkts").add(3);
  reg.get_counter("net.udp.tx").add(3);
  timeseries_store::config cfg = small_cfg();
  cfg.prefixes = {"sn."};
  timeseries_store ts(cfg);
  ts.tick(reg, at_ms(1000));
  reg.get_counter("sn.rx.pkts").add(4);
  reg.get_counter("net.udp.tx").add(4);
  ts.tick(reg, at_ms(2000));
  EXPECT_EQ(ts.delta("sn.rx.pkts", seconds(1)), 4u);
  EXPECT_EQ(ts.delta("net.udp.tx", seconds(1)), 0u);
  EXPECT_EQ(ts.counter_series(), 1u);
}

TEST(Timeseries, HistogramWindowQuantileAndFractionAbove) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));  // baseline
  for (int i = 0; i < 90; ++i) h.record(1'000'000);    // 1ms
  for (int i = 0; i < 10; ++i) h.record(100'000'000);  // 100ms
  ts.tick(reg, at_ms(2000));
  EXPECT_EQ(ts.hist_count("lat", seconds(1)), 100u);
  // p50 lands in the 1ms bucket (midpoint resolution).
  const std::uint64_t p50 = ts.hist_quantile("lat", seconds(1), 0.5);
  EXPECT_GT(p50, 600'000u);
  EXPECT_LT(p50, 1'600'000u);
  // p99 lands in the 100ms tail.
  EXPECT_GT(ts.hist_quantile("lat", seconds(1), 0.99), 50'000'000u);
  EXPECT_DOUBLE_EQ(ts.hist_fraction_above("lat", seconds(1), 10'000'000), 0.1);
  EXPECT_DOUBLE_EQ(ts.hist_fraction_above("lat", seconds(1), 200'000'000), 0.0);
}

TEST(Timeseries, HistogramBaselineExcludesPreexistingSamples) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  for (int i = 0; i < 50; ++i) h.record(1'000'000);
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));
  EXPECT_EQ(ts.hist_count("lat", seconds(8)), 0u);
}

TEST(Timeseries, HistogramResetRebaselines) {
  metrics_registry reg;
  histogram& h = reg.get_histogram("lat");
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));
  for (int i = 0; i < 20; ++i) h.record(1'000'000);
  ts.tick(reg, at_ms(2000));
  h.reset();  // restart behind the snapshot
  for (int i = 0; i < 5; ++i) h.record(2'000'000);
  ts.tick(reg, at_ms(3000));
  EXPECT_EQ(ts.hist_count("lat", seconds(1)), 5u);
  EXPECT_GE(ts.counter_resets(), 1u);
}

TEST(Timeseries, ExportJsonSummarizes) {
  metrics_registry reg;
  reg.get_counter("a").add(1);
  timeseries_store ts(small_cfg());
  ts.tick(reg, at_ms(1000));
  const std::string j = ts.export_json();
  EXPECT_NE(j.find("\"ticks\":1"), std::string::npos);
  EXPECT_NE(j.find("\"counter_series\":1"), std::string::npos);
}

}  // namespace
}  // namespace interedge
