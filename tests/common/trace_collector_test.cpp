// Path-trace reassembly (ISSUE 5): hop grouping and wire-gap attribution,
// idempotent intake under duplication, bounded-table eviction, event
// correlation, and — for the sanitizer CI — concurrent ingest vs assembly.
#include "common/trace_collector.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace interedge::trace {
namespace {

path_span make_span(std::uint64_t trace_id, std::uint64_t span_id, std::uint64_t node,
                    std::uint8_t hop, span_kind kind, std::uint64_t start_ns,
                    std::uint64_t duration_ns, std::uint16_t annotations = 0) {
  path_span s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.node = node;
  s.hop_count = hop;
  s.kind = kind;
  s.start_ns = start_ns;
  s.duration_ns = duration_ns;
  s.annotations = annotations;
  s.service = 1;
  s.connection = 77;
  return s;
}

// host(10) -> SN(2) -> SN(3) -> host(11), spans arriving out of order the
// way independent per-node drains deliver them.
std::vector<path_span> three_hop_trace(std::uint64_t id) {
  return {
      make_span(id, 31, 3, 2, span_kind::hop_fast, 3000, 200),
      make_span(id, 11, 10, 0, span_kind::origin, 0, 500),
      make_span(id, 41, 11, 3, span_kind::deliver, 4000, 100),
      make_span(id, 21, 2, 1, span_kind::hop_fast, 1000, 300),
      make_span(id, 22, 2, 1, span_kind::forward, 1100, 50),
  };
}

TEST(TraceCollector, ReassemblesHopsInOrderWithWireGaps) {
  trace_collector col;
  for (const path_span& s : three_hop_trace(9)) col.ingest(s);
  const auto t = col.assemble(9);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->complete);
  EXPECT_EQ(t->service, 1u);
  EXPECT_EQ(t->connection, 77u);
  EXPECT_EQ(t->total_ns, 4100u);  // origin start 0 -> deliver end 4100

  ASSERT_EQ(t->hops.size(), 4u);
  const std::vector<std::uint64_t> nodes = {10, 2, 3, 11};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t->hops[i].node, nodes[i]);
    EXPECT_EQ(t->hops[i].hop_count, i);
  }
  // Hop 1 holds the fast-path span (1000..1300) and its forward sub-span
  // (1100..1150): first start 1000, last end 1300.
  EXPECT_EQ(t->hops[1].spans.size(), 2u);
  EXPECT_EQ(t->hops[1].hop_ns, 300u);
  // Queue + wire time between hops: origin ends 500, hop 1 starts 1000.
  EXPECT_EQ(t->hops[0].wire_gap_ns, 0u);
  EXPECT_EQ(t->hops[1].wire_gap_ns, 500u);
  EXPECT_EQ(t->hops[2].wire_gap_ns, 1700u);  // 3000 - 1300
  EXPECT_EQ(t->hops[3].wire_gap_ns, 800u);   // 4000 - 3200
}

TEST(TraceCollector, MissingDeliverMeansIncomplete) {
  trace_collector col;
  auto spans = three_hop_trace(5);
  spans.erase(spans.begin() + 2);  // drop the deliver span
  col.ingest(std::span<const path_span>(spans));
  const auto t = col.assemble(5);
  ASSERT_TRUE(t.has_value());
  EXPECT_FALSE(t->complete);
  EXPECT_EQ(t->total_ns, 0u);
}

TEST(TraceCollector, DuplicateSpanIdsNeverDoubleCount) {
  trace_collector col;
  const auto spans = three_hop_trace(7);
  col.ingest(std::span<const path_span>(spans));
  // A replayed batch AND a single duplicated emission.
  col.ingest(std::span<const path_span>(spans));
  col.ingest(spans[0]);
  EXPECT_EQ(col.duplicates_ignored(), spans.size() + 1);
  const auto t = col.assemble(7);
  ASSERT_TRUE(t.has_value());
  std::size_t total = 0;
  for (const hop_breakdown& hb : t->hops) total += hb.spans.size();
  EXPECT_EQ(total, spans.size());
  EXPECT_EQ(t->hops[1].hop_ns, 300u);  // unchanged by the replays
}

TEST(TraceCollector, BoundedTableEvictsOldestTrace) {
  trace_collector col(2);
  col.ingest(make_span(1, 1, 10, 0, span_kind::origin, 0, 10));
  col.ingest(make_span(2, 2, 10, 0, span_kind::origin, 100, 10));
  col.ingest(make_span(3, 3, 10, 0, span_kind::origin, 200, 10));
  EXPECT_EQ(col.trace_count(), 2u);
  EXPECT_EQ(col.evicted_traces(), 1u);
  EXPECT_FALSE(col.assemble(1).has_value());
  EXPECT_TRUE(col.assemble(3).has_value());
}

TEST(TraceCollector, EventsAnnotateOnPathTracesInsideWindow) {
  trace_collector col;
  for (const path_span& s : three_hop_trace(9)) col.ingest(s);
  // Failover at on-path node 3 inside the window: folds in.
  col.ingest(make_span(0, 101, 3, 0, span_kind::event, 3500, 0, kAnnoFailover));
  // Peer-down at node 99 (off-path): ignored.
  col.ingest(make_span(0, 102, 99, 0, span_kind::event, 3500, 0, kAnnoPeerDown));
  // Rekey at node 2 but far outside the window (+10s): ignored.
  col.ingest(make_span(0, 103, 2, 0, span_kind::event, 14'100'000'000ull, 0, kAnnoRekey));
  const auto t = col.assemble(9);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->annotations, kAnnoFailover);
}

TEST(TraceCollector, ExportJsonCarriesHopsAndAccounting) {
  trace_collector col;
  for (const path_span& s : three_hop_trace(9)) col.ingest(s);
  col.ingest(make_span(0, 101, 3, 0, span_kind::event, 3500, 0, kAnnoFailover));
  const std::string out = col.export_json();
  EXPECT_NE(out.find("\"trace_id\":9"), std::string::npos);
  EXPECT_NE(out.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"origin\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"deliver\""), std::string::npos);
  EXPECT_NE(out.find("\"wire_gap_ns\":500"), std::string::npos);
  EXPECT_NE(out.find("\"annotations\":\"failover\""), std::string::npos);
  EXPECT_NE(out.find("\"spans_seen\":6"), std::string::npos);
  const std::string text = col.render_text();
  EXPECT_NE(text.find("complete"), std::string::npos);
  EXPECT_NE(text.find("wire+queue=500ns"), std::string::npos);
}

// Sanitizer target: worker-shard drains and the observability push tick
// ingest concurrently while an operator assembles. tsan must see clean
// locking; the final counts must be exact.
TEST(TraceCollector, ConcurrentIngestAndAssembleIsClean) {
  trace_collector col(4096);
  constexpr int kThreads = 4;
  constexpr int kTracesPerThread = 64;
  std::vector<std::thread> producers;
  for (int th = 0; th < kThreads; ++th) {
    producers.emplace_back([&col, th] {
      for (int i = 0; i < kTracesPerThread; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(th) * 1000 + i + 1;
        for (const path_span& s : three_hop_trace(id)) col.ingest(s);
      }
    });
  }
  std::thread reader([&col] {
    for (int i = 0; i < 50; ++i) {
      const auto all = col.assemble_all();
      for (const path_trace& t : all) EXPECT_NE(t.trace_id, 0u);
      col.export_json(8);
    }
  });
  for (auto& t : producers) t.join();
  reader.join();

  EXPECT_EQ(col.trace_count(), static_cast<std::size_t>(kThreads) * kTracesPerThread);
  EXPECT_EQ(col.spans_seen(), static_cast<std::uint64_t>(kThreads) * kTracesPerThread * 5);
  for (int th = 0; th < kThreads; ++th) {
    const auto t = col.assemble(static_cast<std::uint64_t>(th) * 1000 + 1);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->complete);
  }
}

}  // namespace
}  // namespace interedge::trace
