#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace interedge {
namespace {

TEST(Counter, AddAndReset) {
  counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, SmallValuesExact) {
  histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.max(), 15u);
}

TEST(Histogram, QuantileWithinRelativeError) {
  histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.07);
}

TEST(Histogram, MeanIsExact) {
  histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  histogram h;
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValuesDoNotOverflowBuckets) {
  histogram h;
  h.record(0xffffffffffffffffull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0xffffffffffffffffull);
}

TEST(MetricsRegistry, NamedAccessReturnsSameObject) {
  metrics_registry reg;
  reg.get_counter("packets").add(5);
  EXPECT_EQ(reg.get_counter("packets").value(), 5u);
  reg.get_histogram("latency").record(100);
  EXPECT_EQ(reg.get_histogram("latency").count(), 1u);
}

TEST(MetricsRegistry, ReportContainsNames) {
  metrics_registry reg;
  reg.get_counter("rx_packets").add(3);
  const std::string report = reg.report();
  EXPECT_NE(report.find("rx_packets = 3"), std::string::npos);
}

}  // namespace
}  // namespace interedge
