#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace interedge {
namespace {

TEST(Counter, AddAndReset) {
  counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsAreLossless) {
  counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, SmallValuesExact) {
  histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.max(), 15u);
}

TEST(Histogram, QuantileWithinRelativeError) {
  histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) h.record(v);
  const std::uint64_t p50 = h.quantile(0.5);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.07);
}

TEST(Histogram, MeanIsExact) {
  histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
  histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  histogram h;
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, LargeValuesDoNotOverflowBuckets) {
  histogram h;
  h.record(0xffffffffffffffffull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0xffffffffffffffffull);
}

TEST(MetricsRegistry, NamedAccessReturnsSameObject) {
  metrics_registry reg;
  reg.get_counter("packets").add(5);
  EXPECT_EQ(reg.get_counter("packets").value(), 5u);
  reg.get_histogram("latency").record(100);
  EXPECT_EQ(reg.get_histogram("latency").count(), 1u);
}

TEST(MetricsRegistry, ReportContainsNames) {
  metrics_registry reg;
  reg.get_counter("rx_packets").add(3);
  const std::string report = reg.report();
  EXPECT_NE(report.find("rx_packets = 3"), std::string::npos);
}

TEST(Gauge, SetAddSubReset) {
  gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);  // signed: dips below zero don't wrap
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ShardedCounter, FoldsAllStripes) {
  sharded_counter c;
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounter, ConcurrentAddsAreLossless) {
  sharded_counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, ConcurrentRecordsKeepCountAndQuantileSane) {
  histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i % 1000) + 1);
        // Quantile readers race the writers; the scan must never answer
        // from an empty bucket (the seed bug returned max() here).
        const std::uint64_t q = h.quantile(0.99);
        ASSERT_LE(q, 1100u);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(MetricsRegistry, InterningIsIdempotent) {
  metrics_registry reg;
  const metric_id a = reg.intern(metric_kind::counter, "sn.rx.pkts");
  const metric_id b = reg.intern(metric_kind::counter, "sn.rx.pkts");
  EXPECT_EQ(a, b);
  EXPECT_EQ(&reg.counter_at(a), &reg.get_counter("sn.rx.pkts"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindsDoNotAlias) {
  metrics_registry reg;
  const metric_id c = reg.intern(metric_kind::counter, "latency");
  const metric_id h = reg.intern(metric_kind::histogram, "latency");
  EXPECT_NE(c, h);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  metrics_registry reg;
  counter& odns = reg.get_counter("sn.rx.pkts", {{"service", "odns"}});
  counter& vpn = reg.get_counter("sn.rx.pkts", {{"service", "vpn"}});
  counter& bare = reg.get_counter("sn.rx.pkts");
  EXPECT_NE(&odns, &vpn);
  EXPECT_NE(&odns, &bare);
  odns.add(2);
  EXPECT_EQ(reg.get_counter("sn.rx.pkts", {{"service", "odns"}}).value(), 2u);
  EXPECT_EQ(vpn.value(), 0u);
  // All three series share one family name.
  const auto families = reg.family_names();
  EXPECT_EQ(families, std::vector<std::string>{"sn.rx.pkts"});
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, RenderMetricKey) {
  EXPECT_EQ(render_metric_key("sn.rx.pkts", {}), "sn.rx.pkts");
  EXPECT_EQ(render_metric_key("sn.rx.pkts", {{"service", "odns"}}),
            "sn.rx.pkts{service=\"odns\"}");
  EXPECT_EQ(render_metric_key("x", {{"a", "1"}, {"b", "2"}}), "x{a=\"1\",b=\"2\"}");
}

TEST(MetricsRegistry, ReportIsDeterministicAcrossRegistrationOrder) {
  metrics_registry fwd, rev;
  fwd.get_counter("b.count").add(1);
  fwd.get_gauge("a.depth").set(7);
  fwd.get_histogram("c.lat").record(100);
  rev.get_histogram("c.lat").record(100);
  rev.get_gauge("a.depth").set(7);
  rev.get_counter("b.count").add(1);
  EXPECT_EQ(fwd.report(), rev.report());
  EXPECT_NE(fwd.report().find("a.depth = 7 (gauge)"), std::string::npos);
  EXPECT_NE(fwd.report().find("b.count = 1"), std::string::npos);
  EXPECT_NE(fwd.report().find("c.lat: count=1"), std::string::npos);
  // Scalars come before histograms regardless of name order.
  EXPECT_LT(fwd.report().find("b.count"), fwd.report().find("c.lat"));
}

TEST(MetricsRegistry, ConcurrentInterningYieldsOneSeries) {
  metrics_registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.get_counter("shared.hits").add();
        reg.get_counter("private." + std::to_string(t)).add();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.size(), 1u + kThreads);
  EXPECT_EQ(reg.get_counter("shared.hits").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ExportPrometheusShape) {
  metrics_registry reg;
  reg.get_counter("sn.rx.pkts", {{"service", "odns"}}).add(4);
  reg.get_gauge("sn.slowpath.in_flight").set(2);
  reg.get_histogram("sn.stage.decrypt").record(150);
  const std::string out = reg.export_prometheus();
  // Dotted names sanitize to underscores; one TYPE line per family.
  EXPECT_NE(out.find("# TYPE sn_rx_pkts counter"), std::string::npos);
  EXPECT_NE(out.find("sn_rx_pkts{service=\"odns\"} 4"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sn_slowpath_in_flight gauge"), std::string::npos);
  EXPECT_NE(out.find("sn_slowpath_in_flight 2"), std::string::npos);
  EXPECT_NE(out.find("# TYPE sn_stage_decrypt summary"), std::string::npos);
  EXPECT_NE(out.find("sn_stage_decrypt{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(out.find("sn_stage_decrypt_count 1"), std::string::npos);
  // No dotted metric name leaks through unsanitized (label/quantile
  // values may legitimately contain dots).
  EXPECT_EQ(out.find("sn.rx.pkts"), std::string::npos);
  EXPECT_EQ(out.find("sn.stage.decrypt"), std::string::npos);
}

TEST(MetricsRegistry, ExportPrometheusEscapesLabelValues) {
  // Regression (ISSUE 5 satellite): backslash, double-quote and newline in
  // a label VALUE must escape as \\, \" and \n — previously they leaked
  // through raw and produced malformed exposition text.
  metrics_registry reg;
  reg.get_counter("sn.rx.pkts", {{"service", "a\\b\"c\nd"}}).add(1);
  const std::string out = reg.export_prometheus();
  EXPECT_NE(out.find("sn_rx_pkts{service=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos);
  // No raw newline may survive inside the braces: every '\n' in the output
  // must terminate a complete exposition line, not split a label value.
  for (std::size_t pos = out.find('\n'); pos != std::string::npos && pos + 1 < out.size();
       pos = out.find('\n', pos + 1)) {
    EXPECT_TRUE(out[pos + 1] == '#' || out[pos + 1] == 's') << "line split at " << pos;
  }
}

TEST(MetricsRegistry, ExportJsonShape) {
  metrics_registry reg;
  reg.get_counter("sn.rx.pkts", {{"service", "odns"}}).add(4);
  reg.get_histogram("sn.stage.parse").record(10);
  const std::string out = reg.export_json();
  EXPECT_NE(out.find("{\"metrics\":["), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"sn.rx.pkts\""), std::string::npos);
  EXPECT_NE(out.find("\"labels\":{\"service\":\"odns\"}"), std::string::npos);
  EXPECT_NE(out.find("\"value\":4"), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(out.find("\"count\":1"), std::string::npos);
}

TEST(StatsReporter, DeltaReportComputesRates) {
  metrics_registry reg;
  counter& c = reg.get_counter("sn.rx.pkts");
  reg.get_gauge("sn.slowpath.in_flight").set(3);
  stats_reporter rep;
  c.add(10);
  rep.delta_report(reg, 0.0);  // baseline snapshot
  c.add(100);
  const std::string out = rep.delta_report(reg, 2.0);
  EXPECT_NE(out.find("sn.rx.pkts = 110 (50/s)"), std::string::npos);
  EXPECT_NE(out.find("sn.slowpath.in_flight = 3 (gauge)"), std::string::npos);
}

}  // namespace
}  // namespace interedge
