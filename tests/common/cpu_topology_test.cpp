// NUMA/CPU topology probe (ISSUE 8). Everything here must hold on any
// machine the suite runs on — single-node laptops, multi-socket servers,
// containers with restricted affinity masks — so the assertions pin the
// parser's exact behavior and the probe's invariants, never the machine's
// shape.
#include "common/cpu_topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

namespace interedge::sys {
namespace {

TEST(CpuList, ParsesRangesAndSingles) {
  EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist("0-2,8,10-11"), (std::vector<int>{0, 1, 2, 8, 10, 11}));
  // Sysfs files end in a newline; whitespace must not produce phantom CPUs.
  EXPECT_EQ(parse_cpulist("0-1\n"), (std::vector<int>{0, 1}));
}

TEST(CpuList, SortsAndDeduplicates) {
  EXPECT_EQ(parse_cpulist("3,1,2,1"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(parse_cpulist("4-6,5"), (std::vector<int>{4, 5, 6}));
}

TEST(CpuList, MalformedPiecesAreSkippedNotFatal) {
  EXPECT_EQ(parse_cpulist(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpulist("abc"), (std::vector<int>{}));
  EXPECT_EQ(parse_cpulist("1,garbage,3"), (std::vector<int>{1, 3}));
  // Inverted range: nothing sensible to emit for that piece.
  EXPECT_EQ(parse_cpulist("5-2,7"), (std::vector<int>{7}));
}

TEST(Topology, ProbeAlwaysYieldsAUsableShape) {
  // Whether sysfs is there or the portable fallback kicked in: at least
  // one node, every node non-empty, ids unique and ascending, and the CPU
  // sets disjoint — the contract the shard-placement code builds on.
  const topology topo = probe_topology();
  ASSERT_FALSE(topo.nodes.empty());
  std::vector<int> all_cpus;
  int prev_id = -1;
  for (const numa_node& n : topo.nodes) {
    EXPECT_GT(n.id, prev_id);  // unique + ascending
    prev_id = n.id;
    EXPECT_FALSE(n.cpus.empty());
    all_cpus.insert(all_cpus.end(), n.cpus.begin(), n.cpus.end());
  }
  std::sort(all_cpus.begin(), all_cpus.end());
  EXPECT_EQ(std::adjacent_find(all_cpus.begin(), all_cpus.end()), all_cpus.end());
  EXPECT_EQ(topo.total_cpus(), all_cpus.size());
  EXPECT_GE(topo.total_cpus(), 1u);
}

TEST(Topology, NodeOfCpuRoundTrips) {
  const topology& topo = topology::get();
  for (const numa_node& n : topo.nodes) {
    for (int cpu : n.cpus) EXPECT_EQ(topo.node_of_cpu(cpu), n.id);
  }
  EXPECT_EQ(topo.node_of_cpu(-1), -1);
  EXPECT_EQ(topo.node_of_cpu(1 << 20), -1);  // far beyond any real CPU
}

TEST(Topology, GetIsStable) {
  // The cached singleton hands back the same shape every time (placement
  // decisions at different layers must agree).
  const topology& a = topology::get();
  const topology& b = topology::get();
  EXPECT_EQ(&a, &b);
}

TEST(Pinning, PinToCurrentCpuSucceedsAndIsObservable) {
  // Pin to whichever CPU we are on — always in the affinity mask, so this
  // works in containers too. Advisory API: false is allowed, but a true
  // return must be truthful (sched_getcpu agrees).
  const int here = current_cpu();
  if (here < 0) GTEST_SKIP() << "sched_getcpu unavailable";
  std::thread t([&] {
    if (pin_thread_to_cpu(here)) {
      EXPECT_EQ(current_cpu(), here);
    }
  });
  t.join();
}

TEST(Pinning, EmptyOrBogusTargetsFailCleanly) {
  EXPECT_FALSE(pin_thread_to_cpus({}));
  EXPECT_FALSE(pin_thread_to_cpu(1 << 20));
  EXPECT_FALSE(pin_thread_to_node(1 << 20));
  // And a failed pin must not have wrecked the thread's ability to run.
  EXPECT_GE(current_cpu(), -1);
}

TEST(Binding, MemoryBindIsAdvisory) {
  // On every box: binding to a nonsense node fails cleanly; binding a
  // buffer to node 0 (always present) either succeeds or degrades without
  // touching the bytes.
  std::vector<std::uint8_t> buf(1 << 16, 0xab);
  EXPECT_FALSE(bind_memory_to_node(buf.data(), buf.size(), 1 << 12));
  bind_memory_to_node(buf.data(), buf.size(), topology::get().nodes.front().id);
  EXPECT_TRUE(std::all_of(buf.begin(), buf.end(), [](std::uint8_t b) { return b == 0xab; }));
  // Zero-length and null are no-ops, not crashes.
  EXPECT_FALSE(bind_memory_to_node(nullptr, 0, 0));
}

}  // namespace
}  // namespace interedge::sys
