// Profiling plane (ISSUE 10): sample-ring overflow accounting, the
// async-signal sampling path under real SIGPROF load (the tsan target),
// symbolization of static functions through the ELF symtab fallback, and
// the FlameGraph-collapsed folded output shape.
#include "common/prof.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#ifdef __linux__
#include <time.h>
#endif

namespace interedge::prof {
namespace {

// Burns the current thread's CPU clock for `ms` milliseconds. A static,
// noinline, non-trivial function: the sampler should land in it and the
// symbolizer must find it in .symtab (static linkage means dladdr's
// .dynsym lookup cannot see it).
__attribute__((noinline)) static std::uint64_t prof_test_static_spin(int ms) {
  volatile std::uint64_t acc = 1;
#ifdef __linux__
  timespec start{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &start);
  for (;;) {
    for (int i = 0; i < 4096; ++i) acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    long elapsed_ms = (now.tv_sec - start.tv_sec) * 1000 + (now.tv_nsec - start.tv_nsec) / 1000000;
    if (elapsed_ms >= ms) break;
  }
#else
  for (int i = 0; i < ms * 100000; ++i) acc = acc * 6364136223846793005ull + 1;
#endif
  return acc;
}

TEST(SampleRing, OverflowIsCountedDrop) {
  sample_ring ring(8);
  raw_sample s;
  s.depth = 2;
  s.pc[0] = 0x1000;
  s.pc[1] = 0x2000;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(s));
  // Ring full: pushes fail and are counted, never block or overwrite.
  EXPECT_FALSE(ring.try_push(s));
  EXPECT_FALSE(ring.try_push(s));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.pushed(), 8u);
  raw_sample out;
  std::size_t popped = 0;
  while (ring.try_pop(out)) {
    EXPECT_EQ(out.depth, 2u);
    EXPECT_EQ(out.pc[0], 0x1000u);
    ++popped;
  }
  EXPECT_EQ(popped, 8u);
  // Space again after the consumer caught up.
  EXPECT_TRUE(ring.try_push(s));
}

TEST(SampleRing, CapacityRoundsToPowerOfTwo) {
  sample_ring ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(CycleScope, InertWithoutAmbientSet) {
  // No scoped_cycle_set installed: scopes are no-ops (the inline-mode
  // datapath without a profiler pays two TLS loads, nothing else).
  { cycle_scope s(cycle_stage::decrypt); }
  EXPECT_EQ(cycle_current(), nullptr);
}

TEST(CycleScope, BothStagesCredited) {
  cycle_set set;
  {
    scoped_cycle_set ambient(&set);
    ASSERT_EQ(cycle_current(), &set);
    cycle_scope outer(cycle_stage::terminus);
    prof_test_static_spin(1);
    {
      cycle_scope inner(cycle_stage::decrypt);
      prof_test_static_spin(1);
    }
  }
  EXPECT_EQ(cycle_current(), nullptr);
  EXPECT_GT(set.self[static_cast<std::size_t>(cycle_stage::terminus)], 0u);
  EXPECT_GT(set.self[static_cast<std::size_t>(cycle_stage::decrypt)], 0u);
}

TEST(CycleScope, NestedScopeIsNotDoubleCounted) {
  // The outer scope does nothing but host the inner one: with self-time
  // semantics its credited cycles are a few scope-management ticks, while
  // a double-counting implementation would credit it the whole inner
  // spin. Load-insensitive on purpose — preemption inside the inner spin
  // inflates outer elapsed and inner child time identically, so outer
  // self-time stays negligible under any scheduler behavior short of a
  // preemption landing in the ~100ns scope-entry window.
  cycle_set set;
  {
    scoped_cycle_set ambient(&set);
    cycle_scope outer(cycle_stage::terminus);
    cycle_scope inner(cycle_stage::decrypt);
    prof_test_static_spin(10);
  }
  std::uint64_t terminus = set.self[static_cast<std::size_t>(cycle_stage::terminus)];
  std::uint64_t decrypt = set.self[static_cast<std::size_t>(cycle_stage::decrypt)];
  EXPECT_GT(decrypt, 0u);
  EXPECT_LT(terminus, decrypt);
  EXPECT_EQ(set.total(), terminus + decrypt);
}

TEST(Profiler, DisarmedByConfigIsInert) {
  profiler p(profiler_config{.sample_hz = 0});
  EXPECT_FALSE(p.register_current_thread("main"));
  EXPECT_FALSE(p.arm());
  EXPECT_FALSE(p.armed());
  EXPECT_EQ(p.drain(), 0u);
  EXPECT_EQ(p.folded(), "");
  EXPECT_EQ(p.hot_stacks_json(10), "[]");
}

#ifdef __linux__

// Validates every line of a folded export: "frames;separated;by;semis N".
void expect_folded_shape(const std::string& folded) {
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    auto sp = line.find_last_of(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    std::string count = line.substr(sp + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c))) << line;
    // At least thread;frame before the count.
    EXPECT_NE(line.substr(0, sp).find(';'), std::string::npos) << line;
  }
}

TEST(Profiler, CapturesAndSymbolizesStaticFunction) {
  // force_timer: the CPU-clock timer backend works under seccomp'd CI
  // where perf_event_open may not; the capture path is identical.
  profiler p(profiler_config{.sample_hz = 997, .ring_slots = 4096, .force_timer = true});
  ASSERT_TRUE(p.register_current_thread("main"));
  EXPECT_EQ(p.registered_threads(), 1u);
  ASSERT_TRUE(p.arm());
  EXPECT_EQ(p.active_backend(), backend::timer_signal);
  prof_test_static_spin(300);
  p.drain();
  p.disarm();
  p.unregister_current_thread();
  EXPECT_EQ(p.registered_threads(), 0u);

  EXPECT_GT(p.total_samples(), 20u) << "997Hz over 300ms CPU should land >20 samples";
  std::string folded = p.folded();
  ASSERT_FALSE(folded.empty());
  expect_folded_shape(folded);
  // The spin function is static: only the ELF .symtab fallback can name
  // it. It held the CPU for the whole capture, so it must appear.
  EXPECT_NE(folded.find("prof_test_static_spin"), std::string::npos) << folded;
  EXPECT_NE(folded.find("main;"), std::string::npos) << folded;

  auto top = p.top_functions(10);
  ASSERT_FALSE(top.empty());
  bool found = false;
  for (const auto& hf : top) {
    if (hf.name.find("prof_test_static_spin") != std::string::npos) {
      found = true;
      EXPECT_GT(hf.self, 0u);
      EXPECT_GE(hf.total, hf.self);
    }
  }
  EXPECT_TRUE(found);

  std::string hot = p.hot_stacks_json(5);
  EXPECT_EQ(hot.front(), '[');
  EXPECT_NE(hot.find("\"count\":"), std::string::npos);
  std::string json = p.export_json();
  EXPECT_NE(json.find("\"backend\":\"timer_signal\""), std::string::npos);
  EXPECT_NE(json.find("\"stacks\":["), std::string::npos);
}

// The tsan target: worker threads spinning under live SIGPROF fire while
// the control thread drains concurrently, then teardown races the last
// signals. Any lock or allocation in the handler deadlocks or trips the
// sanitizers here.
TEST(Profiler, ConcurrentSamplingDrainAndTeardown) {
  profiler p(profiler_config{.sample_hz = 1993, .ring_slots = 64, .force_timer = true});
  ASSERT_TRUE(p.arm());
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&p, &stop, i] {
      std::string name = "worker" + std::to_string(i);
      ASSERT_TRUE(p.register_current_thread(name.c_str()));
      while (!stop.load(std::memory_order_acquire)) prof_test_static_spin(2);
      p.unregister_current_thread();
    });
  }
  for (int i = 0; i < 50; ++i) {
    p.drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  p.drain();
  p.disarm();
  EXPECT_GT(p.total_samples(), 0u);
  // The tiny 64-slot rings under 1993Hz may overflow: drops are counted,
  // and the totals line up (nothing lost silently).
  expect_folded_shape(p.folded());
}

TEST(Profiler, ReRegisterAfterUnregisterReusesSlot) {
  profiler p(profiler_config{.sample_hz = 997, .force_timer = true});
  ASSERT_TRUE(p.register_current_thread("first"));
  p.unregister_current_thread();
  ASSERT_TRUE(p.register_current_thread("second"));
  ASSERT_TRUE(p.arm());
  prof_test_static_spin(50);
  p.drain();
  p.disarm();
  p.unregister_current_thread();
  EXPECT_NE(p.folded().find("second;"), std::string::npos);
}

#endif  // __linux__

TEST(RenderFolded, RootFirstWithSanitizedFrames) {
  // Synthetic stacks against real addresses: innermost-first PCs render
  // root-first (flamegraph.pl convention), counts trail after a space.
  folded_stack f;
  f.thread = "t;0";  // separator in a thread name must be sanitized
  f.pcs = {reinterpret_cast<std::uintptr_t>(&prof_test_static_spin)};
  f.count = 7;
  std::string out = render_folded({f});
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.substr(0, 4), "t:0;");
  EXPECT_NE(out.find("prof_test_static_spin"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 3), " 7\n");
}

TEST(RenderFolded, OrdersByCountThenKey) {
  folded_stack a, b;
  a.thread = "t";
  a.pcs = {reinterpret_cast<std::uintptr_t>(&prof_test_static_spin)};
  a.count = 2;
  b.thread = "u";
  b.pcs = {reinterpret_cast<std::uintptr_t>(&prof_test_static_spin)};
  b.count = 9;
  std::string out = render_folded({a, b});
  EXPECT_LT(out.find("u;"), out.find("t;"));  // higher count first
}

}  // namespace
}  // namespace interedge::prof
