#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace interedge {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FillCoversWholeSpan) {
  rng r(11);
  bytes buf(100, 0);
  r.fill(buf);
  int zeros = 0;
  for (auto b : buf) {
    if (b == 0) ++zeros;
  }
  EXPECT_LT(zeros, 10);  // all-zero bytes should be rare
}

}  // namespace
}  // namespace interedge
