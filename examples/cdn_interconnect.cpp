// CDN interconnection scenario: an application provider serves content to
// clients spread over several IESPs' edomains. The delivery bundle's edge
// caches absorb repeated fetches; the neutrality machinery shows how the
// provider buys coverage from the published rate cards via a broker
// instead of contracting each IESP separately (paper §5).
//
//   ./examples/cdn_interconnect [--edomains=3] [--clients=6] [--fetches=3]
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "edomain/pricing.h"
#include "services/clients/content.h"
#include "services/delivery.h"

using namespace interedge;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int n_domains = static_cast<int>(flags.get_int("edomains", 3));
  const int n_clients = static_cast<int>(flags.get_int("clients", 6));
  const int n_fetches = static_cast<int>(flags.get_int("fetches", 3));

  std::printf("== CDN over the InterEdge ==\n\n");

  // --- coverage purchase: broker stitches small IESPs (paper §5) ---
  edomain::marketplace market;
  edomain::rate_card global_card, local_a, local_b;
  global_card.set_rate(ilp::svc::delivery, "region-1", {{0, 100}});
  global_card.set_rate(ilp::svc::delivery, "region-2", {{0, 100}});
  global_card.set_rate(ilp::svc::delivery, "region-3", {{0, 100}});
  local_a.set_rate(ilp::svc::delivery, "region-1", {{0, 55}});
  local_a.set_rate(ilp::svc::delivery, "region-2", {{0, 80}});
  local_b.set_rate(ilp::svc::delivery, "region-3", {{0, 60}});
  market.add(std::make_shared<edomain::iesp>("global-edge", global_card));
  market.add(std::make_shared<edomain::iesp>("metro-a", local_a));
  market.add(std::make_shared<edomain::iesp>("metro-b", local_b));

  edomain::broker broker(market);
  const auto plan = broker.stitch("video-app-inc", ilp::svc::delivery,
                                  {{"region-1", 100}, {"region-2", 100}, {"region-3", 100}});
  std::printf("Broker coverage plan for video-app-inc:\n");
  for (const auto& a : plan->assignments) {
    std::printf("  %-10s <- %-12s at %lld micro-USD\n", a.region.c_str(),
                a.provider->name().c_str(), static_cast<long long>(a.price));
  }
  std::printf("  total %lld (single global provider would cost %lld)\n\n",
              static_cast<long long>(plan->total), static_cast<long long>(300 * 100));

  // Neutrality spot check: same quotes for different customers.
  edomain::neutrality_auditor auditor;
  const auto violations =
      auditor.audit(*market.find("global-edge"),
                    {{ilp::svc::delivery, "region-1", 100}}, {"video-app-inc", "rival-corp"});
  std::printf("Neutrality audit of global-edge: %s\n\n",
              violations.empty() ? "PASS (identity-blind quotes)" : "VIOLATIONS FOUND");

  // --- the deployment itself ---
  deploy::deployment net;
  std::vector<deploy::edomain_id> domains;
  std::vector<deploy::peer_id> sns;
  for (int i = 0; i < n_domains; ++i) {
    domains.push_back(net.add_edomain());
    sns.push_back(net.add_sn(domains.back()));
  }
  auto& origin_host = net.add_host(domains[0]);
  std::vector<host::host_stack*> clients;
  for (int i = 0; i < n_clients; ++i) {
    clients.push_back(&net.add_host(domains[1 + i % (n_domains - 1)]));
  }
  net.interconnect();
  deploy::deploy_standard_services(net);

  services::content_origin origin(origin_host);
  origin.put("movie.mp4", bytes(1200, 0x4d));

  std::vector<std::unique_ptr<services::content_client>> ccs;
  int delivered = 0;
  for (auto* c : clients) {
    ccs.push_back(std::make_unique<services::content_client>(*c));
  }
  std::printf("%d clients each fetch movie.mp4 %d times...\n", n_clients, n_fetches);
  for (int round = 0; round < n_fetches; ++round) {
    for (auto& cc : ccs) {
      cc->fetch(origin_host.addr(), "movie.mp4",
                [&delivered](const std::string&, bytes) { ++delivered; });
    }
    net.run();
  }

  std::printf("\n-- results --\n");
  std::printf("deliveries: %d / %d\n", delivered, n_clients * n_fetches);
  std::printf("origin served only %llu requests; the edge absorbed the rest\n",
              static_cast<unsigned long long>(origin.requests_served()));
  for (std::size_t i = 0; i < sns.size(); ++i) {
    auto* module = static_cast<services::delivery_service*>(
        net.sn(sns[i]).env().module_for(ilp::svc::delivery));
    std::printf("SN %llu: cache hits=%llu misses=%llu objects=%llu\n",
                static_cast<unsigned long long>(sns[i]),
                static_cast<unsigned long long>(module->cache_hits()),
                static_cast<unsigned long long>(module->cache_misses()),
                static_cast<unsigned long long>(module->cached_objects()));
  }
  return delivered == n_clients * n_fetches ? 0 : 1;
}
