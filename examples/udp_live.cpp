// Live-network demo: the same InterEdge components the other examples run
// on the simulator, here running over real UDP sockets on localhost —
// two hosts, one service node, ILP pipes with PSP-sealed headers on the
// actual wire.
//
//   ./examples/udp_live [--messages=5] [--backend=auto|mmsg|uring]
//                       [--pin=-1] [--dump-blackbox] [--profile=0]
//
// --profile=N arms the continuous profiling plane (ISSUE 10) on the SN
// (997Hz on-CPU sampling of the event-loop thread), drives traffic for N
// extra seconds to give the sampler something to chew on, and prints the
// capture on exit: FlameGraph-collapsed folded stacks (pipe into
// flamegraph.pl or load into speedscope) plus the top-10 hot functions.
//
// The SN's socket drains through the zero-copy slab path
// (recv_batch_views -> on_datagram_views): datagrams land in pool slabs,
// ILP headers are decrypted in place, and the terminus consumes views —
// no per-packet payload copy. --backend selects the transport backend for
// BOTH directions (ISSUE 8): with uring, receives are completion-driven
// and forwarded packets go out as batched SENDMSG gather SQEs straight
// from the slab they arrived in (zero-copy egress); mmsg keeps the
// synchronous sendmsg/recvmmsg pair. --pin=N pins the event-loop thread
// to CPU N and steers the ring's SQPOLL thread there (e.g. --pin=0).
//
// The SLO health plane (ISSUE 7) runs on the SN for the duration of the
// demo: sliding-window rollups over the merged registry, a burn-rate SLO
// on the ingress stage latency, the shard watchdog, and the black-box
// flight recorder. --dump-blackbox freezes the box at exit (manual
// trigger) and prints the postmortem JSON.
#include <cstdio>

#include "common/cpu_topology.h"
#include "common/flags.h"
#include "core/service_node.h"
#include "host/host_stack.h"
#include "net/udp_transport.h"
#include "services/delivery.h"
#include "services/pubsub.h"
#include "services/clients/pubsub_client.h"

using namespace interedge;
using namespace std::chrono_literals;

namespace {

// All destinations resolve through the directory-lite below.
class port_router final : public core::router {
 public:
  std::optional<core::peer_id> next_hop(core::edge_addr dest) const override { return dest; }
};

}  // namespace

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int n_messages = static_cast<int>(flags.get_int("messages", 5));

  std::printf("== InterEdge over real UDP sockets ==\n\n");

  net::udp_config sn_sock_cfg;
  const std::string backend_flag = flags.get("backend", "auto");
  if (backend_flag == "mmsg") {
    sn_sock_cfg.backend = net::udp_backend::mmsg;
  } else if (backend_flag == "uring") {
    sn_sock_cfg.backend = net::udp_backend::uring;
  }  // "auto" keeps auto_detect
  const int pin_cpu = static_cast<int>(flags.get_int("pin", -1));
  if (pin_cpu >= 0) {
    sys::pin_thread_to_cpu(pin_cpu);
    sn_sock_cfg.sq_aff_cpu = pin_cpu;
  }
  net::udp_endpoint ep_alice, ep_bob;
  net::udp_endpoint ep_sn(sn_sock_cfg);
  std::printf("SN transport backend: %s (rx + tx)\n",
              ep_sn.backend() == net::udp_backend::uring ? "io_uring" : "recvmmsg/sendmsg");
  net::event_loop loop;
  const net::peer_id id_alice = ep_alice.port();
  const net::peer_id id_sn = ep_sn.port();
  const net::peer_id id_bob = ep_bob.port();
  std::printf("alice = 127.0.0.1:%u   SN = 127.0.0.1:%u   bob = 127.0.0.1:%u\n\n",
              ep_alice.port(), ep_sn.port(), ep_bob.port());

  ep_alice.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_bob.add_peer(id_sn, "127.0.0.1", ep_sn.port());
  ep_sn.add_peer(id_alice, "127.0.0.1", ep_alice.port());
  ep_sn.add_peer(id_bob, "127.0.0.1", ep_bob.port());

  port_router route;
  real_clock clk;
  const int profile_secs = static_cast<int>(flags.get_int("profile", 0));
  // trace_sample_shift = 0: sample every packet, so a handful of demo
  // datagrams still populate the per-stage histograms and the trace ring.
  // --profile=N arms the sampling profiler on the event-loop thread; 997Hz
  // (prime, so it never phase-locks with a periodic workload) gives ~1k
  // samples per profiled second.
  core::service_node sn(
      core::sn_config{.id = id_sn,
                      .edomain = 1,
                      .trace_sample_shift = 0,
                      .profiler_hz = profile_secs > 0 ? 997u : 0u},
      clk, [&](net::peer_id to, bytes d) { ep_sn.send(to, d); }, loop.scheduler(), &route);
  // Socket/ring counters (net.udp.*, net.uring.* incl. the tx mirror) land
  // in the SN registry and show up in the Prometheus dump below.
  ep_sn.enable_telemetry(sn.metrics());
  sn.env().deploy(std::make_unique<services::delivery_service>());

  lookup::lookup_service directory;
  edomain::domain_core core(1, directory);
  core.add_sn(id_sn);
  sn.env().deploy(std::make_unique<services::pubsub_service>(core, id_sn));

  // Path tracing over the real wire (ISSUE 5): alice originates a trace
  // context on every send (sample shift 0), the SN emits hop spans, bob
  // closes the trace with a deliver span.
  host::host_config cfg_a{.addr = id_alice, .first_hop_sn = id_sn, .fallback_sns = {},
                          .path_span_capacity = 256, .trace_sample_shift = 0};
  host::host_config cfg_b{.addr = id_bob, .first_hop_sn = id_sn, .fallback_sns = {},
                          .path_span_capacity = 256, .trace_sample_shift = 0};
  host::host_stack alice(cfg_a, clk, [&](net::peer_id to, bytes d) { ep_alice.send(to, d); },
                         loop.scheduler(), nullptr);
  host::host_stack bob(cfg_b, clk, [&](net::peer_id to, bytes d) { ep_bob.send(to, d); },
                       loop.scheduler(), nullptr);

  loop.attach(ep_alice, [&](net::peer_id f, const_byte_span d) { alice.on_datagram(f, d); });
  loop.attach(ep_bob, [&](net::peer_id f, const_byte_span d) { bob.on_datagram(f, d); });
  // The SN drains its socket a burst at a time straight into pool slabs
  // and pumps the zero-copy ingress datapath; the hosts stay on the
  // per-packet path.
  loop.attach_views(ep_sn, [&](std::span<std::pair<net::peer_id, buf::pkt_view>> ds) {
    sn.on_datagram_views(ds);
  });
  // Zero-copy egress: forwarded packets seal their header into the pipe
  // manager's scratch and go out as a (head, payload) gather pair. On the
  // uring backend that stages a SENDMSG SQE pointing into the rx slab —
  // the payload is never copied, and the slab recycles when the completion
  // retires; on mmsg it is a synchronous two-iovec sendmsg.
  sn.pipes().set_send_gather(
      [&](net::peer_id to, const_byte_span head, const_byte_span payload) {
        ep_sn.send_gather(to, head, payload);
      });

  int delivered = 0;
  bob.set_default_handler([&](const ilp::ilp_header& h, bytes payload) {
    std::printf("  bob <- [conn %llx] \"%s\"\n",
                static_cast<unsigned long long>(h.connection), to_string(payload).c_str());
    ++delivered;
  });

  // SLO health plane (ISSUE 7): a 20ms health tick rolls the merged
  // registry into the sliding-window store, scans the shard watchdog and
  // evaluates a burn-rate SLO on the ingress stage latency. Ticks are
  // bounded so the event loop's timer queue drains and run_until_quiet
  // can return. Demo-scale windows: a real deployment keeps the SRE-book
  // defaults (1m/5m fast, 30m/6h slow).
  core::service_node::health_config health;
  health.interval = 20ms;
  health.series.window = 100ms;
  health.windows.fast_short = 200ms;
  health.windows.fast_long = 400ms;
  health.windows.slow_short = 1000ms;
  health.windows.slow_long = 2000ms;
  slo::slo_target ingress_slo;
  ingress_slo.name = "ingress-p99";
  ingress_slo.service = "delivery";
  ingress_slo.latency_series = "sn.stage.ingress";
  ingress_slo.threshold_ns = 50'000;  // 50us budget per packet, 1% headroom
  health.targets.push_back(ingress_slo);
  health.alert_sink = [](const slo::slo_alert& a) {
    std::printf("  !! SLO %s (%s): %s -> %s  burn_fast=%.1f\n", a.slo.c_str(),
                a.service.c_str(), slo::slo_state_name(a.prev), slo::slo_state_name(a.state),
                a.burn_fast);
  };
  sn.start_health_plane(health, /*max_ticks=*/50);

  services::pubsub_client sub(bob), pub(alice);
  int headlines = 0;
  sub.subscribe("headlines", [&](const std::string&, bytes p) {
    std::printf("  bob <- pub/sub headlines: \"%s\"\n", to_string(p).c_str());
    ++headlines;
  });
  loop.run_until_quiet(30ms, 2000ms);

  std::printf("alice sends %d datagrams through the SN (delivery service):\n", n_messages);
  auto conn = alice.open(id_bob, ilp::svc::delivery);
  for (int i = 0; i < n_messages; ++i) {
    conn.send(to_bytes("udp payload " + std::to_string(i)));
  }
  loop.run_until_quiet(30ms, 3000ms);

  std::printf("\nalice publishes to \"headlines\" (pub/sub service):\n");
  pub.publish("headlines", to_bytes("InterEdge runs on real sockets"));
  loop.run_until_quiet(30ms, 2000ms);

  // --profile=N: keep the datapath hot for N seconds so the sampler has
  // real ingress work to attribute, then report below. Traffic loops
  // through the same zero-copy delivery path as the demo sends above.
  if (profile_secs > 0 && sn.profiler() != nullptr) {
    std::printf("\nprofiling the SN event loop for %ds at 997Hz...\n", profile_secs);
    // Quiet counting handler for the capture traffic — the demo handler
    // would printf per packet.
    std::uint64_t profiled_rx = 0;
    bob.set_default_handler([&](const ilp::ilp_header&, bytes) { ++profiled_rx; });
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(profile_secs);
    std::uint64_t sent = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 64; ++i) {
        conn.send(to_bytes("profile payload " + std::to_string(sent++)));
      }
      loop.run_until_quiet(1ms, 50ms);
    }
    std::printf("profiled %llu datagrams (%llu delivered)\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(profiled_rx));
  }

  const auto& stats = sn.datapath_stats();
  std::printf("\nSN datapath: received=%llu fast-path=%llu slow-path=%llu forwarded=%llu\n",
              static_cast<unsigned long long>(stats.received),
              static_cast<unsigned long long>(stats.fast_path),
              static_cast<unsigned long long>(stats.slow_path),
              static_cast<unsigned long long>(stats.forwarded));
  std::printf("UDP: alice sent %llu datagrams, SN received %llu\n",
              static_cast<unsigned long long>(ep_alice.sent()),
              static_cast<unsigned long long>(ep_sn.received()));

  // The exposition surface (ISSUE 2): per-stage latency quantiles from the
  // packet tracer, then the full registry in Prometheus text format —
  // per-service rx counters (sn_rx_pkts{service=...}) included.
  std::printf("\nper-stage latency (ns), every packet sampled:\n");
  for (trace::stage s : {trace::stage::parse, trace::stage::decrypt, trace::stage::cache,
                         trace::stage::emit}) {
    const histogram& h = sn.packet_tracer().stage_hist(s);
    std::printf("  %-8s count=%-5llu p50=%-7llu p99=%llu\n", trace::stage_name(s),
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.quantile(0.5)),
                static_cast<unsigned long long>(h.quantile(0.99)));
  }

  std::printf("\nrecent sampled packet traces:\n%s", sn.packet_tracer().dump(8).c_str());

  // Cross-hop path traces (ISSUE 5): fold the host-side origin/deliver
  // spans into the SN's collector, then dump reassembled alice->SN->bob
  // paths — per-hop stage breakdown included — as JSON.
  {
    std::vector<trace::path_span> host_spans;
    alice.drain_path_spans(host_spans);
    bob.drain_path_spans(host_spans);
    sn.traces().ingest(std::span<const trace::path_span>(host_spans));
    std::printf("\npath traces (host->SN->host), JSON dump:\n%s\n",
                sn.export_trace_json(4).c_str());
  }

  std::printf("\nPrometheus exposition:\n%s", sn.metrics().export_prometheus().c_str());

  std::printf("\nstats snapshot (rates vs. previous snapshot):\n%s",
              sn.stats_snapshot().c_str());

  // Health plane summary (ISSUE 7): window coverage of the rollup store
  // and the per-target SLO state after the demo's traffic.
  if (const timeseries_store* ts = sn.health_series()) {
    std::printf("\nhealth plane rollups:\n%s\n", ts->export_json().c_str());
  }
  if (const slo::slo_monitor* slos = sn.health_slos()) {
    std::printf("SLO state:\n%s\n", slos->export_json().c_str());
  }

  // Profiling report (--profile=N): folded stacks in FlameGraph-collapsed
  // format — feed to flamegraph.pl or speedscope — then the top-10 hot
  // functions by self samples. The hot-stack table also lands in any
  // --dump-blackbox postmortem below via the health plane's snapshots.
  if (profile_secs > 0 && sn.profiler() != nullptr) {
    // Stop sampling before the report renders: symbolization is heavy
    // enough that an armed sampler would profile its own exporter.
    sn.profiler()->disarm();
    sn.profile_refresh();
    std::printf("\nfolded stacks (flamegraph.pl collapsed format):\n%s",
                sn.export_profile_folded().c_str());
    std::printf("\ntop functions by self samples (backend=%s, %llu samples, %llu dropped):\n",
                sn.profiler()->active_backend() == prof::backend::perf_event ? "perf_event"
                                                                            : "timer_signal",
                static_cast<unsigned long long>(sn.profiler()->total_samples()),
                static_cast<unsigned long long>(sn.profiler()->total_dropped()));
    for (const auto& hf : sn.profiler()->top_functions(10)) {
      std::printf("  %6llu self  %6llu total  %s\n", static_cast<unsigned long long>(hf.self),
                  static_cast<unsigned long long>(hf.total), hf.name.c_str());
    }
  }

  // Black-box postmortem: freeze the ring by hand (the kTrigManual path —
  // the same freeze a peer-down, shed watermark or SLO page would fire)
  // and dump what the node was doing right before.
  if (flags.get_bool("dump-blackbox", false)) {
    if (flight_recorder* box = sn.blackbox()) {
      box->trigger(kTrigManual,
                   static_cast<std::uint64_t>(clk.now().time_since_epoch().count()));
      std::printf("\nblack-box flight recorder dump (--dump-blackbox):\n%s\n",
                  sn.dump_blackbox_json().c_str());
    }
  }

  return (delivered == n_messages && headlines == 1) ? 0 : 1;
}
