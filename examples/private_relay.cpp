// Privacy services (paper §6): oblivious DNS and a mixnet relay chain.
// Shows what each party can and cannot observe.
//
//   ./examples/private_relay [--hops=3]
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/mixnet_client.h"
#include "services/clients/odns_client.h"
#include "services/mixnet.h"

using namespace interedge;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int hops = static_cast<int>(flags.get_int("hops", 3));

  std::printf("== private relay: oDNS + mixnet ==\n\n");

  deploy::standard_services_config cfg;
  cfg.odns = true;
  cfg.mixnet = true;

  deploy::deployment net;
  const auto west = net.add_edomain();
  const auto east = net.add_edomain();
  std::vector<deploy::peer_id> sns;
  sns.push_back(net.add_sn(west));
  sns.push_back(net.add_sn(west));
  sns.push_back(net.add_sn(east));
  sns.push_back(net.add_sn(east));
  auto& user = net.add_host(west, sns[0]);
  auto& resolver_host = net.add_host(east, sns[3]);
  auto& website = net.add_host(east, sns[2]);
  net.interconnect();
  deploy::deploy_standard_services(net, cfg);

  // --- oDNS ---
  services::odns_resolver resolver(resolver_host);
  resolver.add_record("private-site.example", std::to_string(website.addr()));
  for (auto sn : sns) {
    net.sn(sn).env().set_config(ilp::svc::odns, "resolver",
                                std::to_string(resolver_host.addr()));
  }

  services::odns_client dns(user, resolver.public_key());
  std::string resolved;
  std::printf("user resolves private-site.example via oblivious DNS...\n");
  dns.query("private-site.example", [&](const std::string& name, const std::string& value) {
    std::printf("  answer: %s -> %s\n", name.c_str(), value.c_str());
    resolved = value;
  });
  net.run();

  std::printf("  resolver observed query sources: ");
  for (auto src : resolver.observed_sources()) {
    std::printf("%llu ", static_cast<unsigned long long>(src));
  }
  std::printf("\n  (user address %llu never appears: the proxy SN re-originated "
              "the query)\n\n",
              static_cast<unsigned long long>(user.addr()));

  // --- mixnet to the website ---
  services::mix_directory directory;
  for (auto sn : sns) {
    auto* m = static_cast<services::mixnet_service*>(
        net.sn(sn).env().module_for(ilp::svc::mixnet));
    directory.push_back({sn, m->public_key()});
  }
  std::vector<services::mix_node> chain(directory.begin(),
                                        directory.begin() + std::min<std::size_t>(hops, directory.size()));

  services::mixnet_client relay(user);
  services::mixnet_client site(website);
  std::printf("user sends a request to the website through a %zu-hop mixnet...\n",
              chain.size());
  site.set_handler([&](bytes payload) {
    std::printf("  website received: \"%s\" — with no idea who sent it\n",
                to_string(payload).c_str());
  });
  relay.send(chain, website.addr(), to_bytes("GET /secret-page"));
  net.run();

  std::printf("\nmix statistics (each node peeled exactly one layer):\n");
  for (const auto& hop : chain) {
    auto* m = static_cast<services::mixnet_service*>(
        net.sn(hop.sn).env().module_for(ilp::svc::mixnet));
    std::printf("  mix SN %llu: peeled=%llu exited=%llu\n",
                static_cast<unsigned long long>(hop.sn),
                static_cast<unsigned long long>(m->peeled()),
                static_cast<unsigned long long>(m->exited()));
  }
  return resolved.empty() ? 1 : 0;
}
