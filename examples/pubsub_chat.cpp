// Pub/sub chat across edomains, including an SN state-loss event repaired
// by host-driven state reconstruction (paper §3.3, §6).
//
//   ./examples/pubsub_chat [--rooms=2] [--users=6]
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/pubsub_client.h"

using namespace interedge;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int n_rooms = static_cast<int>(flags.get_int("rooms", 2));
  const int n_users = static_cast<int>(flags.get_int("users", 6));

  std::printf("== pub/sub chat over the InterEdge ==\n\n");

  deploy::deployment net;
  const auto west = net.add_edomain();
  const auto east = net.add_edomain();
  const auto sn_w = net.add_sn(west);
  net.add_sn(west);
  net.add_sn(east);
  std::vector<host::host_stack*> users;
  for (int i = 0; i < n_users; ++i) {
    users.push_back(&net.add_host(i % 2 == 0 ? west : east));
  }
  net.interconnect();
  deploy::deploy_standard_services(net);

  // Pristine checkpoint of the western SN, taken before any subscriptions
  // exist — used below to emulate a crash that loses service state.
  const bytes pristine = net.sn(sn_w).checkpoint();

  std::vector<std::unique_ptr<services::pubsub_client>> clients;
  std::vector<int> inbox(users.size(), 0);
  for (std::size_t i = 0; i < users.size(); ++i) {
    clients.push_back(std::make_unique<services::pubsub_client>(*users[i]));
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::string room = "room-" + std::to_string(i % n_rooms);
    clients[i]->subscribe(room, [&inbox, i](const std::string& topic, bytes payload) {
      std::printf("  user %zu @%s: %s\n", i, topic.c_str(), to_string(payload).c_str());
      ++inbox[i];
    });
  }
  net.run();
  std::printf("%d users joined %d rooms (cross-edomain membership via the "
              "lookup service).\n\n",
              n_users, n_rooms);

  std::printf("user 0 posts to room-0:\n");
  clients[0]->publish("room-0", to_bytes("hello everyone"));
  net.run();

  std::printf("\nuser 1 posts to room-%d:\n", 1 % n_rooms);
  clients[1]->publish("room-" + std::to_string(1 % n_rooms), to_bytes("hi from the east"));
  net.run();

  // --- SN failure and host-driven reconstruction (§3.3) ---
  std::printf("\n!! SN %llu crashes and restarts with blank service state\n",
              static_cast<unsigned long long>(sn_w));
  net.sn(sn_w).restore(pristine);

  std::printf("   user 0 posts again — subscribers behind the crashed SN miss it:\n");
  clients[0]->publish("room-0", to_bytes("anyone there?"));
  net.run();

  std::printf("   subscribers run host-driven reconstruction (resync)...\n");
  for (auto& c : clients) c->resync();
  net.run();

  std::printf("\nuser 2 posts to room-0 after recovery:\n");
  clients[2 % clients.size()]->publish("room-0", to_bytes("back to normal"));
  net.run();

  int total = 0;
  for (int i : inbox) total += i;
  std::printf("\n%d chat messages delivered in total.\n", total);
  return total > 0 ? 0 : 1;
}
