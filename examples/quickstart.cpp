// Quickstart: build a two-edomain InterEdge, attach hosts, send traffic
// through service nodes, and inspect the datapath.
//
//   ./examples/quickstart [--hosts=4] [--messages=8]
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"

using namespace interedge;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const int n_hosts = static_cast<int>(flags.get_int("hosts", 4));
  const int n_messages = static_cast<int>(flags.get_int("messages", 8));

  std::printf("== InterEdge quickstart ==\n");
  std::printf("Building two edomains (two IESPs), one SN each, %d hosts...\n\n", n_hosts);

  // 1. Topology: two InterEdge Service Providers, full-mesh peering.
  deploy::deployment net;
  const auto west = net.add_edomain();
  const auto east = net.add_edomain();
  const auto sn_west = net.add_sn(west);
  const auto sn_east = net.add_sn(east);

  std::vector<host::host_stack*> hosts;
  for (int i = 0; i < n_hosts; ++i) {
    hosts.push_back(&net.add_host(i % 2 == 0 ? west : east));
  }
  net.interconnect();  // settlement-free peering pipes + gateway maps

  // 2. Deploy the standardized service suite on every SN (the uniform
  //    service model: write once, run on every IESP).
  deploy::deploy_standard_services(net);

  // 3. Receive hooks.
  std::vector<int> received(hosts.size(), 0);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    hosts[i]->set_default_handler([&received, i](const ilp::ilp_header& h, bytes payload) {
      std::printf("  host %zu <- conn %llu: \"%s\"\n", i,
                  static_cast<unsigned long long>(h.connection),
                  to_string(payload).c_str());
      ++received[i];
    });
  }

  // 4. Send messages pairwise using the delivery service.
  std::printf("Sending %d messages through the InterEdge...\n", n_messages);
  for (int m = 0; m < n_messages; ++m) {
    auto& from = *hosts[m % hosts.size()];
    auto& to = *hosts[(m + 1) % hosts.size()];
    auto conn = from.open(to.addr(), ilp::svc::delivery);
    conn.send(to_bytes("message " + std::to_string(m)));
  }
  net.run();

  // 5. Inspect the datapath.
  std::printf("\n-- service node datapath --\n");
  for (auto sn : {sn_west, sn_east}) {
    const auto& stats = net.sn(sn).datapath_stats();
    const auto& cache = net.sn(sn).cache().stats();
    std::printf(
        "SN %llu (edomain %u): received=%llu fast-path=%llu slow-path=%llu "
        "forwarded=%llu | cache hits=%llu misses=%llu\n",
        static_cast<unsigned long long>(sn), net.domain_of_sn(sn),
        static_cast<unsigned long long>(stats.received),
        static_cast<unsigned long long>(stats.fast_path),
        static_cast<unsigned long long>(stats.slow_path),
        static_cast<unsigned long long>(stats.forwarded),
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses));
  }

  std::printf("\n-- settlement-free peering (paper §5) --\n");
  std::printf("west->east traffic: %llu bytes, settlement due: %lld\n",
              static_cast<unsigned long long>(net.ledger().traffic(west, east)),
              static_cast<long long>(net.ledger().settlement_due(west, east)));
  std::printf("east->west traffic: %llu bytes, settlement due: %lld\n",
              static_cast<unsigned long long>(net.ledger().traffic(east, west)),
              static_cast<long long>(net.ledger().settlement_due(east, west)));

  int total = 0;
  for (int r : received) total += r;
  std::printf("\n%d/%d messages delivered end-to-end.\n", total, n_messages);
  return total == n_messages ? 0 : 1;
}
