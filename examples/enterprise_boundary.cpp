// Enterprise scenario (paper §3.2, third invocation mode): an enterprise
// imposes operator services — a pass-through boundary SN with firewall
// rules, NGFW deep inspection, and SD-WAN exit selection — on all traffic,
// while employees keep using client-invoked InterEdge services through the
// upstream IESP. The enterprise also attests its boundary SN before
// trusting it.
//
//   ./examples/enterprise_boundary
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/pubsub_client.h"
#include "services/ngfw.h"
#include "services/pass_through.h"

using namespace interedge;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf("== enterprise boundary: pass-through SN + NGFW + SD-WAN ==\n\n");

  deploy::deployment net;
  const auto enterprise = net.add_edomain();
  const auto isp_a = net.add_edomain();  // default transit
  const auto isp_b = net.add_edomain();  // premium exit for latency traffic
  const auto boundary = net.add_sn(enterprise);
  const auto upstream_a = net.add_sn(isp_a);
  const auto upstream_b = net.add_sn(isp_b);
  auto& employee = net.add_host(enterprise, boundary);
  auto& partner = net.add_host(isp_a, upstream_a);
  auto& saas = net.add_host(isp_b, upstream_b);
  net.interconnect();
  deploy::deploy_standard_services(net);

  // --- attest the boundary before trusting it (§3.1 TPMs) ---
  enclave::attestation_authority authority(2024);
  const auto golden = enclave::measure_module("boundary-image", "v1", to_bytes("code"));
  net.provision_attestation(authority, golden, "boundary-v1");
  const bool attested = net.attest_sn(authority, boundary, "boundary-v1", to_bytes("n-1"));
  std::printf("boundary SN attestation: %s\n", attested ? "VERIFIED" : "FAILED");

  // --- operator-imposed services at the boundary ---
  auto pass = std::make_unique<services::pass_through_service>(upstream_a);
  pass->add_enterprise_host(employee.addr());
  // Firewall rule: no direct traffic to the known-bad host 424242.
  pass->add_rule({.dest = 424242, .allow = false});
  // SD-WAN: pub/sub (the latency-sensitive app) exits via the premium ISP.
  pass->set_service_exit(ilp::svc::pubsub, upstream_b);
  auto* pass_raw = pass.get();
  net.sn(boundary).env().set_interceptor(std::move(pass));

  std::printf("boundary policy: default exit ISP-A (SN %llu), pub/sub exit ISP-B "
              "(SN %llu), one deny rule\n\n",
              static_cast<unsigned long long>(upstream_a),
              static_cast<unsigned long long>(upstream_b));

  // --- employee traffic ---
  int partner_got = 0;
  partner.set_default_handler([&](const ilp::ilp_header&, bytes p) {
    std::printf("  partner received: \"%s\"\n", to_string(p).c_str());
    ++partner_got;
  });

  std::printf("employee sends a document to the partner (via default exit):\n");
  employee.send_to(partner.addr(), ilp::svc::delivery, to_bytes("q3-report.pdf"));
  net.run();

  std::printf("\nemployee tries the blocked destination:\n");
  employee.send_to(424242, ilp::svc::delivery, to_bytes("exfil"));
  net.run();
  std::printf("  blocked at the boundary: %llu packet(s)\n",
              static_cast<unsigned long long>(pass_raw->blocked()));

  std::printf("\nemployee subscribes to a market feed (pub/sub exits via ISP-B):\n");
  services::pubsub_client sub(employee);
  services::pubsub_client pub(saas);
  int ticks = 0;
  sub.subscribe("ticker", [&](const std::string&, bytes p) {
    std::printf("  employee <- ticker: %s\n", to_string(p).c_str());
    ++ticks;
  });
  net.run();
  pub.publish("ticker", to_bytes("ACME 42.00 +1.2%"));
  net.run();

  std::printf("\nboundary counters: out=%llu in=%llu blocked=%llu\n",
              static_cast<unsigned long long>(pass_raw->passed_out()),
              static_cast<unsigned long long>(pass_raw->passed_in()),
              static_cast<unsigned long long>(pass_raw->blocked()));
  std::printf("ISP-B SN handled the subscription: pubsub subscribers there = %s\n",
              net.sn(upstream_b).env().has_module(ilp::svc::pubsub) ? "yes" : "no");
  return (attested && partner_got == 1 && ticks == 1 && pass_raw->blocked() >= 1) ? 0 : 1;
}
