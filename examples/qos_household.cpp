// Last-hop QoS (paper §6): a household prioritizes gaming traffic over a
// bulk download on its congested access link by pushing a profile to its
// first-hop SN.
//
//   ./examples/qos_household [--access_mbps=8] [--bulk_packets=30]
#include <cstdio>

#include "common/flags.h"
#include "deploy/deployment.h"
#include "deploy/standard_services.h"
#include "services/clients/qos_client.h"

using namespace interedge;
using namespace std::chrono_literals;

int main(int argc, char** argv) {
  const flag_set flags(argc, argv);
  const std::uint64_t access_mbps = static_cast<std::uint64_t>(flags.get_int("access_mbps", 8));
  const int bulk_packets = static_cast<int>(flags.get_int("bulk_packets", 30));

  std::printf("== last-hop QoS: the household example ==\n\n");

  deploy::deployment net;
  const auto home_isp = net.add_edomain();
  const auto cloud = net.add_edomain();
  net.add_sn(home_isp);
  net.add_sn(cloud);
  auto& household = net.add_host(home_isp);
  auto& game_server = net.add_host(cloud);
  auto& video_cdn = net.add_host(cloud);
  net.interconnect();
  deploy::deploy_standard_services(net);

  // Receive log.
  struct arrival {
    std::string kind;
    double ms;
  };
  std::vector<arrival> arrivals;
  household.set_default_handler([&](const ilp::ilp_header& h, bytes) {
    const auto src = h.meta_u64(ilp::meta_key::src_addr).value_or(0);
    arrivals.push_back({src == game_server.addr() ? "GAME " : "video",
                        static_cast<double>(net.net().now().time_since_epoch().count()) / 1e6});
  });

  // The household declares its access link and priorities out of band.
  services::qos_client qc(household);
  services::qos_profile profile;
  profile.access_bps = access_mbps * 1000000;
  profile.rules.push_back({.src_prefix = game_server.addr(),
                           .prefix_bits = 64,
                           .priority = 0,  // gaming: strict priority
                           .weight = 1.0});
  profile.rules.push_back({.prefix_bits = 0, .priority = 1, .weight = 1.0});
  qc.configure(profile);
  net.run();
  std::printf("household declared %llu Mbps access, gaming at priority 0\n\n",
              static_cast<unsigned long long>(access_mbps));

  // A bulk video burst arrives, then a single latency-critical game packet.
  for (int i = 0; i < bulk_packets; ++i) {
    video_cdn.send_to(household.addr(), ilp::svc::last_hop_qos, bytes(1200, 0x22));
  }
  game_server.send_to(household.addr(), ilp::svc::last_hop_qos, bytes(120, 0x11));
  net.run();

  std::printf("arrival order at the household (first 10):\n");
  for (std::size_t i = 0; i < arrivals.size() && i < 10; ++i) {
    std::printf("  %4.2f ms  %s\n", arrivals[i].ms, arrivals[i].kind.c_str());
  }
  std::size_t game_position = arrivals.size();
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (arrivals[i].kind == "GAME ") game_position = i;
  }
  std::printf("\nthe game packet, sent LAST of %zu packets, arrived at position %zu\n",
              arrivals.size(), game_position + 1);
  std::printf("(without QoS it would arrive position %zu)\n", arrivals.size());
  return game_position < arrivals.size() - 1 ? 0 : 1;
}
